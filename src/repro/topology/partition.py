"""Job partitions and the allocation-fragmentation model.

The paper attributes the XT's PTRANS variability (Fig. 1c) to resource
allocation: "the resource allocation approach on the XT is more
susceptible to fragmentation (and hence contention for the network with
other applications running at the same time)".  BlueGene partitions, by
contrast, are electrically isolated sub-tori.

The model:

* **BlueGene** (``contiguous_allocation=True``): the job receives an
  exact sub-torus.  Route dilation 1.0, no background contention,
  and identical repeated runs.
* **XT** (``contiguous_allocation=False``): the job receives a
  scattered subset of the machine.  Sampled per allocation:
  a *route dilation* factor (routes detour through non-job nodes) and a
  *background contention* factor (links shared with other jobs deliver
  a fraction of their bandwidth).  Both are drawn from a seeded RNG, so
  repeated allocations reproduce the run-to-run spread the paper saw.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..machines.specs import MachineSpec
from ..simengine import Engine, make_rng
from .torus import Torus3D

__all__ = [
    "Partition",
    "allocate",
    "slab_axis",
    "slab_extents",
    "shard_of_node",
    "shard_nodes",
]


@dataclass(frozen=True)
class Partition:
    """A set of nodes granted to one job, with contention characteristics."""

    machine: MachineSpec
    nodes: int
    torus_shape: Tuple[int, int, int]
    #: >= 1: multiplier on hop counts due to fragmented placement
    route_dilation: float
    #: >= 1: multiplier on transfer times due to sharing links with
    #: other jobs (1.0 = dedicated links)
    contention_multiplier: float

    def __post_init__(self) -> None:
        if self.nodes < 1:
            raise ValueError("partition must contain at least one node")
        x, y, z = self.torus_shape
        if x * y * z < self.nodes:
            raise ValueError(
                f"torus shape {self.torus_shape} too small for {self.nodes} nodes"
            )
        if self.route_dilation < 1.0 or self.contention_multiplier < 1.0:
            raise ValueError("dilation and contention multipliers must be >= 1")

    @property
    def is_isolated(self) -> bool:
        return self.route_dilation == 1.0 and self.contention_multiplier == 1.0

    def build_torus(self, env: Optional[Engine] = None) -> Torus3D:
        """Instantiate the partition's torus (optionally with DES links).

        For fragmented partitions the links carry degraded effective
        bandwidth (peak / contention) so the DES sees the contention.
        """
        spec = self.machine.torus
        if self.contention_multiplier > 1.0:
            from dataclasses import replace

            spec = replace(
                spec,
                link_bandwidth=spec.link_bandwidth / self.contention_multiplier,
            )
        return Torus3D(self.torus_shape, spec, env)

    def effective_hops(self, hops: float) -> float:
        """Hop count adjusted for fragmented placement."""
        return hops * self.route_dilation


def allocate(
    machine: MachineSpec,
    nodes: int,
    rng: Optional[np.random.Generator] = None,
    utilization: float = 0.7,
) -> Partition:
    """Allocate ``nodes`` nodes on ``machine``.

    ``utilization`` is the background load of the rest of the machine
    (only relevant for fragmenting allocators); 0 gives a quiet machine,
    values near 1 a heavily shared one.
    """
    if nodes < 1:
        raise ValueError("must request at least one node")
    if nodes > machine.total_nodes:
        raise ValueError(
            f"{machine.name} has {machine.total_nodes} nodes; requested {nodes}"
        )
    if not 0.0 <= utilization <= 1.0:
        raise ValueError("utilization must lie in [0, 1]")

    shape = machine.torus_shape(nodes)

    if machine.contiguous_allocation:
        return Partition(
            machine=machine,
            nodes=nodes,
            torus_shape=shape,
            route_dilation=1.0,
            contention_multiplier=1.0,
        )

    rng = rng if rng is not None else make_rng()
    # Fragmentation grows with how full the machine is and how large the
    # job is relative to the machine.
    fill = nodes / machine.total_nodes
    frag_scale = utilization * (1.0 - 0.5 * fill)
    # Route dilation: scattered nodes lengthen routes by up to ~60%.
    dilation = 1.0 + frag_scale * float(rng.uniform(0.05, 0.6))
    # Background contention: lognormal around a modest mean, heavy tail
    # (occasionally a run lands next to a communication-heavy neighbour).
    contention = 1.0 + frag_scale * float(rng.lognormal(mean=-1.6, sigma=0.7))
    return Partition(
        machine=machine,
        nodes=nodes,
        torus_shape=shape,
        route_dilation=dilation,
        contention_multiplier=contention,
    )


# -- Slab sharding ----------------------------------------------------------
#
# `repro.pdes` splits a partition's torus into contiguous slabs along one
# axis, one slab per simulation shard.  Slabs keep cross-shard surface
# area minimal (only the two slab faces carry boundary traffic) and make
# node ownership a pure function of one coordinate, which is what the
# conservative-lookahead synchronizer needs to route boundary events.


def slab_axis(torus_shape: Tuple[int, int, int]) -> int:
    """The axis a slab decomposition splits: the longest torus dimension.

    Ties break toward the highest axis index (Z-most), matching the
    XYZT mapping's slowest-varying coordinate so slabs line up with
    contiguous rank ranges under the default mapping.
    """
    best = 0
    for axis in range(3):
        if torus_shape[axis] >= torus_shape[best]:
            best = axis
    return best


def slab_extents(extent: int, shards: int) -> Tuple[Tuple[int, int], ...]:
    """Split ``extent`` coordinates into ``shards`` contiguous ranges.

    Returns ``((start, stop), ...)`` half-open ranges whose sizes differ
    by at most one (larger slabs first).  ``shards`` must not exceed
    ``extent`` — an empty slab would have no nodes and nothing to do.
    """
    if shards < 1:
        raise ValueError("shards must be >= 1")
    if shards > extent:
        raise ValueError(
            f"cannot cut {extent} coordinates into {shards} non-empty slabs"
        )
    base, extra = divmod(extent, shards)
    ranges = []
    start = 0
    for i in range(shards):
        size = base + (1 if i < extra else 0)
        ranges.append((start, start + size))
        start += size
    return tuple(ranges)


def shard_of_node(
    node: Tuple[int, int, int],
    torus_shape: Tuple[int, int, int],
    shards: int,
) -> int:
    """The shard owning torus node ``node`` under a slab decomposition."""
    axis = slab_axis(torus_shape)
    coord = node[axis]
    if not 0 <= coord < torus_shape[axis]:
        raise ValueError(f"node {node} outside torus {torus_shape}")
    for shard, (start, stop) in enumerate(slab_extents(torus_shape[axis], shards)):
        if start <= coord < stop:
            return shard
    raise AssertionError("slab_extents covers every coordinate")  # pragma: no cover


def shard_nodes(
    torus_shape: Tuple[int, int, int],
    shards: int,
) -> Tuple[Tuple[Tuple[int, int, int], ...], ...]:
    """All torus nodes grouped by owning shard, in lexicographic order."""
    axis = slab_axis(torus_shape)
    extents = slab_extents(torus_shape[axis], shards)
    groups: Tuple[list, ...] = tuple([] for _ in range(shards))
    for x in range(torus_shape[0]):
        for y in range(torus_shape[1]):
            for z in range(torus_shape[2]):
                node = (x, y, z)
                for shard, (start, stop) in enumerate(extents):
                    if start <= node[axis] < stop:
                        groups[shard].append(node)
                        break
    return tuple(tuple(g) for g in groups)
