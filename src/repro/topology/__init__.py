"""Interconnect topologies: 3-D torus, collective tree, barrier network,
process mappings, and the allocation/fragmentation model."""

from .torus import Torus3D, Coord, LinkKey
from .tree import TreeNetwork
from .barrier import BarrierNetwork, software_barrier_time
from .mapping import (
    Mapping,
    PREDEFINED_MAPPINGS,
    PAPER_FIG2_MAPPINGS,
    coords_of_rank,
    rank_of_coords,
)
from .partition import Partition, allocate
from .analysis import TrafficAnalysis, analyze_pattern, compare_mappings

__all__ = [
    "Torus3D",
    "Coord",
    "LinkKey",
    "TreeNetwork",
    "BarrierNetwork",
    "software_barrier_time",
    "Mapping",
    "PREDEFINED_MAPPINGS",
    "PAPER_FIG2_MAPPINGS",
    "coords_of_rank",
    "rank_of_coords",
    "Partition",
    "allocate",
    "TrafficAnalysis",
    "analyze_pattern",
    "compare_mappings",
]
