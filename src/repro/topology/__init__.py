"""Interconnect topologies: 3-D torus, collective tree, barrier network,
process mappings, and the allocation/fragmentation model."""

from .analysis import analyze_pattern, compare_mappings, TrafficAnalysis
from .barrier import BarrierNetwork, software_barrier_time
from .mapping import (
    coords_of_rank,
    Mapping,
    PAPER_FIG2_MAPPINGS,
    PREDEFINED_MAPPINGS,
    rank_of_coords,
)
from .partition import (
    allocate,
    Partition,
    shard_nodes,
    shard_of_node,
    slab_axis,
    slab_extents,
)
from .torus import Coord, LinkKey, NoRouteError, Torus3D
from .tree import TreeNetwork

__all__ = [
    "Torus3D",
    "Coord",
    "LinkKey",
    "NoRouteError",
    "TreeNetwork",
    "BarrierNetwork",
    "software_barrier_time",
    "Mapping",
    "PREDEFINED_MAPPINGS",
    "PAPER_FIG2_MAPPINGS",
    "coords_of_rank",
    "rank_of_coords",
    "Partition",
    "allocate",
    "slab_axis",
    "slab_extents",
    "shard_of_node",
    "shard_nodes",
    "TrafficAnalysis",
    "analyze_pattern",
    "compare_mappings",
]
