"""Static traffic analysis on torus topologies.

Route a communication pattern once and study where the bytes land:
per-link loads, the maximally loaded link (which sets the bandwidth
term of any phase-structured exchange), and per-mapping comparisons.
The HALO harness uses this machinery inline; here it is exposed for
library users studying their own patterns (the paper's authors did the
same analysis to choose POP/CAM mappings).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Sequence, Tuple

from ..machines.specs import MachineSpec
from .mapping import Mapping
from .torus import LinkKey, Torus3D

__all__ = ["TrafficAnalysis", "analyze_pattern", "compare_mappings"]

#: A communication pattern: (src_rank, dst_rank, bytes) triples.
Pattern = Iterable[Tuple[int, int, float]]


@dataclass(frozen=True)
class TrafficAnalysis:
    """Result of routing one pattern over one mapping."""

    mapping: str
    total_bytes: float
    network_messages: int
    intranode_messages: int
    max_link_bytes: float
    mean_link_bytes: float
    max_hops: int
    loads: Dict[LinkKey, float]

    @property
    def congestion_factor(self) -> float:
        """Max over mean link load: 1.0 = perfectly spread traffic."""
        return (
            self.max_link_bytes / self.mean_link_bytes
            if self.mean_link_bytes > 0
            else 1.0
        )

    def phase_seconds(self, link_bandwidth: float) -> float:
        """Bandwidth-term duration of the pattern as one phase."""
        if link_bandwidth <= 0:
            raise ValueError("link bandwidth must be positive")
        return self.max_link_bytes / link_bandwidth

    def hottest(self, n: int = 5) -> List[Tuple[LinkKey, float]]:
        return sorted(self.loads.items(), key=lambda kv: -kv[1])[:n]


def analyze_pattern(
    machine: MachineSpec,
    shape: Sequence[int],
    mapping: str,
    tasks_per_node: int,
    pattern: Pattern,
) -> TrafficAnalysis:
    """Route every message of ``pattern``; accumulate per-link loads."""
    torus = Torus3D(shape, machine.torus)
    mp = Mapping(mapping, tuple(shape), tasks_per_node)
    loads: Dict[LinkKey, float] = {}
    total = 0.0
    net = intra = 0
    max_hops = 0
    for src, dst, nbytes in pattern:
        if nbytes < 0:
            raise ValueError("negative message size in pattern")
        total += nbytes
        a, b = mp.node_of(src), mp.node_of(dst)
        if a == b:
            intra += 1
            continue
        net += 1
        route = torus.route(a, b)
        max_hops = max(max_hops, len(route))
        for key in route:
            loads[key] = loads.get(key, 0.0) + nbytes
    values = list(loads.values())
    return TrafficAnalysis(
        mapping=mp.order,
        total_bytes=total,
        network_messages=net,
        intranode_messages=intra,
        max_link_bytes=max(values) if values else 0.0,
        mean_link_bytes=sum(values) / len(values) if values else 0.0,
        max_hops=max_hops,
        loads=loads,
    )


def compare_mappings(
    machine: MachineSpec,
    shape: Sequence[int],
    tasks_per_node: int,
    pattern_fn: Callable[[int], Pattern],
    mappings: Sequence[str],
) -> Dict[str, TrafficAnalysis]:
    """Analyze one pattern under several mappings.

    ``pattern_fn(n_ranks)`` builds the pattern for the mapping's
    capacity (all mappings over one shape have equal capacity).
    """
    if not mappings:
        raise ValueError("no mappings given")
    capacity = Mapping(mappings[0], tuple(shape), tasks_per_node).size
    pattern = list(pattern_fn(capacity))
    return {
        m: analyze_pattern(machine, shape, m, tasks_per_node, pattern)
        for m in mappings
    }
