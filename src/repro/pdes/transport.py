"""The shard-aware MPI transport.

:class:`ShardTransport` subclasses the single-engine
:class:`~repro.simmpi.p2p.Transport` and changes exactly one thing:
what happens when a message's destination rank lives on another shard.
Local traffic runs the base implementation unmodified (same protocols,
same link bookings on this shard's torus replica), so a one-shard run
*is* the single-engine run.

Cross-shard traffic becomes :class:`~repro.pdes.boundary.BoundaryEvent`
emissions, each timestamped with its exact effect time on the peer
engine:

* **Eager**: the route is booked on the *sending* replica (the sender
  owns the injection timing) and the arrival is shipped as an
  ``eager`` event at the booked tail time.
* **Rendezvous**: the RTS control message books its (zero-byte) route
  on the sending replica and ships as an ``rts`` event; the sender
  parks on its completion event.  The *receiving* shard books the bulk
  transfer on its replica at match time — exactly when the single
  engine would — delivers the payload locally, and ships a
  ``sender_done`` event releasing the parked sender at the same
  instant.

Every emission satisfies the conservative lookahead bound
``ts >= now + mpi.latency``: eager/RTS deliveries pay the full
injection latency, and the rendezvous completion pays the handshake
plus a full network transit.  Per-link bookings are recorded by the
shard runtime (it wraps the torus links' observers) so the merge can
rebuild one global link timeline and prove no cross-shard booking
conflicts occurred.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from ..simengine import Engine, Event
from ..simmpi.p2p import Message, Transport, _Envelope
from ..topology.mapping import Mapping
from ..topology.torus import Torus3D
from .boundary import BoundaryEvent, EAGER, RTS, SENDER_DONE
from .plan import ShardPlan

__all__ = ["ShardTransport"]


class ShardTransport(Transport):
    """Transport for one shard: local traffic as usual, remote as events."""

    def __init__(
        self,
        env: Engine,
        torus: Torus3D,
        mapping: Mapping,
        machine,
        plan: ShardPlan,
        shard_id: int,
        ranks: Optional[int] = None,
    ) -> None:
        super().__init__(env, torus, mapping, machine, ranks=ranks)
        self.plan = plan
        self.shard_id = shard_id
        #: boundary events emitted since the last drain (coordinator-owned)
        self.outbox: List[BoundaryEvent] = []
        #: rendezvous envelopes parked until the peer's ``sender_done``
        self._parked: Dict[Tuple[int, int], _Envelope] = {}
        self._seq = 0

    # -- helpers -----------------------------------------------------------
    def _is_local(self, rank: int) -> bool:
        return self.plan.rank_shards[rank] == self.shard_id

    def _emit(
        self,
        kind: str,
        ts: float,
        dst_shard: int,
        *,
        src: int = -1,
        dst: int = -1,
        tag: int = 0,
        nbytes: int = 0,
        payload: Any = None,
        send_id: Optional[Tuple[int, int]] = None,
    ) -> BoundaryEvent:
        self._seq += 1
        bev = BoundaryEvent(
            kind=kind,
            ts=ts,
            src_shard=self.shard_id,
            dst_shard=dst_shard,
            seq=self._seq,
            src=src,
            dst=dst,
            tag=tag,
            nbytes=nbytes,
            payload=payload,
            send_id=send_id,
        )
        self.outbox.append(bev)
        return bev

    def drain_outbox(self) -> List[BoundaryEvent]:
        out, self.outbox = self.outbox, []
        return out

    # -- sends -------------------------------------------------------------
    def _send_impl(self, src: int, dst: int, nbytes: int, tag: int, payload: Any):
        if self._is_local(dst):
            yield from super()._send_impl(src, dst, nbytes, tag, payload)
            return
        # Cross-shard: same node implies same shard, so the destination
        # is on a different node — always a network transfer.
        mpi = self.machine.mpi
        self.messages_sent += 1
        self.bytes_sent += nbytes
        msg = Message(src=src, dst=dst, tag=tag, nbytes=nbytes, payload=payload)
        dst_shard = self.plan.rank_shards[dst]

        yield self.env.timeout(mpi.send_overhead)

        if nbytes <= mpi.eager_threshold:
            delay, _lost = self._network_transit(src, dst, nbytes)
            self._emit(
                EAGER, self.env.now + delay, dst_shard,
                src=src, dst=dst, tag=tag, nbytes=nbytes, payload=payload,
            )
            return

        # Rendezvous: ship the RTS, park until the peer reports the
        # bulk transfer complete.
        done = Event(self.env)
        envl = _Envelope(msg, sender_done=done)
        rts_delay, _lost = self._network_transit(src, dst, 0)
        send_id = (self.shard_id, self._seq + 1)  # the seq _emit assigns next
        self._emit(
            RTS, self.env.now + rts_delay, dst_shard,
            src=src, dst=dst, tag=tag, nbytes=nbytes, payload=payload,
            send_id=send_id,
        )
        self._parked[send_id] = envl
        yield done

    def _deliver_rendezvous(self, envelope: _Envelope, delay: float) -> None:
        origin = getattr(envelope, "_pdes_origin", None)
        if origin is not None:
            send_id, origin_shard = origin
            self._emit(
                SENDER_DONE, self.env.now + delay, origin_shard, send_id=send_id
            )
        super()._deliver_rendezvous(envelope, delay)

    # -- incoming boundary events -------------------------------------------
    def inject(self, bev: BoundaryEvent) -> None:
        """Schedule one incoming boundary event at its exact sim time.

        Called by the shard runtime at the start of an advance window;
        the conservative synchronizer guarantees ``bev.ts >= env.now``.
        """
        delay = bev.ts - self.env.now
        if delay < 0:  # pragma: no cover - coordinator invariant
            raise AssertionError(
                f"boundary event in the past: ts={bev.ts} < now={self.env.now}"
            )
        if bev.kind == EAGER:
            msg = Message(
                src=bev.src, dst=bev.dst, tag=bev.tag,
                nbytes=bev.nbytes, payload=bev.payload,
            )
            self._schedule_eager_arrival(_Envelope(msg), delay)
        elif bev.kind == RTS:
            msg = Message(
                src=bev.src, dst=bev.dst, tag=bev.tag,
                nbytes=bev.nbytes, payload=bev.payload,
            )
            envl = _Envelope(msg, sender_done=Event(self.env))
            envl._pdes_origin = (bev.send_id, bev.src_shard)
            ev = Event(self.env)
            ev._ok = True
            ev._value = None
            self.env.schedule(ev, delay=delay)
            ev.callbacks.append(lambda _e, e=envl: self._rts_arrived(e))
        elif bev.kind == SENDER_DONE:
            envl = self._parked.pop(bev.send_id)
            ev = Event(self.env)
            ev._ok = True
            ev._value = None
            self.env.schedule(ev, delay=delay)

            def _release(_e: Event, done=envl.sender_done) -> None:
                if done is not None and not done.triggered:
                    done.succeed()

            ev.callbacks.append(_release)
        else:  # pragma: no cover - defensive
            raise ValueError(f"unknown boundary event kind {bev.kind!r}")
