"""Conservative lookahead synchronization (LBTS rounds).

The coordinator runs the classic null-message-free LBTS scheme: each
round it collects every shard's *effective floor* — the earliest thing
that can still happen there, i.e. ``min(next local event, earliest
undelivered boundary event)`` — and grants each shard a window up to
``min(other shards' floors) + lookahead``.  Events strictly below the
grant are safe to process: any message a peer could still send will
take effect at least one lookahead past the peer's floor.

Progress is guaranteed for well-formed programs: the shard holding the
globally earliest floor always receives a grant strictly above it, so
every round advances at least one event somewhere.  If no shard can
move and ranks are still running, the workload itself is deadlocked
(:class:`~repro.pdes.errors.ShardDeadlockError` — the sharded analogue
of the runtime sanitizer's report).

Accounting: ``pdes.null_messages`` counts floor announcements (one per
shard per round — the null-message traffic a distributed deployment
would pay), ``pdes.stalls`` counts shard-rounds spent blocked on the
lookahead horizon with work pending.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .boundary import BoundaryEvent
from .errors import ShardDeadlockError
from .plan import ShardPlan

__all__ = ["PdesStats", "drive"]

_INF = float("inf")


@dataclass
class PdesStats:
    """Synchronization-layer counters for one sharded run."""

    shards: int = 1
    lookahead: float = 0.0
    rounds: int = 0
    null_messages: int = 0
    stalls: int = 0
    boundary_events: int = 0
    engine_steps: int = 0
    link_conflicts: int = 0
    fallback: bool = False

    def as_dict(self) -> Dict[str, float]:
        return {
            "pdes.shards": self.shards,
            "pdes.lookahead_us": self.lookahead * 1e6,
            "pdes.rounds": self.rounds,
            "pdes.null_messages": self.null_messages,
            "pdes.stalls": self.stalls,
            "pdes.boundary_events": self.boundary_events,
            "pdes.engine_steps": self.engine_steps,
            "pdes.link_conflicts": self.link_conflicts,
        }

    def summary_lines(self) -> List[str]:
        out = ["== pdes synchronization =="]
        for name, value in self.as_dict().items():
            shown = f"{value:.2f}" if isinstance(value, float) else str(value)
            out.append(f"  {name:<24} {shown}")
        return out


@dataclass
class _ShardState:
    floor: float = 0.0
    alive: int = -1  # unknown until the first advance
    done_at: Optional[float] = None
    inbox: List[BoundaryEvent] = field(default_factory=list)

    @property
    def done(self) -> bool:
        return self.alive == 0

    def effective_floor(self) -> float:
        eff = self.floor
        for bev in self.inbox:
            if bev.ts < eff:
                eff = bev.ts
        return eff


def drive(backend, plan: ShardPlan, stats: Optional[PdesStats] = None) -> PdesStats:
    """Run ``backend``'s shards to completion under conservative sync."""
    n = plan.shards
    lookahead = plan.lookahead
    if stats is None:
        stats = PdesStats()
    stats.shards = n
    stats.lookahead = lookahead
    states = [_ShardState() for _ in range(n)]

    while True:
        if all(s.done for s in states) and not any(s.inbox for s in states):
            break
        effs = [s.effective_floor() for s in states]
        grants = [
            min((effs[j] for j in range(n) if j != i), default=_INF) + lookahead
            for i in range(n)
        ]
        batch = []
        for i, s in enumerate(states):
            if s.inbox or s.floor < grants[i]:
                batch.append((i, grants[i], s.inbox))
                s.inbox = []
            elif s.floor < _INF and not s.done:
                stats.stalls += 1
        if not batch:
            blocked = [
                f"shard {i}: {s.alive} rank(s) waiting (next event "
                + ("none" if s.floor == _INF else f"at {s.floor:.6g}s")
                + ")"
                for i, s in enumerate(states)
                if not s.done
            ]
            raise ShardDeadlockError(blocked)
        results = backend.advance(batch)
        for res in results:
            s = states[res.shard_id]
            s.floor = res.floor
            s.alive = res.alive
            s.done_at = res.done_at
            stats.engine_steps += res.steps
            stats.boundary_events += len(res.outbox)
            for bev in res.outbox:
                states[bev.dst_shard].inbox.append(bev)
        stats.rounds += 1
        stats.null_messages += n
    return stats
