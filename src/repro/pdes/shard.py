"""One shard: a full cluster replica driven in lookahead windows.

Every shard holds the *whole* machine description — partition, torus,
mapping, cost model — but spawns rank programs only for the ranks its
slab owns and swaps the transport for a
:class:`~repro.pdes.transport.ShardTransport`.  Replicating the torus
keeps routing and link booking identical to the single-engine run
(routes cross slab boundaries freely; each shard books the complete
route of every message it originates), at the price of the merge layer
having to rebuild one global per-link timeline from the replicas'
booking logs.

:class:`ShardRuntime` owns the engine-driving side: it injects
incoming boundary events in deterministic ``(ts, src_shard, seq)``
order, steps the engine strictly below the granted lookahead horizon,
and reports its new event floor.  When the run completes it freezes
everything the merge needs into a picklable :class:`ShardReport`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..obs import Tracer
from ..simmpi.comm import Cluster, RankComm, _OpSync
from .boundary import BoundaryEvent
from .errors import ShardUnsupportedError
from .plan import ShardPlan
from .transport import ShardTransport

__all__ = [
    "ShardCluster",
    "ShardRuntime",
    "ShardReport",
    "AdvanceResult",
    "record_link_bookings",
]


def record_link_bookings(
    cluster: Cluster,
    bookings: List[Tuple[str, float, float, float, float, float]],
) -> None:
    """Chain a booking-log recorder in front of each link's observer.

    Both the sharded runtime and the single-engine reference run record
    raw ``(label, nbytes, booked, start, wait, duration)`` bookings
    through this one hook, so the merge layer rebuilds both sides' link
    state from identical inputs.  ``booked`` is the sim time the
    reservation was *made* (links serialize in booking order, which can
    differ from wire-arrival order), ``start`` when the head actually
    crossed.
    """
    env = cluster.env
    for key, link in cluster.torus.links.items():
        (ax, ay, az), (bx, by, bz) = key
        label = f"({ax},{ay},{az})->({bx},{by},{bz})"
        base = link.observer

        def observe(
            nbytes: float, start: float, wait: float, duration: float,
            _label: str = label, _base=base,
        ) -> None:
            bookings.append((_label, nbytes, env.now, start, wait, duration))
            if _base is not None:
                _base(nbytes, start, wait, duration)

        link.observer = observe


class ShardCluster(Cluster):
    """A :class:`Cluster` whose transport splits traffic at shard edges."""

    def __init__(self, plan: ShardPlan, shard_id: int) -> None:
        super().__init__(
            plan.machine,
            plan.ranks,
            mode=plan.mode.mode,
            mapping=plan.mapping.order,
            partition=plan.partition,
        )
        self.plan = plan
        self.shard_id = shard_id
        self.transport = ShardTransport(
            self.env, self.torus, self.mapping, plan.machine,
            plan=plan, shard_id=shard_id, ranks=plan.ranks,
        )

    def _next_sync(self, rank: int, kind: str) -> _OpSync:
        raise ShardUnsupportedError(
            f"hardware collective {kind!r} (rank {rank}) synchronizes the "
            "whole partition in one engine and cannot run sharded; use a "
            "software-collective machine or run unsharded"
        )


@dataclass
class AdvanceResult:
    """What one shard reports after an advance window (picklable)."""

    shard_id: int
    outbox: List[BoundaryEvent]
    #: time of the next unprocessed local event (inf when drained)
    floor: float
    #: rank programs still running on this shard
    alive: int
    #: sim time when the last owned rank finished (None while running)
    done_at: Optional[float]
    steps: int


@dataclass
class ShardReport:
    """Everything the deterministic merge needs from one shard."""

    shard_id: int
    owned_ranks: Tuple[int, ...]
    #: Chrome-trace event dicts in this shard's recording order
    events: List[dict] = field(default_factory=list)
    process_names: Dict[int, str] = field(default_factory=dict)
    thread_names: Dict[Tuple[int, int], str] = field(default_factory=dict)
    #: metric registry snapshot (``MetricsRegistry.to_dict()`` shape)
    counters: Dict[str, Any] = field(default_factory=dict)
    gauges: Dict[str, Any] = field(default_factory=dict)
    histograms: Dict[str, Any] = field(default_factory=dict)
    #: (label, nbytes, booked, start, wait, duration) per link booking
    bookings: List[Tuple[str, float, float, float, float, float]] = field(default_factory=list)
    #: (src, dst, nbytes, tag, start, end) per completed send
    sends: List[Tuple[int, int, int, int, float, float]] = field(default_factory=list)
    returns: Dict[int, Any] = field(default_factory=dict)
    done_at: float = 0.0
    messages: int = 0
    bytes_sent: int = 0


class ShardRuntime:
    """Drives one shard's engine under the conservative synchronizer."""

    def __init__(
        self,
        plan: ShardPlan,
        shard_id: int,
        program,
        args: Tuple[Any, ...] = (),
        observe: bool = True,
    ) -> None:
        self.plan = plan
        self.shard_id = shard_id
        self.cluster = ShardCluster(plan, shard_id)
        self.observe = observe
        self.bookings: List[Tuple[str, float, float, float, float, float]] = []
        self.sends: List[Tuple[int, int, int, int, float, float]] = []
        if observe:
            self.tracer: Optional[Tracer] = Tracer().attach(self.cluster)
            record_link_bookings(self.cluster, self.bookings)
            self.cluster.transport.add_send_hook(self._on_send)
        else:
            # Bare timing mode: no tracer, no booking/send logs.  Used
            # by benchmarks and large sweeps where per-message artifacts
            # (and their cross-process pickling) would dominate runtime.
            self.tracer = None
        self.owned = plan.owned_ranks(shard_id)
        env = self.cluster.env
        self.procs = [
            env.process(program(RankComm(self.cluster, r), *args))
            for r in self.owned
        ]
        #: sim time at which the last owned rank finished
        self.done_at: Optional[float] = None if self.procs else 0.0
        # O(1) completion tracking: scanning every process per engine
        # step would cost O(ranks) at each of millions of steps.
        self._alive = len(self.procs)
        for proc in self.procs:
            proc.callbacks.append(self._rank_done)

    def _rank_done(self, _event) -> None:
        self._alive -= 1
        if self._alive == 0:
            self.done_at = self.cluster.env.now

    # -- telemetry hooks ---------------------------------------------------
    def _on_send(
        self, src: int, dst: int, nbytes: int, tag: int, start: float, end: float
    ) -> None:
        self.sends.append((src, dst, nbytes, tag, start, end))

    # -- driving -----------------------------------------------------------
    @property
    def alive(self) -> int:
        return self._alive

    def floor(self) -> float:
        return self.cluster.env.peek()

    def advance(
        self, grant: float, incoming: List[BoundaryEvent]
    ) -> AdvanceResult:
        """Inject ``incoming`` and process every event strictly below ``grant``."""
        env = self.cluster.env
        for bev in sorted(incoming, key=BoundaryEvent.order_key):
            self.cluster.transport.inject(bev)
        steps = 0
        while env.peek() < grant:
            env.step()
            steps += 1
        return AdvanceResult(
            shard_id=self.shard_id,
            outbox=self.cluster.transport.drain_outbox(),
            floor=env.peek(),
            alive=self.alive,
            done_at=self.done_at,
            steps=steps,
        )

    # -- reporting -----------------------------------------------------------
    def report(self) -> ShardReport:
        tracer = self.tracer
        registry = (
            tracer.metrics.to_dict()
            if tracer is not None
            else {"counters": {}, "gauges": {}, "histograms": {}}
        )
        return ShardReport(
            shard_id=self.shard_id,
            owned_ranks=self.owned,
            events=list(tracer.events) if tracer is not None else [],
            process_names=dict(tracer._process_names) if tracer is not None else {},
            thread_names=dict(tracer._thread_names) if tracer is not None else {},
            counters=registry["counters"],
            gauges=registry["gauges"],
            histograms=registry["histograms"],
            bookings=list(self.bookings),
            sends=list(self.sends),
            returns={r: p.value for r, p in zip(self.owned, self.procs)},
            done_at=self.done_at if self.done_at is not None else self.cluster.env.now,
            messages=self.cluster.transport.messages_sent,
            bytes_sent=self.cluster.transport.bytes_sent,
        )
