"""Timestamped boundary events exchanged between shards.

A cross-shard MPI message never moves payload between engines directly;
the sending shard books the network route on its torus replica and
emits one of three boundary events, each carrying the full delivery
time so the receiving shard can schedule it exactly:

* ``eager`` — an eager-protocol payload arriving at the receiver at
  ``ts`` (the sender has already completed).
* ``rts`` — a rendezvous ready-to-send control message arriving at the
  receiver at ``ts``; the bulk transfer is booked by the receiving
  shard at match time.
* ``sender_done`` — the receiving shard's answer to an ``rts``: the
  bulk transfer completes at ``ts``, releasing the parked sender.

Every event is plain data (picklable) and totally ordered by
``(ts, src_shard, seq)`` — the deterministic injection order that makes
a sharded run independent of host scheduling.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional, Tuple

__all__ = ["BoundaryEvent", "EAGER", "RTS", "SENDER_DONE"]

EAGER = "eager"
RTS = "rts"
SENDER_DONE = "sender_done"


@dataclass(frozen=True)
class BoundaryEvent:
    """One cross-shard hand-off, scheduled at absolute sim time ``ts``."""

    kind: str
    #: absolute simulation time at which the event takes effect
    ts: float
    #: shard that emitted the event / shard that must process it
    src_shard: int
    dst_shard: int
    #: per-source-shard emission counter (deterministic tie-break)
    seq: int
    #: message coordinates (meaningful for ``eager`` and ``rts``)
    src: int = -1
    dst: int = -1
    tag: int = 0
    nbytes: int = 0
    payload: Any = None
    #: rendezvous correlation id: ``(sender_shard, sender_seq)``
    send_id: Optional[Tuple[int, int]] = None

    def order_key(self) -> Tuple[float, int, int]:
        """Deterministic injection order: ``(ts, src_shard, seq)``."""
        return (self.ts, self.src_shard, self.seq)
