"""Errors raised by the parallel-DES subsystem.

Kept dependency-free (stdlib only): :mod:`repro.simmpi.comm` imports
:class:`ShardUnsupportedError` at module load to gate the ambient
``--shards`` interception, so this module must never import simulator
code back.
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["PdesError", "ShardUnsupportedError", "ShardDeadlockError", "LinkConflictError"]


class PdesError(Exception):
    """Base class for parallel-DES failures."""


class ShardUnsupportedError(PdesError):
    """The workload used a feature the sharded engine cannot split.

    Raised mid-run when a program touches machinery that synchronizes
    across the whole partition in one engine (hardware tree/barrier
    collectives, fault injection, ULFM recovery).  The ambient
    ``--shards`` path catches this and falls back to the single-engine
    run; the explicit ``repro pdes run`` path reports it.
    """


class ShardDeadlockError(PdesError):
    """No shard can advance and the run is not complete.

    The conservative synchronizer proves progress for well-formed
    programs, so this means ranks are genuinely blocked on
    communication that will never arrive (the sharded analogue of the
    sanitizer's deadlock report).
    """

    def __init__(self, blocked: Sequence[str]) -> None:
        self.blocked = list(blocked)
        super().__init__(
            "sharded run deadlocked: every engine is idle but ranks are "
            "still waiting — " + "; ".join(self.blocked)
        )


class LinkConflictError(PdesError):
    """Cross-shard link bookings interleaved in time on one directed link.

    Each shard books torus routes on its own replica of the torus; the
    merge replays every booking against one global link timeline and
    raises this when two shards' transfers would have contended for the
    same link serialization window — the one case where the sharded
    timing model can drift from the single-engine run.
    """

    def __init__(self, conflicts: Sequence[str]) -> None:
        self.conflicts = list(conflicts)
        super().__init__(
            f"{len(self.conflicts)} cross-shard link conflict(s) detected; "
            "sharded timing is not exact for this workload — "
            + "; ".join(self.conflicts[:3])
        )
