"""Message-level scenarios runnable sharded or single-engine.

Each scenario names a machine, a rank count, and a module-level rank
program — module-level so the multiprocessing backend can rebuild the
workload in a worker from ``(scenario name, params)`` alone, with no
function pickling.  The set mirrors the paper figures the sharded
engine is meant to unlock:

* ``torus-ring`` — nearest-rank rendezvous ring shift (the Fig. 2
  HALO-style torus traffic of ``repro trace torus-ring``, sized so a
  4-way slab split exists).
* ``allreduce`` — the software-allreduce sweep of Fig. 3 on the XT
  (ring/bucket algorithm over pure p2p; the large chunk size also
  exercises the cross-shard rendezvous path).
* ``halo`` — a large eager nearest-neighbour exchange (Fig. 2 regime)
  whose default 4096 ranks is the message-level scale target sharding
  exists for.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Tuple

from ..machines import get_machine
from ..machines.specs import MachineSpec

__all__ = ["PdesScenario", "SCENARIOS", "get_scenario", "scenario_ids"]


# -- rank programs (module level: the process backend re-imports them) ------

def ring_program(comm, nbytes: int, repeats: int):
    """Ring shift: irecv left, send right, wait — per repetition."""
    right = (comm.rank + 1) % comm.size
    left = (comm.rank - 1) % comm.size
    for rep in range(repeats):
        req = comm.irecv(src=left, tag=rep)
        yield from comm.send(right, nbytes=nbytes, tag=rep)
        yield from comm.wait(req)
    return comm.now


def allreduce_program(comm, nbytes_list: Tuple[int, ...], repeats: int):
    """Ring (bucket) allreduce sweep: reduce-scatter + allgather rings.

    The large-message production algorithm (2(P-1) nearest-neighbour
    steps moving ``nbytes/P`` chunks) written out in p2p.  Chosen over
    recursive doubling deliberately: ring traffic keeps every directed
    wire private to one sender, which is what lets a sharded run
    reproduce the single engine byte-exactly — long-distance exchange
    patterns share wires across the slab cut and are caught (and
    rejected) by the link-conflict validator instead.
    """
    right = (comm.rank + 1) % comm.size
    left = (comm.rank - 1) % comm.size
    for rep in range(repeats):
        for nbytes in nbytes_list:
            chunk = max(1, -(-nbytes // comm.size))
            # 2(P-1) ring steps: P-1 reduce-scatter, P-1 allgather
            for step in range(2 * (comm.size - 1)):
                tag = rep * 10000 + step
                req = comm.irecv(src=left, tag=tag)
                yield from comm.send(right, nbytes=chunk, tag=tag)
                yield from comm.wait(req)
    return comm.now


def halo_program(comm, nbytes: int, repeats: int):
    """Eager nearest-neighbour exchange along the rank line.

    Each rank swaps one eager-sized message with both line neighbours
    (ranks at the ends have one neighbour), the 1-D skeleton of the
    paper's HALO benchmark, repeated ``repeats`` times.
    """
    neighbours = [r for r in (comm.rank - 1, comm.rank + 1) if 0 <= r < comm.size]
    for rep in range(repeats):
        reqs = [comm.irecv(src=nb, tag=rep) for nb in neighbours]
        for nb in neighbours:
            yield from comm.send(nb, nbytes=nbytes, tag=rep)
        yield from comm.waitall(reqs)
    return comm.now


@dataclass(frozen=True)
class PdesScenario:
    """A named, parameterizable sharded-DES workload."""

    name: str
    description: str
    machine_name: str
    ranks: int
    mode: str
    mapping: str
    program: Callable
    #: defaults for the program arguments after ``comm`` (in order)
    defaults: Tuple[Tuple[str, Any], ...]

    @property
    def machine(self) -> MachineSpec:
        return get_machine(self.machine_name)

    def resolve(self, params: Dict[str, Any]) -> Tuple[int, Tuple[Any, ...]]:
        """Validate ``params``; return ``(ranks, program args)``.

        ``ranks`` may be overridden; every other key must name one of
        the program's parameters.
        """
        known = {"ranks"} | {k for k, _ in self.defaults}
        unknown = sorted(set(params) - known)
        if unknown:
            raise KeyError(
                f"scenario {self.name!r} does not take parameter(s) "
                f"{unknown}; supported: {sorted(known)}"
            )
        ranks = int(params.get("ranks", self.ranks))
        args = tuple(
            params.get(k, default) for k, default in self.defaults
        )
        return ranks, args


SCENARIOS: Dict[str, PdesScenario] = {
    s.name: s
    for s in [
        PdesScenario(
            name="torus-ring",
            description="rendezvous ring shift on a BG/P sub-torus (Fig. 2 traffic)",
            machine_name="BGP",
            ranks=16,
            mode="SMP",
            mapping="XYZT",
            program=ring_program,
            defaults=(("nbytes", 1 << 16), ("repeats", 4)),
        ),
        PdesScenario(
            name="allreduce",
            description="ring allreduce sweep on the XT4 (Fig. 3 sizes)",
            machine_name="XT4/QC",
            ranks=16,
            mode="SMP",
            mapping="XYZT",
            program=allreduce_program,
            defaults=(("nbytes_list", (8192, 65536, 1 << 20)), ("repeats", 1)),
        ),
        PdesScenario(
            name="halo",
            description="eager nearest-neighbour exchange at scale (Fig. 2 regime)",
            machine_name="BGP",
            ranks=4096,
            mode="SMP",
            mapping="XYZT",
            program=halo_program,
            defaults=(("nbytes", 512), ("repeats", 2)),
        ),
    ]
}


def scenario_ids() -> List[str]:
    return list(SCENARIOS)


def get_scenario(name: str) -> PdesScenario:
    try:
        return SCENARIOS[name]
    except KeyError:
        raise KeyError(
            f"unknown pdes scenario {name!r}; known: {scenario_ids()}"
        ) from None


def describe(scenario: PdesScenario) -> str:
    defaults = ", ".join(f"{k}={v!r}" for k, v in scenario.defaults)
    return (
        f"{scenario.name}: {scenario.description} "
        f"[{scenario.machine_name} x{scenario.ranks} {scenario.mode}; {defaults}]"
    )
