"""repro.pdes — sharded parallel DES with conservative lookahead.

Shards one cluster simulation into contiguous torus slabs, runs one
engine per shard under a conservative lookahead synchronizer (LBTS
rounds; lookahead = the machine's MPI latency, the minimum time any
cross-shard message needs before taking effect), and deterministically
merges the per-shard streams so sharded runs are **byte-identical** to
the single-engine run.

Front doors:

* ``repro.pdes.run("halo", shards=4, backend="process")`` — run a
  named scenario sharded and get canonical artifacts.
* ``with repro.pdes.sharding(4): cluster.run(program)`` — ambient
  sharding for arbitrary programs; ineligible configurations fall back
  to the single engine (see :func:`fallback_count`).

Only the dependency-free ambient/error surface is imported eagerly;
everything touching :mod:`repro.simmpi` loads lazily so ``import
repro.simmpi`` → ``repro.pdes.ambient`` does not recurse.
"""

from .ambient import active_shards, fallback_count, sharding
from .errors import (
    LinkConflictError,
    PdesError,
    ShardDeadlockError,
    ShardUnsupportedError,
)

__all__ = [
    "active_shards",
    "fallback_count",
    "sharding",
    "PdesError",
    "LinkConflictError",
    "ShardDeadlockError",
    "ShardUnsupportedError",
    # lazy (see __getattr__):
    "run",
    "maybe_run_sharded",
    "PdesResult",
    "PdesStats",
    "ShardPlan",
    "ShardRuntime",
    "ShardReport",
    "InlineBackend",
    "ProcessBackend",
    "SCENARIOS",
    "get_scenario",
    "scenario_ids",
]

_LAZY = {
    "run": ("repro.pdes.runner", "run"),
    "maybe_run_sharded": ("repro.pdes.runner", "maybe_run_sharded"),
    "PdesResult": ("repro.pdes.runner", "PdesResult"),
    "PdesStats": ("repro.pdes.sync", "PdesStats"),
    "ShardPlan": ("repro.pdes.plan", "ShardPlan"),
    "ShardRuntime": ("repro.pdes.shard", "ShardRuntime"),
    "ShardReport": ("repro.pdes.shard", "ShardReport"),
    "InlineBackend": ("repro.pdes.backend", "InlineBackend"),
    "ProcessBackend": ("repro.pdes.backend", "ProcessBackend"),
    "SCENARIOS": ("repro.pdes.scenarios", "SCENARIOS"),
    "get_scenario": ("repro.pdes.scenarios", "get_scenario"),
    "scenario_ids": ("repro.pdes.scenarios", "scenario_ids"),
}


def __getattr__(name):
    try:
        module_name, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        ) from None
    import importlib

    return getattr(importlib.import_module(module_name), attr)
