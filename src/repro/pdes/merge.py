"""Deterministic merge of per-shard streams onto one timeline.

The acceptance bar for the sharded engine is *byte identity*: the
merged artifacts of an N-shard run must equal the single-engine run's,
bit for bit.  Two classes of divergence have to be canonicalized away,
and the same canonicalization is applied to **both** sides (the
single-engine reference is exported through these functions too), so
whatever survives is real timing divergence, not formatting noise:

* **Recording order.**  One engine interleaves all ranks' events in
  execution order; shards record only their own.  Every exported event
  list is therefore sorted by content — ``(ts, pid, tid, ph, name,
  serialized event)`` — which is a total order over identical event
  sets.
* **Cumulative link counters.**  Chrome link-counter samples carry
  *cumulative* per-link totals, and a rendezvous crossing a shard edge
  books its RTS on the sending replica but its bulk bytes on the
  receiving replica, so raw cumulative values differ between modes
  even when every booking is identical.  The merge therefore works in
  *deltas*: each shard logs raw bookings (label, nbytes, start, wait,
  duration), the union is sorted, one global timeline is rebuilt, and
  counter samples, the per-link table, and the ``net.link_*`` registry
  counters are all regenerated from that canonical order — float
  accumulation order included.

Host/engine telemetry (``engine.*`` metrics, the engine queue-depth
counter track) measures *the simulator*, not the simulation: a sharded
run legitimately steps different engines, so those are dropped from
canonical output on both sides.

The same sorted booking timeline doubles as the **conflict validator**
(:func:`find_link_conflicts`): replaying every booking against one
global per-link ``free_at`` horizon proves no two shards' transfers
contended for a link serialization window — the one case where
replicated-torus timing could drift from the single engine.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Sequence, Tuple

from ..obs.tracer import ENGINE_PID, NETWORK_PID
from .shard import ShardReport

__all__ = [
    "canonical_trace_json",
    "canonical_metrics_json",
    "canonical_events_jsonl",
    "find_link_conflicts",
    "merged_elapsed",
    "merged_returns",
]

_Booking = Tuple[str, float, float, float, float, float]


# -- booking timeline -------------------------------------------------------

def merged_bookings(reports: Sequence[ShardReport]) -> List[_Booking]:
    """Union of all shards' link bookings, sorted by wire-start time.

    ``(start, label, nbytes, duration, wait, booked)`` is a total
    order for any two distinct bookings that could coexist on one
    timeline; this is the canonical order all *display* state (counter
    tracks, link table) is rebuilt in.
    """
    merged = [b for r in reports for b in r.bookings]
    merged.sort(key=lambda b: (b[3], b[0], b[1], b[5], b[4], b[2]))
    return merged


def find_link_conflicts(reports: Sequence[ShardReport]) -> List[str]:
    """Replay bookings on one global timeline; report inconsistencies.

    Links serialize in *booking* order (a reservation made earlier
    wins the wire even if its head arrives later), so the replay walks
    the union in booking-time order — which, for events at distinct sim
    times, is exactly the single engine's execution order.  Each
    booking recorded ``start = max(head, replica free_at)`` with
    ``head = start - wait``; replaying against one global per-link
    horizon recomputes what the single engine would have done, and any
    recorded start that disagrees means two shards' transfers contended
    for that wire.  Two shards booking the same link at the *same* sim
    time is flagged too: the single engine's ordering of simultaneous
    events is not recoverable from shard-local logs, so exactness
    cannot be certified.
    """
    conflicts: List[str] = []
    timeline: List[Tuple[float, str, float, float, float, float, int]] = [
        (booked, label, start, nbytes, duration, wait, r.shard_id)
        for r in reports
        for label, nbytes, booked, start, wait, duration in r.bookings
    ]
    timeline.sort()
    free_at: Dict[str, float] = {}
    last_at: Dict[str, Tuple[float, int]] = {}
    for booked, label, start, nbytes, duration, wait, shard in timeline:
        head = start - wait
        expected = max(head, free_at.get(label, 0.0))
        if expected != start:
            conflicts.append(
                f"link {label}: booking of {int(nbytes)}B at t={start:.9g}s "
                f"inconsistent with global horizon t={expected:.9g}s"
            )
        prev = last_at.get(label)
        if prev is not None and prev[0] == booked and prev[1] != shard:
            conflicts.append(
                f"link {label}: shards {prev[1]} and {shard} both booked it "
                f"at t={booked:.9g}s (simultaneous cross-shard reservations "
                "are order-ambiguous)"
            )
        free_at[label] = start + duration
        last_at[label] = (booked, shard)
    return conflicts


def _rebuilt_link_state(
    reports: Sequence[ShardReport],
) -> Tuple[List[dict], Dict[str, Dict[str, float]], Dict[str, Any]]:
    """Rebuild link counter events, the link table, and net.* counters."""
    events: List[dict] = []
    table: Dict[str, Dict[str, float]] = {}
    link_bytes = 0.0
    link_transfers = 0
    link_stalls = 0
    link_stall_seconds = 0.0
    for label, nbytes, _booked, start, wait, duration in merged_bookings(reports):
        row = table.get(label)
        if row is None:
            row = table[label] = {
                "bytes": 0.0,
                "transfers": 0.0,
                "stalls": 0.0,
                "stall_seconds": 0.0,
                "busy_seconds": 0.0,
            }
        row["bytes"] += nbytes
        row["transfers"] += 1
        row["busy_seconds"] += duration
        link_bytes += nbytes
        link_transfers += 1
        if wait > 0:
            row["stalls"] += 1
            row["stall_seconds"] += wait
            link_stalls += 1
            link_stall_seconds += wait
        events.append(
            {
                "name": f"link {label}",
                "cat": "counter",
                "ph": "C",
                "ts": start * 1e6,
                "pid": NETWORK_PID,
                "tid": 0,
                "args": {"bytes": row["bytes"], "stalls": row["stalls"]},
            }
        )
    counters: Dict[str, Any] = {}
    if link_transfers:
        counters["net.link_bytes"] = link_bytes
        counters["net.link_transfers"] = link_transfers
    if link_stalls:
        counters["net.link_stalls"] = link_stalls
        counters["net.link_stall_seconds"] = link_stall_seconds
    return events, {k: table[k] for k in sorted(table)}, counters


# -- chrome trace -----------------------------------------------------------

def _event_sort_key(ev: dict) -> Tuple:
    return (
        ev.get("ts", -1.0),
        ev.get("pid", -1),
        ev.get("tid", -1),
        ev.get("ph", ""),
        ev.get("name", ""),
        json.dumps(ev, sort_keys=True),
    )


def _canonical_span_events(reports: Sequence[ShardReport]) -> List[dict]:
    """All non-link, non-engine-counter events, content-sorted."""
    keep: List[dict] = []
    for report in reports:
        for ev in report.events:
            if ev.get("ph") == "C" and ev.get("pid") in (ENGINE_PID, NETWORK_PID):
                continue
            keep.append(ev)
    keep.sort(key=_event_sort_key)
    return keep


def _merged_metadata(reports: Sequence[ShardReport]) -> List[dict]:
    process_names: Dict[int, str] = {}
    thread_names: Dict[Tuple[int, int], str] = {}
    for report in reports:
        process_names.update(report.process_names)
        thread_names.update(report.thread_names)
    out: List[dict] = []
    for pid in sorted(process_names):
        out.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": process_names[pid]},
            }
        )
    for pid, tid in sorted(thread_names):
        out.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": pid,
                "tid": tid,
                "args": {"name": thread_names[(pid, tid)]},
            }
        )
    return out


def canonical_trace_json(reports: Sequence[ShardReport]) -> str:
    """The canonical Chrome ``trace_events`` document (one line + ``\\n``)."""
    link_events, _table, _counters = _rebuilt_link_state(reports)
    events = _canonical_span_events(reports) + link_events
    events.sort(key=_event_sort_key)
    doc = {
        "traceEvents": _merged_metadata(reports) + events,
        "displayTimeUnit": "ms",
    }
    return json.dumps(doc, sort_keys=True, separators=(",", ":")) + "\n"


# -- metrics ----------------------------------------------------------------

def canonical_metrics_json(reports: Sequence[ShardReport]) -> str:
    """The canonical metrics document (registry + links + spans)."""
    _link_events, table, link_counters = _rebuilt_link_state(reports)

    counters: Dict[str, Any] = {}
    for report in reports:
        for name, value in report.counters.items():
            if name.startswith(("engine.", "net.link_")):
                continue
            counters[name] = counters.get(name, 0) + value
    counters.update(link_counters)

    gauges: Dict[str, Dict[str, Any]] = {}
    for report in reports:
        for name, g in report.gauges.items():
            if name.startswith("engine."):
                continue
            cur = gauges.get(name)
            if cur is None:
                gauges[name] = dict(g)
            else:
                cur["max"] = max(cur["max"], g["max"])
                cur["value"] = max(cur["value"], g["value"])

    histograms: Dict[str, Dict[str, Any]] = {}
    for report in reports:
        for name, h in report.histograms.items():
            cur = histograms.get(name)
            if cur is None:
                histograms[name] = {
                    "count": h["count"],
                    "total": h["total"],
                    "buckets": dict(h["buckets"]),
                }
            else:
                cur["count"] += h["count"]
                cur["total"] += h["total"]
                for bucket, n in h["buckets"].items():
                    cur["buckets"][bucket] = cur["buckets"].get(bucket, 0) + n

    spans: Dict[str, List[float]] = {}
    for ev in _canonical_span_events(reports):
        if ev.get("ph") != "X":
            continue
        tot = spans.get(ev["name"])
        if tot is None:
            tot = spans[ev["name"]] = [0, 0.0]
        tot[0] += 1
        tot[1] += ev["dur"] / 1e6

    doc = {
        "counters": {k: counters[k] for k in sorted(counters)},
        "gauges": {k: gauges[k] for k in sorted(gauges)},
        "histograms": {k: histograms[k] for k in sorted(histograms)},
        "links": table,
        "spans": {
            name: {"count": int(c), "total_seconds": t}
            for name, (c, t) in sorted(spans.items())
        },
    }
    return json.dumps(doc, sort_keys=True, indent=2) + "\n"


# -- per-message event stream ----------------------------------------------

def canonical_events_jsonl(reports: Sequence[ShardReport]) -> str:
    """One JSON line per completed send, in canonical global order."""
    merged = [s for r in reports for s in r.sends]
    merged.sort(key=lambda s: (s[4], s[5], s[0], s[1], s[3], s[2]))
    lines = [
        json.dumps(
            {
                "src": src,
                "dst": dst,
                "nbytes": nbytes,
                "tag": tag,
                "start": start,
                "end": end,
            },
            sort_keys=True,
            separators=(",", ":"),
        )
        for src, dst, nbytes, tag, start, end in merged
    ]
    return "\n".join(lines) + ("\n" if lines else "")


# -- scalar results ---------------------------------------------------------

def merged_elapsed(reports: Sequence[ShardReport]) -> float:
    """Global finish time: when the last rank anywhere completed."""
    return max((r.done_at for r in reports), default=0.0)


def merged_returns(reports: Sequence[ShardReport], ranks: int) -> List[Any]:
    """Per-rank return values in global rank order."""
    by_rank: Dict[int, Any] = {}
    for report in reports:
        by_rank.update(report.returns)
    missing = [r for r in range(ranks) if r not in by_rank]
    if missing:
        raise ValueError(f"no shard reported returns for rank(s) {missing}")
    return [by_rank[r] for r in range(ranks)]
