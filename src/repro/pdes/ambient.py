"""Ambient sharding context (the ``--shards N`` switch).

Mirrors :func:`repro.obs.tracing`: a context manager installs a shard
count, and every :meth:`repro.simmpi.comm.Cluster.run` entered inside
the context routes eligible runs through the sharded engine —
experiment code that builds its own clusters needs no plumbing
changes::

    with sharding(4):
        run_experiment("fig2")   # DES clusters inside run 4-way sharded

Ineligible runs (armed faults/recovery/sanitizer, hardware-collective
machines, attached tracers) fall back to the single-engine path
silently; results are byte-identical either way, so the switch is pure
execution policy.  This module is dependency-free because
``simmpi.comm`` imports it at module load.
"""

from __future__ import annotations

from typing import List, Optional

__all__ = ["sharding", "active_shards", "fallback_count", "note_fallback"]

_ACTIVE: List[int] = []

#: Runs that entered a sharding context but fell back to one engine
#: (diagnosis aid for `repro run --shards`; reset per context entry).
_FALLBACKS: List[int] = [0]


def active_shards() -> Optional[int]:
    """The innermost ambient shard count, or ``None`` when inactive."""
    return _ACTIVE[-1] if _ACTIVE else None


def note_fallback() -> None:
    """Record one sharded-ineligible run (called by ``Cluster.run``)."""
    _FALLBACKS[0] += 1


def fallback_count() -> int:
    """Single-engine fallbacks since the outermost context was entered."""
    return _FALLBACKS[0]


class sharding:
    """Context manager installing an ambient shard count.

    ``shards`` must be >= 1; a count of 1 is a no-op (kept valid so
    sweep drivers can pass computed values straight through).
    """

    def __init__(self, shards: int) -> None:
        if shards < 1:
            raise ValueError("shards must be >= 1")
        self.shards = shards

    def __enter__(self) -> "sharding":
        if not _ACTIVE:
            _FALLBACKS[0] = 0
        _ACTIVE.append(self.shards)
        return self

    def __exit__(self, *_exc) -> None:
        _ACTIVE.pop()
