"""Shard planning: who owns which node, rank, and link.

A :class:`ShardPlan` cuts one job partition into contiguous torus
slabs (see :func:`repro.topology.partition.slab_extents`), assigns
every rank to the shard owning its node, and derives the conservative
lookahead window — the minimum latency any cross-shard message pays
before it can take effect on the peer engine.  With dimension-order
routing and per-message injection latency, that bound is simply the
machine's MPI latency: every boundary event's effect time is at least
``emit_time + mpi.latency`` (eager and RTS deliveries pay the full
injection latency; the rendezvous completion notification additionally
pays the rendezvous handshake).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from ..machines.modes import ModeConfig, resolve_mode
from ..machines.specs import MachineSpec
from ..topology.mapping import Mapping
from ..topology.partition import allocate, Partition, slab_axis, slab_extents, shard_of_node

__all__ = ["ShardPlan"]


@dataclass(frozen=True)
class ShardPlan:
    """A deterministic sharding of one cluster configuration."""

    machine: MachineSpec
    ranks: int
    mode: ModeConfig
    mapping: Mapping
    partition: Partition
    shards: int
    #: shard owning each rank, indexed by global rank
    rank_shards: Tuple[int, ...]
    #: conservative lookahead window (seconds)
    lookahead: float

    @classmethod
    def build(
        cls,
        machine: MachineSpec,
        ranks: int,
        shards: int,
        mode: str = "SMP",
        mapping: str = "XYZT",
        partition: Optional[Partition] = None,
    ) -> "ShardPlan":
        """Plan a sharded run of ``ranks`` ranks split ``shards`` ways.

        Mirrors :class:`~repro.simmpi.comm.Cluster` defaults exactly
        (``utilization=0.0`` allocation) so the plan's partition is the
        one the equivalent single-engine run would use.
        """
        if shards < 1:
            raise ValueError("shards must be >= 1")
        mode_cfg = resolve_mode(machine, mode)
        nodes = mode_cfg.nodes_for_ranks(ranks)
        if partition is None:
            partition = allocate(machine, nodes, utilization=0.0)
        shape = partition.torus_shape
        axis = slab_axis(shape)
        if shards > shape[axis]:
            raise ValueError(
                f"cannot split torus {shape} into {shards} slabs along "
                f"axis {axis} (extent {shape[axis]})"
            )
        map_obj = Mapping(mapping, shape, mode_cfg.tasks_per_node)
        if map_obj.size < ranks:
            raise ValueError(
                f"mapping capacity {map_obj.size} < {ranks} ranks "
                f"(shape {shape}, {mode_cfg.tasks_per_node} tasks/node)"
            )
        lookahead = machine.mpi.latency
        if lookahead <= 0.0:
            raise ValueError(
                f"{machine.name}: mpi.latency must be > 0 to serve as the "
                "conservative lookahead window"
            )
        rank_shards = tuple(
            shard_of_node(map_obj.node_of(r), shape, shards) for r in range(ranks)
        )
        return cls(
            machine=machine,
            ranks=ranks,
            mode=mode_cfg,
            mapping=map_obj,
            partition=partition,
            shards=shards,
            rank_shards=rank_shards,
            lookahead=lookahead,
        )

    def shard_of_rank(self, rank: int) -> int:
        return self.rank_shards[rank]

    def owned_ranks(self, shard: int) -> Tuple[int, ...]:
        """Global ranks owned by ``shard``, in ascending rank order."""
        return tuple(
            r for r in range(self.ranks) if self.rank_shards[r] == shard
        )

    def describe(self) -> str:
        shape = self.partition.torus_shape
        axis = slab_axis(shape)
        cuts = slab_extents(shape[axis], self.shards)
        sizes = ", ".join(str(stop - start) for start, stop in cuts)
        return (
            f"{self.shards} slab(s) along axis {'XYZ'[axis]} of torus "
            f"{shape} ({sizes} plane(s)); lookahead "
            f"{self.lookahead * 1e6:.2f} us"
        )
