"""Execution backends: inline (one process) and multiprocessing.

The coordinator only needs one operation — *advance this batch of
shards to their grants and give me the results* — so both backends
implement the same three-method surface:

* :class:`InlineBackend` holds the :class:`~repro.pdes.shard.ShardRuntime`
  objects directly and advances them sequentially.  Deterministic,
  zero-overhead, works for arbitrary (unpicklable) programs — it is
  what the ambient ``--shards`` path and the test suite use.
* :class:`ProcessBackend` pins one OS process per shard (a persistent
  worker over a :class:`multiprocessing.Pipe`, the same
  process-isolation idea as ``campaign.pool`` but with per-worker
  state, which ``ProcessPoolExecutor`` cannot pin).  A round's batch
  is written to every worker first and the results collected after, so
  shards genuinely advance in parallel — this is where the wall-clock
  win over the single engine comes from.

Workers are rebuilt from ``(scenario name, params)``; no function ever
crosses the pipe.  Each worker reseeds ``random`` with a
sha256-derived child seed (:func:`repro.simengine.rng.derive_seed`,
the campaign-worker scheme) so any host entropy a workload touches is
reproducible per shard.
"""

from __future__ import annotations

import multiprocessing as mp
import random
from typing import Any, Dict, List, Tuple

from ..simengine import DEFAULT_SEED, derive_seed
from .boundary import BoundaryEvent
from .plan import ShardPlan
from .shard import AdvanceResult, ShardReport, ShardRuntime

__all__ = ["InlineBackend", "ProcessBackend", "shard_seed"]


def shard_seed(shard_id: int) -> int:
    """The derived child seed for one shard's worker process."""
    return derive_seed(DEFAULT_SEED, "pdes-shard", shard_id)


class InlineBackend:
    """All shards in this process, advanced one after another."""

    def __init__(self, runtimes: List[ShardRuntime]) -> None:
        self.runtimes = runtimes

    def advance(
        self, batch: List[Tuple[int, float, List[BoundaryEvent]]]
    ) -> List[AdvanceResult]:
        return [
            self.runtimes[shard_id].advance(grant, incoming)
            for shard_id, grant, incoming in batch
        ]

    def reports(self) -> List[ShardReport]:
        return [rt.report() for rt in self.runtimes]

    def close(self) -> None:
        self.runtimes = []


def _shard_main(
    conn,
    scenario_name: str,
    params: Dict[str, Any],
    shards: int,
    shard_id: int,
    observe: bool,
) -> None:
    """Worker entry point: build the shard, serve advance requests."""
    random.seed(shard_seed(shard_id))  # simlint: ignore[determinism-hazard]
    from .scenarios import get_scenario

    scenario = get_scenario(scenario_name)
    ranks, args = scenario.resolve(params)
    plan = ShardPlan.build(
        scenario.machine, ranks, shards,
        mode=scenario.mode, mapping=scenario.mapping,
    )
    runtime = ShardRuntime(plan, shard_id, scenario.program, args, observe=observe)
    try:
        while True:
            msg = conn.recv()
            op = msg[0]
            if op == "close":
                break
            try:
                if op == "advance":
                    _op, grant, incoming = msg
                    payload = runtime.advance(grant, incoming)
                elif op == "report":
                    payload = runtime.report()
                else:  # pragma: no cover - protocol defense
                    raise ValueError(f"unknown shard op {op!r}")
            except Exception as exc:  # noqa: BLE001 - shipped to the parent
                conn.send(("err", exc))  # simlint: ignore[yield-from-comm]
            else:
                conn.send(("ok", payload))  # simlint: ignore[yield-from-comm]
    except (EOFError, KeyboardInterrupt):  # pragma: no cover - teardown
        pass
    finally:
        conn.close()


class ProcessBackend:
    """One persistent worker process per shard, batch-parallel advances."""

    def __init__(
        self,
        scenario_name: str,
        params: Dict[str, Any],
        shards: int,
        observe: bool = True,
    ) -> None:
        self._conns = []
        self._procs = []
        for shard_id in range(shards):
            parent, child = mp.Pipe()
            proc = mp.Process(
                target=_shard_main,
                args=(child, scenario_name, params, shards, shard_id, observe),
                daemon=True,
            )
            proc.start()
            child.close()
            self._conns.append(parent)
            self._procs.append(proc)

    def advance(
        self, batch: List[Tuple[int, float, List[BoundaryEvent]]]
    ) -> List[AdvanceResult]:
        for shard_id, grant, incoming in batch:
            self._conns[shard_id].send(("advance", grant, incoming))  # simlint: ignore[yield-from-comm]
        return [self._recv(shard_id) for shard_id, _g, _i in batch]

    def reports(self) -> List[ShardReport]:
        for conn in self._conns:
            conn.send(("report",))  # simlint: ignore[yield-from-comm]
        return [self._recv(i) for i in range(len(self._conns))]

    def _recv(self, shard_id: int):
        try:
            status, payload = self._conns[shard_id].recv()
        except EOFError:
            code = self._procs[shard_id].exitcode
            raise RuntimeError(
                f"pdes shard worker {shard_id} died (exit code {code}); "
                "rerun with --backend inline for the full traceback"
            ) from None
        if status == "err":
            raise payload
        return payload

    def close(self) -> None:
        for conn in self._conns:
            try:
                conn.send(("close",))  # simlint: ignore[yield-from-comm]
            except (BrokenPipeError, OSError):
                pass
            conn.close()
        for proc in self._procs:
            proc.join(timeout=5.0)
            if proc.is_alive():  # pragma: no cover - stuck worker
                proc.terminate()
        self._conns, self._procs = [], []
