"""Top-level entry points for sharded runs.

Two front doors:

* :func:`run` executes a named :mod:`~repro.pdes.scenarios` scenario at
  a given shard count and returns canonical artifacts.  ``shards=1`` is
  the *reference path*: a plain single-engine
  :class:`~repro.simmpi.comm.Cluster` run, instrumented with the same
  booking/send recorders and exported through the same canonicalizers —
  so comparing a sharded run against it proves byte identity against
  the real single-engine code path, not against the sharded machinery
  at N=1.
* :func:`maybe_run_sharded` is the ambient interception hook
  :meth:`Cluster.run <repro.simmpi.comm.Cluster.run>` calls when a
  ``pdes.sharding(N)`` context is active.  It shards *arbitrary* rank
  programs (inline backend — nothing crosses a process boundary, so
  nothing needs pickling) and degrades gracefully: any configuration
  the sharded engine cannot reproduce exactly — attached telemetry,
  fault injection, hardware collectives, link-serialization conflicts —
  records a fallback and returns ``None``, and the caller runs
  unsharded as if the context were not there.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..obs import Tracer
from ..simmpi.comm import Cluster, ClusterResult
from .backend import InlineBackend, ProcessBackend
from .errors import LinkConflictError, ShardUnsupportedError
from .merge import (
    canonical_events_jsonl,
    canonical_metrics_json,
    canonical_trace_json,
    find_link_conflicts,
    merged_elapsed,
    merged_returns,
)
from .plan import ShardPlan
from .scenarios import get_scenario, PdesScenario
from .shard import record_link_bookings, ShardReport, ShardRuntime
from .sync import drive, PdesStats

__all__ = ["PdesResult", "run", "maybe_run_sharded"]

BACKENDS = ("inline", "process")


@dataclass
class PdesResult:
    """Outcome of one :func:`run`: scalars, stats, canonical artifacts."""

    scenario: str
    shards: int
    backend: str
    ranks: int
    elapsed: float
    returns: List[Any]
    messages: int
    bytes_sent: int
    stats: PdesStats
    conflicts: List[str] = field(default_factory=list)
    #: canonical Chrome trace document (full text, trailing newline)
    trace_json: str = ""
    #: canonical metrics document (full text, trailing newline)
    metrics_json: str = ""
    #: canonical per-send event stream (full text)
    events_jsonl: str = ""
    reports: List[ShardReport] = field(default_factory=list)

    def summary_lines(self) -> List[str]:
        out = [
            f"== pdes run: {self.scenario} "
            f"(shards={self.shards}, backend={self.backend}) ==",
            f"  ranks                    {self.ranks}",
            f"  elapsed                  {self.elapsed * 1e3:.4f} ms",
            f"  messages                 {self.messages}",
            f"  bytes_sent               {self.bytes_sent}",
        ]
        out.extend(self.stats.summary_lines())
        return out


def _single_engine_reports(
    scenario: PdesScenario, ranks: int, args: Tuple[Any, ...], observe: bool
) -> List[ShardReport]:
    """Run the genuine single-engine path, frozen as a one-shard report."""
    cluster = Cluster(
        scenario.machine, ranks, mode=scenario.mode, mapping=scenario.mapping
    )
    tracer = Tracer().attach(cluster) if observe else None
    bookings: List[Tuple[str, float, float, float, float, float]] = []
    sends: List[Tuple[int, int, int, int, float, float]] = []
    if observe:
        record_link_bookings(cluster, bookings)
        cluster.transport.add_send_hook(
            lambda src, dst, nbytes, tag, start, end: sends.append(
                (src, dst, nbytes, tag, start, end)
            )
        )
    result = cluster.run(scenario.program, *args)
    registry = (
        tracer.metrics.to_dict()
        if tracer is not None
        else {"counters": {}, "gauges": {}, "histograms": {}}
    )
    return [
        ShardReport(
            shard_id=0,
            owned_ranks=tuple(range(ranks)),
            events=list(tracer.events) if tracer is not None else [],
            process_names=dict(tracer._process_names) if tracer is not None else {},
            thread_names=dict(tracer._thread_names) if tracer is not None else {},
            counters=registry["counters"],
            gauges=registry["gauges"],
            histograms=registry["histograms"],
            bookings=bookings,
            sends=sends,
            returns=dict(enumerate(result.returns)),
            done_at=result.elapsed,
            messages=result.messages,
            bytes_sent=result.bytes_sent,
        )
    ]


def run(
    scenario_name: str,
    shards: int = 1,
    backend: str = "inline",
    params: Optional[Dict[str, Any]] = None,
    strict_conflicts: bool = True,
    observe: bool = True,
) -> PdesResult:
    """Run a scenario sharded (or single-engine for ``shards=1``).

    ``observe=False`` runs bare: no tracer, no booking/send logs, no
    canonical artifacts, and — since the conflict validator needs the
    booking logs — no exactness certification.  Use it for benchmarks
    and large sweeps after identity has been proven for the scenario;
    per-message telemetry (and its cross-process pickling) otherwise
    dominates wall-clock at scale.
    """
    if backend not in BACKENDS:
        raise ValueError(f"unknown pdes backend {backend!r}; known: {BACKENDS}")
    scenario = get_scenario(scenario_name)
    params = dict(params or {})
    ranks, args = scenario.resolve(params)
    stats = PdesStats(shards=shards, lookahead=scenario.machine.mpi.latency)

    if shards == 1:
        reports = _single_engine_reports(scenario, ranks, args, observe)
        backend = "single"
    else:
        plan = ShardPlan.build(
            scenario.machine, ranks, shards,
            mode=scenario.mode, mapping=scenario.mapping,
        )
        if backend == "process":
            be: Any = ProcessBackend(scenario.name, params, shards, observe=observe)
        else:
            be = InlineBackend(
                [
                    ShardRuntime(plan, shard_id, scenario.program, args, observe=observe)
                    for shard_id in range(shards)
                ]
            )
        try:
            drive(be, plan, stats)
            reports = be.reports()
        finally:
            be.close()

    conflicts = find_link_conflicts(reports) if observe else []
    stats.link_conflicts = len(conflicts)
    if conflicts and strict_conflicts:
        raise LinkConflictError(conflicts)
    return PdesResult(
        scenario=scenario.name,
        shards=shards,
        backend=backend,
        ranks=ranks,
        elapsed=merged_elapsed(reports),
        returns=merged_returns(reports, ranks),
        messages=sum(r.messages for r in reports),
        bytes_sent=sum(r.bytes_sent for r in reports),
        stats=stats,
        conflicts=conflicts,
        trace_json=canonical_trace_json(reports) if observe else "",
        metrics_json=canonical_metrics_json(reports) if observe else "",
        events_jsonl=canonical_events_jsonl(reports) if observe else "",
        reports=list(reports),
    )


def maybe_run_sharded(
    cluster: Cluster,
    program: Any,
    args: Tuple[Any, ...],
    shards: int,
    run_kwargs: Dict[str, Any],
) -> Optional[ClusterResult]:
    """Try to serve one :meth:`Cluster.run` call sharded.

    Returns a :class:`ClusterResult` (with the synchronizer's
    :class:`PdesStats` attached as ``result.pdes_stats``) when the run
    completed sharded and conflict-free, or ``None`` — after
    :func:`repro.pdes.ambient.note_fallback` — when the configuration
    is outside what sharding can reproduce exactly.  Callers fall back
    to the normal single-engine path on ``None``.
    """
    from ..obs import active_tracer
    from ..perf.profiler import active_profiler
    from .ambient import note_fallback

    def fallback() -> None:
        note_fallback()
        return None

    if shards < 2:
        return fallback()
    # Features the sharded engine cannot reproduce byte-exactly (or at
    # all): any attached/ambient telemetry, sanitizing, fault injection,
    # recovery, budgets, profiling, timelines, adaptive routing,
    # reliability models — and a cluster whose engine already ran.
    if any(run_kwargs.get(k) for k in ("sanitize", "trace", "profile")):
        return fallback()
    if any(run_kwargs.get(k) is not None for k in ("faults", "recovery", "budget")):
        return fallback()
    if (
        active_tracer() is not None
        or active_profiler() is not None
        or cluster.tracer is not None
        or cluster.fault_injector is not None
        or cluster.recovery is not None
        or cluster.timeline is not None
        or cluster.sanitizer is not None
        or cluster.transport.adaptive_routing
        or cluster.transport.reliability is not None
        or getattr(cluster, "shard_id", None) is not None
        or cluster.env.now != 0.0
        or cluster.env.pending != 0
    ):
        return fallback()
    try:
        plan = ShardPlan.build(
            cluster.machine,
            cluster.ranks,
            shards,
            mode=cluster.mode.mode,
            mapping=cluster.mapping.order,
            partition=cluster.partition,
        )
    except ValueError:
        return fallback()
    stats = PdesStats()
    try:
        backend = InlineBackend(
            [
                ShardRuntime(plan, shard_id, program, args)
                for shard_id in range(plan.shards)
            ]
        )
        try:
            drive(backend, plan, stats)
            reports = backend.reports()
        finally:
            backend.close()
    except ShardUnsupportedError:
        return fallback()
    conflicts = find_link_conflicts(reports)
    if conflicts:
        # Cross-shard link contention: replica timing may have diverged
        # from the single engine, so the exact path must decide.
        return fallback()
    result = ClusterResult(
        elapsed=merged_elapsed(reports),
        returns=merged_returns(reports, cluster.ranks),
        messages=sum(r.messages for r in reports),
        bytes_sent=sum(r.bytes_sent for r in reports),
    )
    result.pdes_stats = stats
    return result
