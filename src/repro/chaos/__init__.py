"""repro.chaos: deterministic host-level fault injection.

The complement of :mod:`repro.faults` (which breaks the *simulated*
machine): chaos schedules break the *host-side campaign harness* —
workers are killed mid-job, jobs hang past their deadlines, cache and
journal writes tear or raise — so the hardening in
:mod:`repro.campaign` (watchdog deadlines, seeded backoff, pool
rebuild, quarantine, crash-consistent recovery) can be proven against
reproducible failure sequences instead of luck.

Quick start::

    from repro.campaign import CampaignRunner, CampaignSpec
    from repro.chaos import ChaosSpec

    chaos = ChaosSpec.from_string("seed=42,kills=1,hangs=1,torn=1")
    runner = CampaignRunner(
        CampaignSpec.from_ids(["table1", "top500", "lists"]),
        "out/chaos-camp", jobs=2, retries=3, deadline_s=5.0, chaos=chaos,
    )
    result = runner.run()          # completes despite the injections
    print(runner.chaos_report())   # the deterministic fired set

CLI: ``repro campaign run ... --chaos 'seed=42,kills=1'`` and
``repro chaos plan`` (dry-run the compiled schedule).  See
``docs/campaigns.md`` ("Failure handling & chaos testing").
"""

from .inject import (
    ChaosInjector,
    torn_bytes,
    torn_cache_put,
    torn_journal_append,
    torn_text_write,
)
from .spec import (
    CHAOS_KINDS,
    SERVER_KINDS,
    WRITE_KINDS,
    WRITE_STREAMS,
    ChaosError,
    ChaosEvent,
    ChaosPlan,
    ChaosSpec,
)

__all__ = [
    "CHAOS_KINDS",
    "ChaosError",
    "ChaosEvent",
    "ChaosInjector",
    "ChaosPlan",
    "ChaosSpec",
    "SERVER_KINDS",
    "WRITE_KINDS",
    "WRITE_STREAMS",
    "torn_bytes",
    "torn_cache_put",
    "torn_journal_append",
    "torn_text_write",
]
