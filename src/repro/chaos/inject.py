"""Parent-side chaos bookkeeping and the torn-write primitives.

The :class:`ChaosInjector` wraps a compiled :class:`~.spec.ChaosPlan`
with **one-shot firing semantics**: every event fires at most once per
campaign pass, whether the parent observed it directly (write faults,
attributed worker kills) or a worker reported it back inside a
:class:`~repro.campaign.worker.JobOutcome`.  The fired set — not the
firing *order*, which legitimately races under a process pool — is the
reproducibility artifact: two runs under the same seed must report the
same set.

The torn-write helpers simulate what a hard kill or power loss does to
a file that was being written *without* the temp-file + ``os.replace``
discipline (or on a filesystem that tears across sector boundaries
despite it): the destination ends up holding a prefix of the intended
bytes.  The campaign layer's recovery contract is that every such tear
reads back as a clean miss — torn cache entries recompute, a torn
journal tail is skipped, a torn manifest rebuilds from the journal.
"""

from __future__ import annotations

import json
import pathlib
from typing import Any, Dict, List, Optional, Union

from .spec import ChaosEvent, ChaosPlan

__all__ = [
    "ChaosInjector",
    "torn_bytes",
    "torn_cache_put",
    "torn_journal_append",
    "torn_text_write",
]


class ChaosInjector:
    """One-shot firing registry over a compiled plan."""

    def __init__(self, plan: ChaosPlan) -> None:
        self.plan = plan
        #: key -> event, in firing order (dedup'd)
        self._fired: Dict[str, ChaosEvent] = {}

    # -- firing -------------------------------------------------------------
    def fire(self, event: ChaosEvent) -> bool:
        """Mark ``event`` fired; True only the first time."""
        if event.key() in self._fired:
            return False
        self._fired[event.key()] = event
        return True

    def note_fired(self, keys: List[str]) -> List[ChaosEvent]:
        """Absorb worker-reported firings; returns the newly-fired events."""
        fresh: List[ChaosEvent] = []
        by_key = {event.key(): event for event in self.plan.events}
        for key in keys:
            event = by_key.get(key)
            if event is not None and self.fire(event):
                fresh.append(event)
        return fresh

    # -- queries (parent-side, one-shot) ------------------------------------
    def kill_event(self, job: str, attempt: int) -> Optional[ChaosEvent]:
        """The unfired kill rule for (job, attempt), if any (not marked)."""
        event = self.plan.kill_event(job, attempt)
        if event is not None and event.key() in self._fired:
            return None
        return event

    def hang_event(self, job: str, attempt: int) -> Optional[ChaosEvent]:
        """The unfired hang rule for (job, attempt), if any (not marked).

        The parent uses this to attribute a watchdog kill of a stuck
        worker back to the hard-hang injection that caused it.
        """
        event = self.plan.hang_event(job, attempt)
        if event is not None and event.key() in self._fired:
            return None
        return event

    def server_kill_event(self, job: str, attempt: int) -> Optional[ChaosEvent]:
        """The unfired server-SIGKILL rule for (job, attempt), if any.

        One-shot firing must survive the kill itself: the campaign
        server persists the fired key durably *before* SIGKILLing its
        own process, and re-seeds the injector via :meth:`note_fired`
        on restart so the rule never fires twice.
        """
        event = self.plan.server_kill_event(job, attempt)
        if event is not None and event.key() in self._fired:
            return None
        return event

    def heartbeat_loss_event(self, job: str, attempt: int) -> Optional[ChaosEvent]:
        """The unfired heartbeat-loss rule for (job, attempt), if any."""
        event = self.plan.heartbeat_loss_event(job, attempt)
        if event is not None and event.key() in self._fired:
            return None
        return event

    def write_fault(self, stream: str, job: str) -> Optional[ChaosEvent]:
        """Fire-and-return the torn/ioerr rule for one write, if any."""
        event = self.plan.write_event(stream, job)
        if event is not None and self.fire(event):
            return event
        return None

    # -- reporting ----------------------------------------------------------
    @property
    def fired(self) -> List[ChaosEvent]:
        return list(self._fired.values())

    def fired_keys(self) -> List[str]:
        """Sorted fired keys — the cross-run reproducibility artifact."""
        return sorted(self._fired)

    def report(self) -> str:
        """Deterministic summary (sorted by key, never by firing order)."""
        if not self._fired:
            return "chaos: no injections fired"
        lines = [f"chaos: {len(self._fired)} injection(s) fired"]
        for key in self.fired_keys():
            lines.append(f"  {self._fired[key].describe()}")
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# torn writes
# ---------------------------------------------------------------------------
def torn_bytes(payload: bytes, fraction: float = 0.5) -> bytes:
    """The prefix a torn write leaves behind (at least 1, never all)."""
    if not payload:
        return payload
    cut = max(1, min(len(payload) - 1, int(len(payload) * fraction)))
    return payload[:cut]


def torn_text_write(
    path: Union[str, pathlib.Path], text: str, fraction: float = 0.5
) -> pathlib.Path:
    """Write a torn prefix of ``text`` directly to ``path`` (no tmp/replace
    — this *is* the crash the atomic discipline normally prevents)."""
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_bytes(torn_bytes(text.encode("utf-8"), fraction))
    return path


def torn_cache_put(
    cache: Any, key: str, text: str, meta: Optional[Dict[str, Any]] = None
) -> pathlib.Path:
    """Tear a :class:`~repro.campaign.cache.ResultCache` entry write.

    Serializes the exact document :meth:`ResultCache.put` would store,
    then leaves only a prefix of it at the final entry path — the cache
    must read this back as a miss, never as a result.
    """
    from ..campaign.cache import text_digest

    doc = dict(meta or {})
    doc["digest"] = text_digest(text)
    doc["text"] = text
    return torn_text_write(cache.entry_path(key), json.dumps(doc, sort_keys=True))


def torn_journal_append(path: Union[str, pathlib.Path], record: Any) -> None:
    """Append a torn (newline-less prefix) journal record — the on-disk
    shape of a process killed mid-``append_journal``."""
    line = json.dumps(record.to_dict(), sort_keys=True)
    with open(path, "ab") as fh:
        fh.write(torn_bytes((line + "\n").encode("utf-8")))
        fh.flush()
