"""Deterministic, seeded host-level chaos schedules.

Where :mod:`repro.faults` injects failures into the *simulated* machine
(links, nodes, MTBF draws inside the DES), this module injects failures
into the *host-side harness* that runs campaigns: a worker process is
killed mid-job, a job hangs past its deadline, a cache or journal write
is torn in half, an append raises a transient I/O error.  These are the
events a long-running campaign service must absorb as routine — the
chaos schedule makes them reproducible enough to test against.

Determinism contract: every injection is addressed by content, never by
wall-clock or arrival order —

* ``kill`` / ``hang`` events target a ``(job id, attempt)`` pair;
* ``torn`` / ``ioerr`` events target a ``(stream, job id)`` write;
* seeded random mode picks its targets by ranking job ids under
  ``sha256(seed | kind | job_id)``, so the same seed over the same job
  list yields the same injection set on every machine, every run,
  regardless of pool size or completion order.

A :class:`ChaosSpec` is what users write (JSON file, compact
``key=value`` string, or explicit events); :meth:`ChaosSpec.compile`
resolves it against a concrete job list into a frozen, picklable
:class:`ChaosPlan` that both the campaign runner (parent process) and
``execute_job`` (worker process) consult.
"""

from __future__ import annotations

import hashlib
import json
import pathlib
from dataclasses import dataclass, replace
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

__all__ = [
    "CHAOS_KINDS",
    "SERVER_KINDS",
    "WRITE_KINDS",
    "WRITE_STREAMS",
    "ChaosError",
    "ChaosEvent",
    "ChaosPlan",
    "ChaosSpec",
]

#: Every injection kind the schedule understands.
CHAOS_KINDS = ("kill", "hang", "torn", "ioerr", "server_kill", "heartbeat_loss")
#: Kinds that target a durable write instead of a running job.
WRITE_KINDS = ("torn", "ioerr")
#: Kinds that target the campaign *service* rather than a batch pass:
#: ``server_kill`` SIGKILLs the server process the instant it leases
#: ``(job, attempt)`` (the lease is granted and durable, the dispatch
#: never happens — restart recovery must requeue it); ``heartbeat_loss``
#: makes the server stop heartbeating that lease so it expires under a
#: still-running worker (stale-result discard + requeue must both work).
SERVER_KINDS = ("server_kill", "heartbeat_loss")
#: Write targets: the result cache, the append-only journal, and the
#: end-of-pass manifest rewrite.
WRITE_STREAMS = ("cache", "journal", "manifest")


class ChaosError(ValueError):
    """A chaos spec that cannot be parsed or compiled."""


@dataclass(frozen=True)
class ChaosEvent:
    """One injection rule.

    ``kill``/``hang`` fire when ``job`` reaches execution ``attempt``;
    ``torn``/``ioerr`` fire on the first write of ``stream`` for
    ``job`` (``job=""`` addresses the per-pass ``manifest`` stream).
    """

    kind: str
    job: str = ""
    attempt: int = 1
    stream: str = ""
    #: hang duration in host seconds (hang events only)
    seconds: float = 0.0
    #: a *hard* hang never cooperates with the deadline — it exists to
    #: exercise the parent-side watchdog, which must kill the worker
    hard: bool = False

    def key(self) -> str:
        """Stable one-shot identity of this rule."""
        if self.kind in WRITE_KINDS:
            return f"{self.kind}:{self.stream}:{self.job}"
        return f"{self.kind}:{self.job}@{self.attempt}"

    def describe(self) -> str:
        if self.kind in WRITE_KINDS:
            target = f"stream={self.stream}" + (f" job={self.job}" if self.job else "")
            return f"{self.kind:5s} {target}"
        extra = ""
        if self.kind == "hang":
            extra = f" seconds={self.seconds:g}" + (" hard" if self.hard else "")
        return f"{self.kind:5s} job={self.job} attempt={self.attempt}{extra}"

    def validate(self) -> None:
        if self.kind not in CHAOS_KINDS:
            raise ChaosError(
                f"unknown chaos kind {self.kind!r} (one of {list(CHAOS_KINDS)})"
            )
        if self.kind in WRITE_KINDS:
            if self.stream not in WRITE_STREAMS:
                raise ChaosError(
                    f"chaos {self.kind!r} event needs stream= one of "
                    f"{list(WRITE_STREAMS)}, got {self.stream!r}"
                )
            if self.stream != "manifest" and not self.job:
                raise ChaosError(
                    f"chaos {self.kind!r} event on {self.stream!r} needs a job id"
                )
        else:
            if not self.job:
                raise ChaosError(f"chaos {self.kind!r} event needs a job id")
            if self.attempt < 1:
                raise ChaosError("chaos event attempt must be >= 1")
        if self.kind == "hang" and self.seconds < 0:
            raise ChaosError("hang seconds must be >= 0")


def _rank(seed: int, kind: str, job_id: str) -> str:
    """Schedule-independent ranking key for seeded target selection."""
    return hashlib.sha256(f"{seed}|{kind}|{job_id}".encode()).hexdigest()


def _picked(seed: int, kind: str, job_ids: Sequence[str], count: int) -> List[str]:
    """The first ``count`` job ids under the seeded ranking."""
    return sorted(job_ids, key=lambda j: _rank(seed, kind, j))[: max(0, count)]


@dataclass(frozen=True)
class ChaosSpec:
    """A chaos schedule as written by the user.

    Explicit ``events`` and seeded counts compose: the counts are
    resolved against the job list at :meth:`compile` time and appended
    to the explicit events (duplicates collapse — events are one-shot
    by key).
    """

    seed: int = 0
    events: Tuple[ChaosEvent, ...] = ()
    #: seeded-mode counts: how many jobs get each treatment
    kills: int = 0
    hangs: int = 0
    torn: int = 0
    ioerr: int = 0
    #: seeded-mode counts for the campaign *service* (see SERVER_KINDS)
    server_kills: int = 0
    heartbeat_losses: int = 0
    #: duration of seeded hang events
    hang_seconds: float = 0.25
    #: seeded hangs are hard (watchdog-only) when set
    hard: bool = False

    # -- parsing ------------------------------------------------------------
    @classmethod
    def parse(cls, text: str) -> "ChaosSpec":
        """A spec from a CLI argument: a JSON file path or a compact
        ``seed=42,kills=1,hangs=1,torn=1,ioerr=1`` string."""
        if text.endswith(".json") or pathlib.Path(text).is_file():
            return cls.from_file(text)
        return cls.from_string(text)

    @classmethod
    def from_string(cls, text: str) -> "ChaosSpec":
        fields: Dict[str, Any] = {}
        for part in filter(None, (p.strip() for p in text.split(","))):
            key, sep, value = part.partition("=")
            if not sep:
                raise ChaosError(
                    f"chaos spec: expected key=value, got {part!r} "
                    "(e.g. 'seed=42,kills=1,hangs=1,torn=1')"
                )
            key = key.strip().replace("-", "_")
            if key in (
                "seed", "kills", "hangs", "torn", "ioerr",
                "server_kills", "heartbeat_losses",
            ):
                try:
                    fields[key] = int(value)
                except ValueError:
                    raise ChaosError(
                        f"chaos spec: {key}= needs an integer, got {value!r}"
                    ) from None
            elif key == "hang_seconds":
                try:
                    fields[key] = float(value)
                except ValueError:
                    raise ChaosError(
                        f"chaos spec: hang_seconds= needs a number, got {value!r}"
                    ) from None
            elif key == "hard":
                fields[key] = value.strip() not in ("0", "false", "no", "")
            else:
                raise ChaosError(f"chaos spec: unknown key {key!r}")
        return cls(**fields)

    @classmethod
    def from_file(cls, path: Union[str, pathlib.Path]) -> "ChaosSpec":
        path = pathlib.Path(path)
        try:
            doc = json.loads(path.read_text(encoding="utf-8"))
        except OSError as exc:
            raise ChaosError(f"chaos spec {path}: {exc}") from None
        except json.JSONDecodeError as exc:
            raise ChaosError(f"chaos spec {path}: not valid JSON ({exc})") from None
        return cls.from_dict(doc)

    @classmethod
    def from_dict(cls, doc: Any) -> "ChaosSpec":
        if not isinstance(doc, dict):
            raise ChaosError("chaos spec must be a JSON object")
        known = {
            "seed", "events", "kills", "hangs", "torn", "ioerr",
            "server_kills", "heartbeat_losses", "hang_seconds", "hard",
        }
        unknown = sorted(set(doc) - known)
        if unknown:
            raise ChaosError(f"chaos spec: unknown key(s) {unknown}")
        events: List[ChaosEvent] = []
        for i, raw in enumerate(doc.get("events") or []):
            if not isinstance(raw, dict) or "kind" not in raw:
                raise ChaosError(
                    f"chaos spec events[{i}]: each event is an object with a 'kind'"
                )
            names = {"kind", "job", "attempt", "stream", "seconds", "hard"}
            bad = sorted(set(raw) - names)
            if bad:
                raise ChaosError(f"chaos spec events[{i}]: unknown key(s) {bad}")
            event = ChaosEvent(
                kind=str(raw["kind"]),
                job=str(raw.get("job", "")),
                attempt=int(raw.get("attempt", 1)),
                stream=str(raw.get("stream", "")),
                seconds=float(raw.get("seconds", 0.0)),
                hard=bool(raw.get("hard", False)),
            )
            try:
                event.validate()
            except ChaosError as exc:
                raise ChaosError(f"chaos spec events[{i}]: {exc}") from None
            events.append(event)
        return cls(
            seed=int(doc.get("seed", 0)),
            events=tuple(events),
            kills=int(doc.get("kills", 0)),
            hangs=int(doc.get("hangs", 0)),
            torn=int(doc.get("torn", 0)),
            ioerr=int(doc.get("ioerr", 0)),
            server_kills=int(doc.get("server_kills", 0)),
            heartbeat_losses=int(doc.get("heartbeat_losses", 0)),
            hang_seconds=float(doc.get("hang_seconds", 0.25)),
            hard=bool(doc.get("hard", False)),
        )

    # -- compilation --------------------------------------------------------
    def compile(self, job_ids: Sequence[str]) -> "ChaosPlan":
        """Resolve the schedule against a concrete job list.

        Explicit events must name jobs from the list (fail fast — a
        typo'd chaos target silently testing nothing is worse than an
        error); seeded counts pick their targets deterministically via
        the sha256 ranking.  The result is a frozen, picklable plan.
        """
        known = set(job_ids)
        events: Dict[str, ChaosEvent] = {}
        for event in self.events:
            event.validate()
            if event.job and event.job not in known:
                raise ChaosError(
                    f"chaos event targets unknown job {event.job!r} "
                    f"(campaign jobs: {sorted(known)})"
                )
            events.setdefault(event.key(), event)
        for job in _picked(self.seed, "kill", job_ids, self.kills):
            event = ChaosEvent(kind="kill", job=job)
            events.setdefault(event.key(), event)
        for job in _picked(self.seed, "hang", job_ids, self.hangs):
            event = ChaosEvent(
                kind="hang", job=job, seconds=self.hang_seconds, hard=self.hard
            )
            events.setdefault(event.key(), event)
        for job in _picked(self.seed, "torn", job_ids, self.torn):
            event = ChaosEvent(kind="torn", job=job, stream="cache")
            events.setdefault(event.key(), event)
        for job in _picked(self.seed, "ioerr", job_ids, self.ioerr):
            event = ChaosEvent(kind="ioerr", job=job, stream="journal")
            events.setdefault(event.key(), event)
        for job in _picked(self.seed, "server_kill", job_ids, self.server_kills):
            event = ChaosEvent(kind="server_kill", job=job)
            events.setdefault(event.key(), event)
        for job in _picked(
            self.seed, "heartbeat_loss", job_ids, self.heartbeat_losses
        ):
            event = ChaosEvent(kind="heartbeat_loss", job=job)
            events.setdefault(event.key(), event)
        ordered = tuple(
            sorted(events.values(), key=lambda e: (e.kind, e.stream, e.job, e.attempt))
        )
        return ChaosPlan(seed=self.seed, events=ordered)


@dataclass(frozen=True)
class ChaosPlan:
    """A compiled chaos schedule: concrete one-shot events only.

    Plain data — it crosses the process boundary to workers, which
    consult :meth:`kill_event` / :meth:`hang_event` before running a
    job.  Lookups are pure functions of the target address, so the
    plan's behaviour can never depend on pool size or arrival order.
    """

    seed: int = 0
    events: Tuple[ChaosEvent, ...] = ()

    def __len__(self) -> int:
        return len(self.events)

    def _find(self, **attrs: Any) -> Optional[ChaosEvent]:
        for event in self.events:
            if all(getattr(event, k) == v for k, v in attrs.items()):
                return event
        return None

    def kill_event(self, job: str, attempt: int) -> Optional[ChaosEvent]:
        return self._find(kind="kill", job=job, attempt=attempt)

    def hang_event(self, job: str, attempt: int) -> Optional[ChaosEvent]:
        return self._find(kind="hang", job=job, attempt=attempt)

    def server_kill_event(self, job: str, attempt: int) -> Optional[ChaosEvent]:
        """The server-SIGKILL rule tripped by leasing (job, attempt)."""
        return self._find(kind="server_kill", job=job, attempt=attempt)

    def heartbeat_loss_event(self, job: str, attempt: int) -> Optional[ChaosEvent]:
        """The heartbeat-suppression rule for one leased (job, attempt)."""
        return self._find(kind="heartbeat_loss", job=job, attempt=attempt)

    def write_event(self, stream: str, job: str) -> Optional[ChaosEvent]:
        """The torn/ioerr event for one (stream, job) write, if any."""
        for kind in WRITE_KINDS:
            event = self._find(kind=kind, stream=stream, job=job)
            if event is not None:
                return event
        return None

    def describe(self) -> str:
        """Deterministic human-readable plan (CI ``cmp``s two of these
        to prove seed reproducibility)."""
        lines = [f"chaos plan (seed={self.seed}): {len(self.events)} injection(s)"]
        lines.extend(f"  {event.describe()}" for event in self.events)
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, Any]:
        """Machine-readable plan: the ``repro chaos plan --json`` shape.

        Deterministic (events already sort by key at compile time), so
        drills and CI can ``diff`` two plans structurally instead of
        grepping the prose rendering.  ``keys`` is the full fired-set
        vocabulary — a drill that fired everything reports exactly it.
        """
        return {
            "seed": self.seed,
            "count": len(self.events),
            "keys": [event.key() for event in self.events],
            "events": [
                {
                    "kind": event.kind,
                    "key": event.key(),
                    **({"job": event.job} if event.job else {}),
                    **(
                        {"stream": event.stream}
                        if event.kind in WRITE_KINDS
                        else {"attempt": event.attempt}
                    ),
                    **(
                        {"seconds": event.seconds, "hard": event.hard}
                        if event.kind == "hang"
                        else {}
                    ),
                }
                for event in self.events
            ],
        }

    def scaled(self, factor: float) -> "ChaosPlan":
        """A copy with every hang duration scaled (test-speed knob)."""
        return ChaosPlan(
            seed=self.seed,
            events=tuple(
                replace(e, seconds=e.seconds * factor) if e.kind == "hang" else e
                for e in self.events
            ),
        )
