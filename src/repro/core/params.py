"""The canonical ``key=value`` parameter parser.

Both the CLI's repeated ``--param key=value`` flags and the campaign
spec loader (entries may give ``"params": ["nbytes=65536"]`` in the
CLI string form) funnel through :func:`parse_params`, so there is a
single grammar and a single error-message path.  Values must be
numeric — scenario/experiment parameters are sizes, counts, and
fractions — and integers stay ``int``.
"""

from __future__ import annotations

from typing import Dict, List, Optional

__all__ = ["parse_params"]


def parse_params(pairs: Optional[List[str]]) -> Dict[str, float]:
    """Parse ``key=value`` strings into numeric kwargs.

    A malformed pair raises :class:`ValueError` with a one-line
    message — the CLI prints it and exits 2, same as an unknown
    scenario id; the campaign spec loader reports it against the spec
    entry.
    """
    params: Dict[str, float] = {}
    for pair in pairs or []:
        key, sep, raw = pair.partition("=")
        key = key.strip()
        if not sep or not key or not key.isidentifier():
            raise ValueError(
                f"malformed --param {pair!r}: expected key=value with an "
                "identifier key (e.g. --param nbytes=65536)"
            )
        raw = raw.strip()
        try:
            value: float = int(raw)
        except ValueError:
            try:
                value = float(raw)
            except ValueError:
                raise ValueError(
                    f"non-numeric value in --param {pair!r}: {raw!r} is "
                    "neither an integer nor a float"
                ) from None
        params[key] = value
    return params
