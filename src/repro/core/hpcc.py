"""HPCC Table 2: the full benchmark-suite comparison.

"Table 2 shows the results of HPCC tests that are largely independent
of process count, including the single processor and embarrassingly
parallel tests ... taken using 4096 processes" (paper Section II.A),
plus the low-level communication rows.  The XT's problem sizes are
automatically ~4x larger because its nodes carry 4x the memory —
exactly the asymmetry the paper describes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..kernels.dgemm import DgemmModel
from ..kernels.fft import FftModel
from ..kernels.hpl import HplModel
from ..kernels.pingpong import pingpong_analytic
from ..kernels.ptrans import PtransModel
from ..kernels.randomaccess import RandomAccessModel
from ..kernels.ring import random_ring_analytic
from ..machines.modes import resolve_mode
from ..machines.specs import MachineSpec
from ..memmodel.stream import StreamModel

__all__ = ["HpccColumn", "build_table2", "TABLE2_ROWS"]


@dataclass(frozen=True)
class HpccColumn:
    """One machine's HPCC figures (Table 2 column)."""

    machine: str
    processes: int
    # single-process / embarrassingly-parallel tests
    dgemm_single_gflops: float
    dgemm_ep_gflops: float
    stream_single_gbs: float
    stream_ep_gbs: float
    fft_single_gflops: float
    fft_ep_gflops: float
    ra_single_gups: float
    ra_ep_gups: float
    # parallel tests at the table's process count
    hpl_tflops: float
    mpifft_gflops: float
    ptrans_gbs: float
    mpi_ra_gups: float
    # communication tests
    pingpong_latency_us: float
    pingpong_bandwidth_gbs: float
    ring_latency_us: float
    ring_bandwidth_gbs: float


#: Human-readable row labels in table order.
TABLE2_ROWS: List[str] = [
    "DGEMM single (GFlop/s)",
    "DGEMM EP (GFlop/s)",
    "STREAM triad single (GB/s)",
    "STREAM triad EP (GB/s)",
    "FFT single (GFlop/s)",
    "FFT EP (GFlop/s)",
    "RandomAccess single (GUP/s)",
    "RandomAccess EP (GUP/s)",
    "G-HPL (TFlop/s)",
    "MPI FFT (GFlop/s)",
    "PTRANS (GB/s)",
    "MPI RandomAccess (GUP/s)",
    "Ping-pong latency (us)",
    "Ping-pong bandwidth (GB/s)",
    "Random-ring latency (us)",
    "Random-ring bandwidth (GB/s)",
]


def build_column(machine: MachineSpec, processes: int = 4096, mode: str = "VN") -> HpccColumn:
    """Evaluate every HPCC component on one machine."""
    modecfg = resolve_mode(machine, mode)
    dgemm = DgemmModel(machine, mode)
    stream = StreamModel(machine, mode)
    fft = FftModel(machine, mode)
    ra = RandomAccessModel(machine, mode)
    hpl = HplModel(machine, mode).run(processes)
    mpifft = fft.mpi_run(processes)
    ptrans = PtransModel(machine, mode).run(processes)
    mpi_ra = ra.run(processes, variant="stock")
    ping_small = pingpong_analytic(machine, 8, mode)
    ping_big = pingpong_analytic(machine, 1 << 21, mode)
    ring = random_ring_analytic(machine, processes, mode)

    single_rate = dgemm.rate_per_process_gflops()
    return HpccColumn(
        machine=machine.name,
        processes=processes,
        dgemm_single_gflops=single_rate,
        dgemm_ep_gflops=single_rate,  # compute-bound: no decline
        stream_single_gbs=stream.bandwidth_per_process(1) / 1e9,
        stream_ep_gbs=stream.bandwidth_per_process(machine.node.cores) / 1e9,
        fft_single_gflops=fft.single_process_gflops(),
        fft_ep_gflops=fft.single_process_gflops(),
        ra_single_gups=ra.run(1).gups_per_process,
        ra_ep_gups=ra.run(1).gups_per_process,  # private tables
        hpl_tflops=hpl.gflops / 1e3,
        mpifft_gflops=mpifft.gflops_total,
        ptrans_gbs=ptrans.gb_per_s,
        mpi_ra_gups=mpi_ra.gups_total,
        pingpong_latency_us=ping_small.latency_us,
        pingpong_bandwidth_gbs=ping_big.bandwidth_gbs,
        ring_latency_us=ring.latency_us,
        ring_bandwidth_gbs=ring.bandwidth_gbs_per_process,
    )


def build_table2(
    machines: List[MachineSpec], processes: int = 4096, mode: str = "VN"
) -> Dict[str, HpccColumn]:
    """Table 2 for any set of machines (paper: BG/P vs XT4/QC)."""
    return {m.name: build_column(m, processes, mode) for m in machines}
