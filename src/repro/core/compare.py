"""Side-by-side machine comparison across the full evaluation suite.

``compare_machines(a, b)`` runs every kernel and application model on
two machines at a common scale and reports the ratios — the programmatic
version of what the paper does between BG/P and the XT4 across its
whole evaluation section.  Works for any pair from the catalog,
including user-defined machines (see ``examples/custom_machine.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..machines.power import hpl_mflops_per_watt
from ..machines.specs import MachineSpec
from ..simmpi.cost import CostModel
from .report import format_table

__all__ = ["ComparisonRow", "compare_machines", "render_comparison"]


@dataclass(frozen=True)
class ComparisonRow:
    """One metric of the comparison."""

    metric: str
    unit: str
    a_value: float
    b_value: float
    #: True when larger is better for this metric
    higher_is_better: bool = True

    @property
    def ratio(self) -> float:
        """b / a (how many times machine B's value is machine A's)."""
        return self.b_value / self.a_value if self.a_value else float("inf")

    @property
    def winner(self) -> str:
        if self.a_value == self.b_value:
            return "tie"
        a_wins = (self.a_value > self.b_value) == self.higher_is_better
        return "A" if a_wins else "B"


def compare_machines(
    a: MachineSpec,
    b: MachineSpec,
    processes: int = 1024,
    pop_processes: int = 8000,
) -> List[ComparisonRow]:
    """Evaluate both machines across kernels, comms, apps and power."""
    if processes < 2:
        raise ValueError("need at least 2 processes to compare")
    from ..kernels.dgemm import DgemmModel
    from ..kernels.hpl import HplModel
    from ..memmodel.stream import StreamModel
    from ..apps.s3d.model import S3dModel, S3D_SUSTAINED_GFLOPS
    from ..apps.pop.model import PopModel, POP_SUSTAINED_GFLOPS

    rows: List[ComparisonRow] = []

    def add(metric, unit, av, bv, higher=True):
        rows.append(ComparisonRow(metric, unit, av, bv, higher))

    # -- node character ------------------------------------------------
    add("peak per core", "GF/s", a.node.core.peak_flops / 1e9, b.node.core.peak_flops / 1e9)
    add(
        "DGEMM per process",
        "GF/s",
        DgemmModel(a).rate_per_process_gflops(),
        DgemmModel(b).rate_per_process_gflops(),
    )
    add(
        "STREAM per process (EP)",
        "GB/s",
        StreamModel(a).bandwidth_per_process(a.node.cores) / 1e9,
        StreamModel(b).bandwidth_per_process(b.node.cores) / 1e9,
    )

    # -- network character ------------------------------------------------
    ca = CostModel(a, "VN", processes)
    cb = CostModel(b, "VN", processes)
    add("MPI latency", "us", ca.p2p_time(8) * 1e6, cb.p2p_time(8) * 1e6, higher=False)
    add("p2p bandwidth", "GB/s", ca.p2p_bandwidth / 1e9, cb.p2p_bandwidth / 1e9)
    add(
        f"barrier @ {processes}",
        "us",
        ca.barrier_time() * 1e6,
        cb.barrier_time() * 1e6,
        higher=False,
    )
    add(
        f"bcast 32KB @ {processes}",
        "us",
        ca.bcast_time(32768) * 1e6,
        cb.bcast_time(32768) * 1e6,
        higher=False,
    )
    add(
        f"allreduce 32KB f64 @ {processes}",
        "us",
        ca.allreduce_time(32768) * 1e6,
        cb.allreduce_time(32768) * 1e6,
        higher=False,
    )

    # -- benchmarks and applications ----------------------------------------
    add(
        f"HPL @ {processes}",
        "TF/s",
        HplModel(a).run(processes).gflops / 1e3,
        HplModel(b).run(processes).gflops / 1e3,
    )
    if a.name in S3D_SUSTAINED_GFLOPS and b.name in S3D_SUSTAINED_GFLOPS:
        add(
            "S3D cost per point-step",
            "core-h",
            S3dModel(a).run(min(processes, 512)).core_hours_per_point_step,
            S3dModel(b).run(min(processes, 512)).core_hours_per_point_step,
            higher=False,
        )
    if a.name in POP_SUSTAINED_GFLOPS and b.name in POP_SUSTAINED_GFLOPS:
        try:
            add(
                f"POP SYD @ {pop_processes}",
                "SYD",
                PopModel(a).run(pop_processes).syd,
                PopModel(b).run(pop_processes).syd,
            )
        except (MemoryError, ValueError):
            pass

    # -- power -------------------------------------------------------------
    add(
        "power per core (HPL)",
        "W",
        a.power.hpl_watts_per_core,
        b.power.hpl_watts_per_core,
        higher=False,
    )
    add("Green500", "MF/W", hpl_mflops_per_watt(a), hpl_mflops_per_watt(b))
    return rows


def render_comparison(
    a: MachineSpec, b: MachineSpec, rows: Optional[List[ComparisonRow]] = None, **kw
) -> str:
    """Human-readable comparison table."""
    rows = compare_machines(a, b, **kw) if rows is None else rows
    table = [
        [
            r.metric,
            r.unit,
            r.a_value,
            r.b_value,
            round(r.ratio, 3),
            {"A": a.name, "B": b.name, "tie": "tie"}[r.winner],
        ]
        for r in rows
    ]
    return format_table(
        ["metric", "unit", a.name, b.name, f"{b.name}/{a.name}", "winner"],
        table,
        title=f"Machine comparison: {a.name} vs {b.name}",
    )
