"""The experiment registry: every table/figure of the paper, by id.

``run_experiment("fig4")`` (or ``"table3"`` …) regenerates that
artifact as renderable text; ``EXPERIMENTS`` lists everything.  The
``benchmarks/`` tree wraps these for pytest-benchmark; the examples
call them directly.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List

from ..machines import BGL, BGP, XT3, XT4_DC, XT4_QC
from .report import Figure, format_table

__all__ = [
    "EXPERIMENTS",
    "run_experiment",
    "experiment_ids",
    "validate_experiment_params",
]


# ---------------------------------------------------------------------------
# Table 1
# ---------------------------------------------------------------------------
def table1_config() -> str:
    """The system-configuration summary straight from the catalog."""
    from ..machines import MACHINE_NAMES, all_machines, KB, MB, GB

    machines = all_machines()
    rows = []

    def cache_str(lvl) -> str:
        if lvl is None:
            return "n/a"
        size = lvl.size_bytes
        label = f"{size // MB} MB" if size >= MB else f"{size // KB}K"
        return f"{label} {'shared' if lvl.shared else 'private'}"

    for name in MACHINE_NAMES:
        m = machines[name]
        rows.append(
            [
                m.name,
                m.node.cores,
                int(m.node.core.clock_hz / 1e6),
                m.node.coherence.value,
                cache_str(m.node.l1),
                cache_str(m.node.l2),
                cache_str(m.node.l3),
                round(m.node.memory.capacity_bytes / GB, 1),
                round(m.node.memory.peak_bandwidth / 1e9, 1),
                round(m.node.peak_flops / 1e9, 1),
                round(m.torus.injection_bandwidth / 1e9, 1),
                (
                    int(m.tree.link_bandwidth * m.tree.links_per_node / 1e6)
                    if m.tree
                    else "n/a"
                ),
            ]
        )
    return format_table(
        [
            "Machine",
            "Cores/node",
            "Clock MHz",
            "Coherence",
            "L1",
            "L2",
            "L3",
            "Mem GB",
            "Mem GB/s",
            "Peak GF/node",
            "Torus inj GB/s",
            "Tree MB/s",
        ],
        rows,
        title="Table 1: System Configuration Summary",
    )


# ---------------------------------------------------------------------------
# Table 2
# ---------------------------------------------------------------------------
def table2_hpcc() -> str:
    from .hpcc import build_table2, TABLE2_ROWS

    cols = build_table2([BGP, XT4_QC], processes=4096)
    b, x = cols["BG/P"], cols["XT4/QC"]
    values = list(
        zip(
            TABLE2_ROWS,
            [
                b.dgemm_single_gflops, b.dgemm_ep_gflops,
                b.stream_single_gbs, b.stream_ep_gbs,
                b.fft_single_gflops, b.fft_ep_gflops,
                b.ra_single_gups, b.ra_ep_gups,
                b.hpl_tflops, b.mpifft_gflops, b.ptrans_gbs, b.mpi_ra_gups,
                b.pingpong_latency_us, b.pingpong_bandwidth_gbs,
                b.ring_latency_us, b.ring_bandwidth_gbs,
            ],
            [
                x.dgemm_single_gflops, x.dgemm_ep_gflops,
                x.stream_single_gbs, x.stream_ep_gbs,
                x.fft_single_gflops, x.fft_ep_gflops,
                x.ra_single_gups, x.ra_ep_gups,
                x.hpl_tflops, x.mpifft_gflops, x.ptrans_gbs, x.mpi_ra_gups,
                x.pingpong_latency_us, x.pingpong_bandwidth_gbs,
                x.ring_latency_us, x.ring_bandwidth_gbs,
            ],
        )
    )
    return format_table(
        ["Test", "BG/P", "XT4/QC"],
        [[name, bv, xv] for name, bv, xv in values],
        title="Table 2: HPCC comparison, 4096 processes, VN mode",
    )


# ---------------------------------------------------------------------------
# Figure 1: HPCC scaling
# ---------------------------------------------------------------------------
def fig1_hpcc_scaling() -> str:
    from ..kernels.hpl import HplModel
    from ..kernels.fft import FftModel
    from ..kernels.ptrans import PtransModel
    from ..kernels.randomaccess import RandomAccessModel
    from ..simengine import make_rng

    procs = [256, 512, 1024, 2048, 4096, 8192]
    out = []

    fig = Figure("Figure 1(a): HPL scaling", "processes", "TFlop/s")
    for m in (BGP, XT4_QC):
        fig.add(m.name, [(p, HplModel(m).run(p).gflops / 1e3) for p in procs])
    out.append(fig.render())

    fig = Figure("Figure 1(b): FFT scaling", "processes", "GFlop/s total")
    for m in (BGP, XT4_QC):
        fig.add(m.name, [(p, FftModel(m).mpi_run(p).gflops_total) for p in procs])
    out.append(fig.render())

    fig = Figure("Figure 1(c): PTRANS scaling", "processes", "GB/s")
    rng = make_rng(42)
    for m in (BGP, XT4_QC):
        model = PtransModel(m)
        fig.add(m.name, [(p, model.run(p, rng=rng).gb_per_s) for p in procs])
    out.append(fig.render())

    fig = Figure("Figure 1(d): RandomAccess scaling", "processes", "GUP/s")
    for m in (BGP, XT4_QC):
        model = RandomAccessModel(m)
        fig.add(f"{m.name} stock", [(p, model.run(p).gups_total) for p in procs])
        fig.add(
            f"{m.name} SANDIA_OPT2",
            [(p, model.run(p, "sandia").gups_total) for p in procs],
        )
    out.append(fig.render())
    return "\n\n".join(out)


# ---------------------------------------------------------------------------
# Figure 2: HALO
# ---------------------------------------------------------------------------
def fig2_halo() -> str:
    from ..halo.bench import HaloBenchmark, best_mapping
    from ..halo.protocols import PROTOCOLS
    from ..topology.mapping import PAPER_FIG2_MAPPINGS

    words_sweep = [2, 8, 32, 128, 512, 2048, 8192, 32768]
    out = []

    # (a) protocols, 8192 cores VN, 128x64 grid, TXYZ
    fig = Figure(
        "Figure 2(a): protocols, 8192 cores VN (128x64, TXYZ)", "halo words", "seconds"
    )
    hb = HaloBenchmark(BGP, grid=(128, 64), mode="VN", mapping="TXYZ")
    for proto in PROTOCOLS:
        fig.add(proto, [(w, hb.time_analytic(w, proto)) for w in words_sweep])
    out.append(fig.render())

    # (b) protocols, 2048 cores SMP, 64x32 grid, XYZT
    fig = Figure(
        "Figure 2(b): protocols, 2048 cores SMP (64x32, XYZT)", "halo words", "seconds"
    )
    hb = HaloBenchmark(BGP, grid=(64, 32), mode="SMP", mapping="XYZT")
    for proto in PROTOCOLS:
        fig.add(proto, [(w, hb.time_analytic(w, proto)) for w in words_sweep])
    out.append(fig.render())

    # (c, d) mappings at 4096 (64x64) and 8192 (128x64) cores VN
    for panel, grid in (("c", (64, 64)), ("d", (128, 64))):
        fig = Figure(
            f"Figure 2({panel}): mappings, {grid[0]*grid[1]} cores VN {grid}",
            "halo words",
            "seconds",
        )
        for mapping in PAPER_FIG2_MAPPINGS:
            hb = HaloBenchmark(BGP, grid=grid, mode="VN", mapping=mapping)
            fig.add(mapping, [(w, hb.time_analytic(w)) for w in words_sweep])
        out.append(fig.render())

    # (e, f) best mapping per grid size, VN and SMP.  Benchmarks are
    # built once per (grid, mapping): the routing analysis dominates and
    # is word-independent.
    for panel, mode, grids in (
        ("e", "VN", [(32, 32), (64, 32), (64, 64), (128, 64)]),
        ("f", "SMP", [(16, 16), (32, 16), (32, 32), (64, 32)]),
    ):
        fig = Figure(
            f"Figure 2({panel}): best mapping per grid, {mode} mode",
            "halo words",
            "seconds",
        )
        for grid in grids:
            benches = [
                HaloBenchmark(BGP, grid, mode=mode, mapping=m)
                for m in PAPER_FIG2_MAPPINGS
            ]
            pts = [
                (w, min(hb.time_analytic(w) for hb in benches))
                for w in words_sweep
            ]
            fig.add(f"{grid[0]}x{grid[1]}", pts)
        out.append(fig.render())
    return "\n\n".join(out)


# ---------------------------------------------------------------------------
# Figure 3: IMB collectives
# ---------------------------------------------------------------------------
def fig3_imb(nbytes: int = 32768, processes: int = 8192) -> str:
    """``nbytes`` sets the fixed payload of panels (b)/(d) and
    ``processes`` the fixed process count of panels (a)/(c) — the
    paper's 32 KB / 8192-way operating point by default."""
    from ..imb.harness import ImbBenchmark

    nbytes, processes = int(nbytes), int(processes)
    sizes = [4, 64, 1024, 8192, 32768, 262144, 1048576]
    procs = [64, 256, 1024, 4096, 8192]
    kb_label = f"{nbytes / 1024:g}KB"
    out = []

    fig = Figure(
        f"Figure 3(a): Allreduce latency vs size, {processes} procs", "bytes", "us"
    )
    for m in (BGP, XT4_QC):
        b = ImbBenchmark(m)
        for dtype in ("float64", "float32"):
            pts = [(p.nbytes, p.latency_us) for p in b.size_sweep("allreduce", processes, sizes, dtype)]
            fig.add(f"{m.name} {dtype}", pts)
    out.append(fig.render())

    fig = Figure(f"Figure 3(b): Allreduce latency vs procs, {kb_label}", "processes", "us")
    for m in (BGP, XT4_QC):
        b = ImbBenchmark(m)
        for dtype in ("float64", "float32"):
            sweep = b.process_sweep("allreduce", nbytes, procs, dtype)
            pts = [(p.processes, p.latency_us) for p in sweep]
            fig.add(f"{m.name} {dtype}", pts)
    out.append(fig.render())

    fig = Figure(
        f"Figure 3(c): Bcast latency vs size, {processes} procs", "bytes", "us"
    )
    for m in (BGP, XT4_QC):
        pts = [(p.nbytes, p.latency_us) for p in ImbBenchmark(m).size_sweep("bcast", processes, sizes)]
        fig.add(m.name, pts)
    out.append(fig.render())

    fig = Figure(f"Figure 3(d): Bcast latency vs procs, {kb_label}", "processes", "us")
    for m in (BGP, XT4_QC):
        sweep = ImbBenchmark(m).process_sweep("bcast", nbytes, procs)
        pts = [(p.processes, p.latency_us) for p in sweep]
        fig.add(m.name, pts)
    out.append(fig.render())
    return "\n\n".join(out)


# ---------------------------------------------------------------------------
# TOP500 run
# ---------------------------------------------------------------------------
def top500_hpl() -> str:
    from ..kernels.hpl import HplModel
    from ..power.measure import measure_hpl

    res = HplModel(BGP).top500_run()
    power = measure_hpl(BGP, 8192)
    rows = [
        ["Problem size N", 614399],
        ["Block size NB", 96],
        ["Process grid", "64x128"],
        ["GFlop/s (paper: 21400)", round(res.gflops)],
        ["MFlops/W (paper: 310.93)", round(power.mflops_per_watt, 1)],
    ]
    return format_table(["Quantity", "Value"], rows, title="TOP500 HPL run (Section II.C)")


# ---------------------------------------------------------------------------
# Figure 4: POP
# ---------------------------------------------------------------------------
def fig4_pop() -> str:
    from ..apps.pop.model import PopModel
    from ..apps.pop.solvers import CG_SIGNATURE, CHRONGEAR_SIGNATURE

    procs = [2000, 4000, 8000, 16000, 22500, 32000, 40000]
    out = []

    fig = Figure("Figure 4(a): POP total, BG/P VN/SMP x CG/ChronGear", "processes", "SYD")
    pop = PopModel(BGP)
    for mode in ("VN", "SMP"):
        for solver in (CG_SIGNATURE, CHRONGEAR_SIGNATURE):
            pts = [(r.processes, r.syd) for r in pop.sweep(procs, mode=mode, solver=solver)]
            fig.add(f"{mode} {solver.name}", pts)
    out.append(fig.render())

    fig = Figure("Figure 4(b): POP phases on BG/P (s/simulated day)", "processes", "seconds")
    for mode in ("VN", "SMP"):
        runs = pop.sweep(procs, mode=mode)
        fig.add(f"{mode} baroclinic", [(r.processes, r.baroclinic_s_per_day) for r in runs])
        fig.add(f"{mode} barotropic", [(r.processes, r.barotropic_s_per_day) for r in runs])
        fig.add(f"{mode} barrier(imbalance)", [(r.processes, r.imbalance_s_per_day) for r in runs])
    out.append(fig.render())

    fig = Figure("Figure 4(c): POP BG/P vs XT4 (Catamount)", "processes", "SYD")
    for m in (BGP, XT4_DC):
        pts = [(r.processes, r.syd) for r in PopModel(m).sweep(procs)]
        fig.add(m.name, pts)
    out.append(fig.render())

    fig = Figure("Figure 4(d): POP phases, BG/P vs XT4", "processes", "seconds/simday")
    for m in (BGP, XT4_DC):
        runs = PopModel(m).sweep(procs)
        baroclinic = [(r.processes, r.baroclinic_s_per_day + r.imbalance_s_per_day) for r in runs]
        fig.add(f"{m.name} baroclinic", baroclinic)
        fig.add(f"{m.name} barotropic", [(r.processes, r.barotropic_s_per_day) for r in runs])
    out.append(fig.render())
    return "\n\n".join(out)


# ---------------------------------------------------------------------------
# Figure 5: CAM
# ---------------------------------------------------------------------------
def fig5_cam() -> str:
    from ..apps.cam.model import (
        CamModel,
        SPECTRAL_T42,
        SPECTRAL_T85,
        FV_1_9x2_5,
        FV_0_47x0_63,
    )

    cores = [16, 32, 64, 128, 256, 512, 1024, 2048, 4096]
    out = []

    fig = Figure("Figure 5(a): CAM spectral on BG/P, MPI vs hybrid", "cores", "SYD")
    for bmk in (SPECTRAL_T42, SPECTRAL_T85):
        cm = CamModel(BGP, bmk)
        fig.add(f"{bmk.name} MPI", [(r.cores, r.syd) for r in cm.sweep(cores)])
        fig.add(f"{bmk.name} hybrid", [(r.cores, r.syd) for r in cm.sweep(cores, hybrid=True)])
    out.append(fig.render())

    fig = Figure("Figure 5(b): CAM FV on BG/P, MPI vs hybrid", "cores", "SYD")
    for bmk in (FV_1_9x2_5, FV_0_47x0_63):
        cm = CamModel(BGP, bmk)
        fig.add(f"{bmk.name} MPI", [(r.cores, r.syd) for r in cm.sweep(cores)])
        fig.add(f"{bmk.name} hybrid", [(r.cores, r.syd) for r in cm.sweep(cores, hybrid=True)])
    out.append(fig.render())

    fig = Figure("Figure 5(c): CAM spectral, BG/P vs XT3 vs XT4", "cores", "SYD")
    for bmk in (SPECTRAL_T42, SPECTRAL_T85):
        for m in (BGP, XT3, XT4_QC):
            cm = CamModel(m, bmk)
            best = [
                (c, max(cm.run(c, hybrid=False).syd, cm.run(c, hybrid=True).syd))
                for c in cores
            ]
            fig.add(f"{bmk.name} {m.name}", best)
    out.append(fig.render())

    fig = Figure("Figure 5(d): CAM FV, BG/P vs XT3 vs XT4", "cores", "SYD")
    for m in (BGP, XT3, XT4_QC):
        cm = CamModel(m, FV_1_9x2_5)
        best = [
            (c, max(cm.run(c, hybrid=False).syd, cm.run(c, hybrid=True).syd))
            for c in cores
        ]
        fig.add(f"{FV_1_9x2_5.name} {m.name}", best)
    out.append(fig.render())
    return "\n\n".join(out)


# ---------------------------------------------------------------------------
# Figure 6: S3D
# ---------------------------------------------------------------------------
def fig6_s3d(edge: int = 50) -> str:
    """``edge`` is the per-rank subgrid edge (paper: 50^3 points/rank);
    sweeping it turns Fig. 6 into a weak-scaling sensitivity study."""
    from ..apps.s3d.model import S3dModel

    edge = int(edge)
    procs = [1, 8, 64, 512, 4096, 8192, 30000]
    fig = Figure(
        f"Figure 6: S3D weak scaling ({edge}^3 points/rank)",
        "processes",
        "core-hours per grid point per step",
    )
    for m in (BGP, BGL, XT3, XT4_DC, XT4_QC):
        pts = [
            (r.processes, r.core_hours_per_point_step)
            for r in S3dModel(m).weak_scaling(procs, edge=edge)
        ]
        fig.add(m.name, pts)
    return fig.render()


# ---------------------------------------------------------------------------
# Figure 7: GYRO
# ---------------------------------------------------------------------------
def fig7_gyro() -> str:
    from ..apps.gyro.model import GyroModel
    from ..apps.gyro.grid5d import B1_STD, B3_GTC, B3_GTC_MODIFIED

    out = []
    fig = Figure("Figure 7(a): GYRO B1-std strong scaling", "processes", "speedup")
    procs = [16, 32, 64, 128, 256, 512, 1024, 2048]
    for m in (BGP, XT4_QC):
        g = GyroModel(m, B1_STD)
        base = g.run(16)
        fig.add(m.name, [(r.processes, r.speedup_vs(base)) for r in g.strong_scaling(procs)])
    out.append(fig.render())

    fig = Figure("Figure 7(b): GYRO B3-gtc strong scaling", "processes", "speedup")
    procs_b3 = [64, 128, 256, 512, 1024, 2048]
    for m in (BGP, XT4_QC):
        g = GyroModel(m, B3_GTC)
        base = g.run(64)
        runs = g.strong_scaling(procs_b3)
        label = f"{m.name} ({runs[0].mode} mode)" if runs else m.name
        fig.add(label, [(r.processes, r.speedup_vs(base)) for r in runs])
    out.append(fig.render())

    fig = Figure(
        "Figure 7(c): GYRO modified-B3-gtc weak scaling", "processes", "s/step"
    )
    weak = [64, 128, 256, 512, 1024, 2048]
    for m in (BGP, BGL, XT3, XT4_QC):
        g = GyroModel(m, B3_GTC_MODIFIED)
        fig.add(m.name, [(r.processes, r.seconds_per_step) for r in g.weak_scaling(weak)])
    out.append(fig.render())
    return "\n\n".join(out)


# ---------------------------------------------------------------------------
# Figure 8: MD
# ---------------------------------------------------------------------------
def fig8_md() -> str:
    from ..apps.md.models import LammpsModel, PmemdModel

    procs = [64, 128, 256, 512, 1024, 2048, 4096]
    out = []
    for Model, panel in ((LammpsModel, "a"), (PmemdModel, "b")):
        fig = Figure(
            f"Figure 8({panel}): {Model.code} RuBisCO (290,220 atoms)",
            "processes",
            "ns/day",
        )
        for m in (BGP, XT3, XT4_DC):
            model = Model(m)
            fig.add(m.name, [(r.processes, r.ns_per_day) for r in model.scaling(procs)])
        out.append(fig.render())
    return "\n\n".join(out)


# ---------------------------------------------------------------------------
# Table 3: power
# ---------------------------------------------------------------------------
def table3_power() -> str:
    from ..power.table3 import build_table3

    cols = build_table3([BGP, XT4_QC])
    rows = [
        ["Cores", *[c.cores for c in cols]],
        ["Measured power / HPL (kW)", *[round(c.hpl_power_kw, 1) for c in cols]],
        ["  per core (W)", *[c.hpl_watts_per_core for c in cols]],
        ["Measured power / normal (kW)", *[round(c.normal_power_kw, 1) for c in cols]],
        ["  per core (W)", *[c.normal_watts_per_core for c in cols]],
        ["Peak (TFlop/s)", *[round(c.peak_tflops, 1) for c in cols]],
        ["HPL Rmax (TFlop/s)", *[round(c.hpl_rmax_tflops, 1) for c in cols]],
        ["HPL MFlops/W", *[round(c.mflops_per_watt, 1) for c in cols]],
        ["POP SYD @ 8192 cores", *[round(c.pop_syd_at_8192, 1) for c in cols]],
        ["  aggregate power (kW)", *[round(c.pop_power_kw_at_8192, 1) for c in cols]],
        ["Cores for 12 SYD", *[c.cores_for_12_syd for c in cols]],
        ["  aggregate power (kW)", *[round(c.power_kw_for_12_syd, 1) for c in cols]],
    ]
    return format_table(
        ["Quantity", *[c.machine for c in cols]],
        rows,
        title="Table 3: Power Comparison",
    )


# ---------------------------------------------------------------------------
# Extensions beyond the paper's tables/figures
# ---------------------------------------------------------------------------
def lists_placement() -> str:
    """TOP500/Green500 standings of the evaluated systems (Sections I,
    II.C), plus the density story of the introduction."""
    from ..power.lists import place_configuration
    from ..machines.density import footprint_for_peak

    rows = []
    for machine, cores in ((BGP, 8192), (BGP, ANL_CORES := 40960 * 4), (XT4_QC, 30976)):
        try:
            pl = place_configuration(machine, cores)
        except ValueError:
            continue
        rows.append(
            [
                f"{machine.name} ({cores} cores)",
                round(pl.rmax_gflops / 1e3, 1),
                pl.top500_rank,
                round(pl.mflops_per_watt, 1),
                pl.green500_rank,
            ]
        )
    placement = format_table(
        ["system", "Rmax (TF)", "TOP500 #", "MFlops/W", "Green500 #"],
        rows,
        title="June-2008 list placement (Section II.C: Eugene #74 / Green500 #5)",
    )

    rows = []
    for m in (BGP, XT3, XT4_QC):
        fp = footprint_for_peak(m, 100.0)
        rows.append(
            [m.name, m.cores_per_rack, fp.racks, round(fp.floor_area_m2, 1),
             round(fp.power_kw, 1)]
        )
    density = format_table(
        ["machine", "cores/rack", "racks for 100 TF", "floor m^2", "power kW"],
        rows,
        title="Density (Section I.A: 4096 vs 384 vs 192 cores per rack)",
    )
    return placement + "\n\n" + density


EXPERIMENTS: Dict[str, Callable[[], str]] = {
    "table1": table1_config,
    "table2": table2_hpcc,
    "fig1": fig1_hpcc_scaling,
    "fig2": fig2_halo,
    "fig3": fig3_imb,
    "top500": top500_hpl,
    "fig4": fig4_pop,
    "fig5": fig5_cam,
    "fig6": fig6_s3d,
    "fig7": fig7_gyro,
    "fig8": fig8_md,
    "table3": table3_power,
    "lists": lists_placement,
}


def experiment_ids() -> List[str]:
    """All experiment ids, in paper order."""
    return list(EXPERIMENTS)


def validate_experiment_params(experiment_id: str, params: Dict[str, Any]) -> None:
    """Check ``experiment_id`` exists and accepts every name in ``params``.

    Raises :class:`KeyError` with the same messages ``run_experiment``
    would produce — the campaign spec loader uses this to fail fast at
    expansion time instead of deep inside a worker process.
    """
    try:
        fn = EXPERIMENTS[experiment_id]
    except KeyError:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; known: {experiment_ids()}"
        ) from None
    if params:
        import inspect

        accepted = set(inspect.signature(fn).parameters)
        unknown = sorted(set(params) - accepted)
        if unknown:
            supported = sorted(accepted) if accepted else "none"
            raise KeyError(
                f"experiment {experiment_id!r} does not take parameter(s) "
                f"{unknown}; supported: {supported}"
            )


def run_experiment(experiment_id: str, **params: Any) -> str:
    """Regenerate one paper artifact as text.

    ``params`` must match keyword arguments of the experiment function;
    unsupported names raise :class:`KeyError` listing what is accepted
    (most artifacts are parameter-free reproductions of the paper).
    """
    validate_experiment_params(experiment_id, params)
    return EXPERIMENTS[experiment_id](**params)
