"""Generic parameter-sweep helper used by the benches and examples."""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import partial
from itertools import product
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

__all__ = ["Sweep", "SweepPoint"]

#: An executor is any ``map``-shaped callable: it applies a picklable
#: one-argument function to every item and yields the results **in
#: order** — ``builtins.map``, ``ProcessPoolExecutor.map``, or the
#: campaign pool's :func:`repro.campaign.pool_map`.
Executor = Callable[[Callable[[Dict[str, Any]], Any], Iterable[Dict[str, Any]]], Iterable[Any]]


@dataclass(frozen=True)
class SweepPoint:
    """One evaluated point of a sweep.

    Failed points carry the error *message* in ``error`` and the
    exception *class name* in ``error_type`` (``"ValueError"``,
    ``"BudgetExceeded"`` …), so retry/failure classification can
    distinguish a config mistake from a budget stop without parsing
    messages.
    """

    params: Dict[str, Any]
    value: Any
    error: str = ""
    error_type: str = ""

    @property
    def ok(self) -> bool:
        return not self.error_type and not self.error

    @property
    def error_full(self) -> str:
        """``"ErrorType: message"`` for display, ``""`` when ok."""
        if self.ok:
            return ""
        return f"{self.error_type}: {self.error}" if self.error_type else self.error


def _eval_point(fn: Callable[..., Any], params: Dict[str, Any]) -> Tuple[Any, str, str]:
    """Evaluate one point, isolating failures as ``(value, msg, type)``.

    Module-level (not a closure) so a process-pool executor can pickle
    ``partial(_eval_point, fn)`` for any module-level ``fn``.
    """
    try:
        return fn(**params), "", ""
    except Exception as exc:  # noqa: BLE001 - sweep isolation
        return None, str(exc), type(exc).__name__


@dataclass
class Sweep:
    """Cartesian-product sweep over named parameter axes.

    Points whose evaluation raises are recorded with the error message
    instead of aborting the sweep — matching how the paper's curves
    simply omit failed configurations (POP >40k, CAM FV pure-MPI).
    """

    axes: Dict[str, List[Any]] = field(default_factory=dict)

    def add_axis(self, name: str, values: Iterable[Any]) -> "Sweep":
        vals = list(values)
        if not vals:
            raise ValueError(f"axis {name!r} has no values")
        self.axes[name] = vals
        return self

    def points(self) -> List[Dict[str, Any]]:
        """The deterministic parameter list: axis insertion order, value
        order as given, last axis fastest."""
        if not self.axes:
            raise ValueError("no axes defined")
        names = list(self.axes)
        return [
            dict(zip(names, combo))
            for combo in product(*(self.axes[n] for n in names))
        ]

    def run(
        self,
        fn: Callable[..., Any],
        executor: Optional[Executor] = None,
    ) -> List[SweepPoint]:
        """Evaluate ``fn(**params)`` over the product of all axes.

        ``executor`` is an optional ``map``-shaped hook: pass
        ``ProcessPoolExecutor.map`` (or the campaign pool's
        :func:`repro.campaign.pool_map`) to farm the points out to
        worker processes; results come back in the same deterministic
        point order either way.  ``fn`` must then be picklable
        (module-level).
        """
        combos = self.points()
        evaluate = partial(_eval_point, fn)
        if executor is None:
            outcomes: Iterable[Tuple[Any, str, str]] = (evaluate(p) for p in combos)
        else:
            outcomes = executor(evaluate, combos)
        return [
            SweepPoint(params=params, value=value, error=error, error_type=error_type)
            for params, (value, error, error_type) in zip(combos, outcomes)
        ]

    @staticmethod
    def successes(points: List[SweepPoint]) -> List[SweepPoint]:
        return [p for p in points if p.ok]
