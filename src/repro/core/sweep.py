"""Generic parameter-sweep helper used by the benches and examples."""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import product
from typing import Any, Callable, Dict, Iterable, List

__all__ = ["Sweep", "SweepPoint"]


@dataclass(frozen=True)
class SweepPoint:
    """One evaluated point of a sweep."""

    params: Dict[str, Any]
    value: Any
    error: str = ""

    @property
    def ok(self) -> bool:
        return not self.error


@dataclass
class Sweep:
    """Cartesian-product sweep over named parameter axes.

    Points whose evaluation raises are recorded with the error message
    instead of aborting the sweep — matching how the paper's curves
    simply omit failed configurations (POP >40k, CAM FV pure-MPI).
    """

    axes: Dict[str, List[Any]] = field(default_factory=dict)

    def add_axis(self, name: str, values: Iterable[Any]) -> "Sweep":
        vals = list(values)
        if not vals:
            raise ValueError(f"axis {name!r} has no values")
        self.axes[name] = vals
        return self

    def run(self, fn: Callable[..., Any]) -> List[SweepPoint]:
        """Evaluate ``fn(**params)`` over the product of all axes."""
        if not self.axes:
            raise ValueError("no axes defined")
        names = list(self.axes)
        out: List[SweepPoint] = []
        for combo in product(*(self.axes[n] for n in names)):
            params = dict(zip(names, combo))
            try:
                out.append(SweepPoint(params=params, value=fn(**params)))
            except Exception as exc:  # noqa: BLE001 - sweep isolation
                out.append(SweepPoint(params=params, value=None, error=str(exc)))
        return out

    @staticmethod
    def successes(points: List[SweepPoint]) -> List[SweepPoint]:
        return [p for p in points if p.ok]
