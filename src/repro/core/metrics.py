"""Common evaluation metrics."""

from __future__ import annotations

from typing import Sequence

__all__ = [
    "speedup",
    "parallel_efficiency",
    "weak_scaling_efficiency",
    "crossover_point",
    "relative_factor",
]


def speedup(base_time: float, time: float) -> float:
    """Classic strong-scaling speedup."""
    if base_time <= 0 or time <= 0:
        raise ValueError("times must be positive")
    return base_time / time


def parallel_efficiency(
    base_time: float, base_procs: int, time: float, procs: int
) -> float:
    """Strong-scaling efficiency relative to a baseline point."""
    if base_procs < 1 or procs < 1:
        raise ValueError("process counts must be >= 1")
    return speedup(base_time, time) / (procs / base_procs)


def weak_scaling_efficiency(base_time: float, time: float) -> float:
    """Weak scaling: ideal keeps the time constant."""
    if base_time <= 0 or time <= 0:
        raise ValueError("times must be positive")
    return base_time / time


def relative_factor(a: float, b: float) -> float:
    """How many times larger ``a`` is than ``b``."""
    if b == 0:
        raise ValueError("division by zero baseline")
    return a / b


def crossover_point(
    xs: Sequence[float], ya: Sequence[float], yb: Sequence[float]
) -> float | None:
    """The x where curve ``ya`` first overtakes ``yb`` (linear interp).

    Returns ``None`` if no crossover occurs in the sampled range.  Used
    to locate e.g. the process count where BG/P barotropic performance
    overtakes the XT4's (paper: "indications are that Barotropic
    performance is superior on the BG/P for 22500 processes and
    higher").
    """
    if not (len(xs) == len(ya) == len(yb)) or len(xs) < 2:
        raise ValueError("need three equal-length sequences of >= 2 points")
    diff = [a - b for a, b in zip(ya, yb)]
    for i in range(1, len(xs)):
        if diff[i - 1] < 0 <= diff[i]:
            span = diff[i] - diff[i - 1]
            t = -diff[i - 1] / span if span else 0.0
            return xs[i - 1] + t * (xs[i] - xs[i - 1])
    return None
