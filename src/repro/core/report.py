"""ASCII table/series rendering for the benchmark harness.

Every bench regenerates its paper table or figure as text: tables as
aligned columns, figures as labelled series (x, y pairs) — the same
rows/series the paper plots, minus the ink.
"""

from __future__ import annotations

from typing import Any, Iterable, List, Sequence, Tuple

__all__ = ["format_table", "format_series", "Figure", "Series"]


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        a = abs(value)
        if a >= 1e5 or a < 1e-3:
            return f"{value:.3g}"
        if a >= 100:
            return f"{value:.1f}"
        return f"{value:.3g}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Any]],
    title: str = "",
) -> str:
    """Render an aligned ASCII table."""
    str_rows = [[_fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row width {len(row)} != header width {len(headers)}"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(sep))
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


class Series:
    """One labelled (x, y) curve of a figure."""

    def __init__(self, label: str, points: List[Tuple[float, float]]) -> None:
        self.label = label
        self.points = list(points)

    @property
    def xs(self) -> List[float]:
        return [p[0] for p in self.points]

    @property
    def ys(self) -> List[float]:
        return [p[1] for p in self.points]


class Figure:
    """A figure as a set of series, renderable as text."""

    def __init__(self, title: str, xlabel: str, ylabel: str) -> None:
        self.title = title
        self.xlabel = xlabel
        self.ylabel = ylabel
        self.series: List[Series] = []

    def add(self, label: str, points: List[Tuple[float, float]]) -> "Figure":
        self.series.append(Series(label, points))
        return self

    def render(self) -> str:
        lines = [self.title, "=" * len(self.title)]
        lines.append(f"x: {self.xlabel}   y: {self.ylabel}")
        for s in self.series:
            lines.append(f"-- {s.label}")
            for x, y in s.points:
                lines.append(f"   {_fmt(x):>12}  {_fmt(y)}")
        return "\n".join(lines)

    def render_chart(self, width: int = 50, log_y: bool = False) -> str:
        """Render the series as horizontal ASCII bars per x value.

        Good enough to eyeball a scaling curve in a terminal; the data
        rows of :meth:`render` remain the canonical artifact.
        """
        import math

        if width < 10:
            raise ValueError("chart width must be >= 10")
        if not self.series:
            return self.render()
        ys = [y for s in self.series for _x, y in s.points if y > 0 or not log_y]
        if not ys:
            return self.render()
        top = max(ys)
        lo = min(y for y in ys if y > 0) if log_y else 0.0

        def bar(y: float) -> str:
            if log_y:
                if y <= 0:
                    return ""
                frac = (math.log10(y) - math.log10(lo)) / max(
                    1e-12, math.log10(top) - math.log10(lo)
                )
            else:
                frac = y / top if top > 0 else 0.0
            return "#" * max(1, int(round(frac * width)))

        lines = [self.title, "=" * len(self.title)]
        lines.append(f"x: {self.xlabel}   bars: {self.ylabel}"
                     f"{' (log scale)' if log_y else ''}")
        label_w = max(len(s.label) for s in self.series)
        for s in self.series:
            lines.append(f"-- {s.label}")
            for x, y in s.points:
                lines.append(
                    f"   {_fmt(x):>12} |{bar(y):<{width}}| {_fmt(y)}"
                )
        return "\n".join(lines)


def format_series(figure: Figure) -> str:
    """Convenience alias for ``figure.render()``."""
    return figure.render()


def figure_to_csv(figure: Figure) -> str:
    """Export a figure's series as CSV (series,x,y rows with header).

    Lets users replot the regenerated artifacts with their own tools.
    """
    lines = ["series,x,y"]
    for s in figure.series:
        label = s.label.replace('"', '""')
        quoted = f'"{label}"' if ("," in s.label or '"' in s.label) else label
        for x, y in s.points:
            lines.append(f"{quoted},{x!r},{y!r}")
    return "\n".join(lines)
