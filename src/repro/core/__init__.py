"""Evaluation core: metrics, reports, the experiment registry, and the
paper-shape validation harness."""

from .compare import compare_machines, ComparisonRow, render_comparison
from .evaluation import (
    experiment_ids,
    EXPERIMENTS,
    run_experiment,
    validate_experiment_params,
)
from .hpcc import build_table2, HpccColumn, TABLE2_ROWS
from .params import parse_params
from .metrics import (
    crossover_point,
    parallel_efficiency,
    relative_factor,
    speedup,
    weak_scaling_efficiency,
)
from .report import Figure, figure_to_csv, format_series, format_table, Series
from .sweep import Sweep, SweepPoint
from .validate import Claim, CLAIMS, validate_all, ValidationError

__all__ = [
    "speedup",
    "parallel_efficiency",
    "weak_scaling_efficiency",
    "crossover_point",
    "relative_factor",
    "format_table",
    "format_series",
    "figure_to_csv",
    "Figure",
    "Series",
    "Sweep",
    "SweepPoint",
    "HpccColumn",
    "build_table2",
    "TABLE2_ROWS",
    "Claim",
    "CLAIMS",
    "validate_all",
    "ValidationError",
    "EXPERIMENTS",
    "run_experiment",
    "experiment_ids",
    "validate_experiment_params",
    "parse_params",
    "ComparisonRow",
    "compare_machines",
    "render_comparison",
]
