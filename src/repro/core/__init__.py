"""Evaluation core: metrics, reports, the experiment registry, and the
paper-shape validation harness."""

from .metrics import (
    speedup,
    parallel_efficiency,
    weak_scaling_efficiency,
    crossover_point,
    relative_factor,
)
from .report import format_table, format_series, figure_to_csv, Figure, Series
from .sweep import Sweep, SweepPoint
from .hpcc import HpccColumn, build_table2, TABLE2_ROWS
from .validate import Claim, CLAIMS, validate_all, ValidationError
from .evaluation import EXPERIMENTS, run_experiment, experiment_ids
from .compare import ComparisonRow, compare_machines, render_comparison

__all__ = [
    "speedup",
    "parallel_efficiency",
    "weak_scaling_efficiency",
    "crossover_point",
    "relative_factor",
    "format_table",
    "format_series",
    "figure_to_csv",
    "Figure",
    "Series",
    "Sweep",
    "SweepPoint",
    "HpccColumn",
    "build_table2",
    "TABLE2_ROWS",
    "Claim",
    "CLAIMS",
    "validate_all",
    "ValidationError",
    "EXPERIMENTS",
    "run_experiment",
    "experiment_ids",
    "ComparisonRow",
    "compare_machines",
    "render_comparison",
]
