"""Shape validation: the paper's qualitative findings as executable checks.

``validate_all()`` runs every claim from DESIGN.md Section 4 against
the models and reports pass/fail — the reproduction's own regression
harness (also exercised by the test suite and the benches).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List

from ..apps.cam.model import CamModel, FV_1_9x2_5, SPECTRAL_T85
from ..apps.gyro.grid5d import B1_STD
from ..apps.gyro.model import GyroModel
from ..apps.pop.model import PopModel
from ..apps.s3d.model import S3dModel
from ..kernels.dgemm import DgemmModel
from ..kernels.hpl import HplModel
from ..machines import BGP, XT4_DC, XT4_QC
from ..memmodel.stream import StreamModel
from ..simmpi.cost import CostModel

__all__ = ["Claim", "CLAIMS", "validate_all", "ValidationError"]


class ValidationError(AssertionError):
    """A paper-shape claim failed against the models."""


@dataclass(frozen=True)
class Claim:
    """One qualitative finding of the paper."""

    id: str
    statement: str
    check: Callable[[], bool]

    def verify(self) -> None:
        if not self.check():
            raise ValidationError(f"claim {self.id} failed: {self.statement}")


def _c1() -> bool:
    """BG/P per-process dense rates below the XT4/QC; both HPL-scale well."""
    b = DgemmModel(BGP).rate_per_process_gflops()
    x = DgemmModel(XT4_QC).rate_per_process_gflops()
    hb = [HplModel(BGP).run(p).efficiency for p in (1024, 8192)]
    hx = [HplModel(XT4_QC).run(p).efficiency for p in (1024, 8192)]
    return b < x and min(hb) > 0.7 and min(hx) > 0.7


def _c2() -> bool:
    """BG/P STREAM: higher absolute and smaller single->EP decline."""
    sb, sx = StreamModel(BGP), StreamModel(XT4_QC)
    return (
        sb.bandwidth_per_process(4) > sx.bandwidth_per_process(4)
        and sb.decline_ratio() > sx.decline_ratio()
    )


def _c3() -> bool:
    """BG/P lower MPI latency; XT higher bandwidth."""
    b, x = CostModel(BGP, "VN", 64), CostModel(XT4_QC, "VN", 64)
    return b.p2p_time(8) < x.p2p_time(8) and b.p2p_bandwidth < x.p2p_bandwidth


def _c4() -> bool:
    """HALO: mapping choice irrelevant for small halos, large for big."""
    from ..halo.bench import HaloBenchmark

    small, big = [], []
    for m in ("TXYZ", "XYZT"):
        hb = HaloBenchmark(BGP, grid=(32, 32), mode="VN", mapping=m)
        small.append(hb.time_analytic(8))
        big.append(hb.time_analytic(50000))
    small_spread = max(small) / min(small)
    big_spread = max(big) / min(big)
    return small_spread < 1.5 and big_spread > 1.5


def _c5() -> bool:
    """BG/P Bcast >> XT; BG/P double-precision allreduce >> single."""
    p, nb = 1024, 32 * 1024
    b, x = CostModel(BGP, "VN", p), CostModel(XT4_QC, "VN", p)
    bcast_ok = b.bcast_time(nb) < x.bcast_time(nb) / 2
    prec_ok = b.allreduce_time(nb, "float64") < b.allreduce_time(nb, "float32") / 2
    return bcast_ok and prec_ok


def _c6() -> bool:
    """POP: XT4 ~3.6x at 8000, ~2.5x at 22500; BG/P scales to 40k."""
    b, x = PopModel(BGP), PopModel(XT4_DC)
    r8 = x.run(8000).syd / b.run(8000).syd
    r22 = x.run(22500).syd / b.run(22500).syd
    scaled = b.run(40000).syd / b.run(8000).syd
    return 3.0 <= r8 <= 4.2 and 2.0 <= r22 <= 3.0 and scaled > 2.5


def _c7() -> bool:
    """CAM: XT factors in the paper's ranges; hybrid extends scaling."""
    spect_factor = (
        CamModel(XT4_QC, SPECTRAL_T85).run(64).syd
        / CamModel(BGP, SPECTRAL_T85).run(64).syd
    )
    fv_factor = (
        CamModel(XT4_QC, FV_1_9x2_5).run(256).syd
        / CamModel(BGP, FV_1_9x2_5).run(256).syd
    )
    cm = CamModel(BGP, SPECTRAL_T85)
    hybrid_wins = cm.run(2048, hybrid=True).syd > cm.run(2048, hybrid=False).syd
    return spect_factor >= 3.0 and 1.9 <= fv_factor <= 2.6 and hybrid_wins


def _c8() -> bool:
    """S3D: near-flat weak scaling everywhere; BG/P cost/point higher."""
    sb, sx = S3dModel(BGP), S3dModel(XT4_QC)
    curve = [sb.run(p).core_hours_per_point_step for p in (8, 512, 8192)]
    flat = max(curve) / min(curve) < 1.25
    costlier = (
        sb.run(512).core_hours_per_point_step
        > sx.run(512).core_hours_per_point_step
    )
    return flat and costlier


def _c9() -> bool:
    """GYRO B1-std: XT4 efficiency collapses first; BG/P keeps scaling."""
    gb, gx = GyroModel(BGP, B1_STD), GyroModel(XT4_QC, B1_STD)
    def eff(g):
        return g.run(2048).speedup_vs(g.run(16)) / (2048 / 16)

    return eff(gb) > 0.7 and eff(gx) < 0.6


def _c10() -> bool:
    """Power: ~6.6x W/core; ~2.7x MFlops/W; modest gap at fixed SYD."""
    from ..machines.power import hpl_mflops_per_watt

    wcore = XT4_QC.power.hpl_watts_per_core / BGP.power.hpl_watts_per_core
    mfw = hpl_mflops_per_watt(BGP, 8192) / hpl_mflops_per_watt(XT4_QC, 30976)
    b_kw = PopModel(BGP).cores_for_syd(12.0) * BGP.power.normal_watts_per_core / 1e3
    x_kw = (
        PopModel(XT4_DC).cores_for_syd(12.0)
        * XT4_DC.power.normal_watts_per_core
        / 1e3
    )
    gap = x_kw / b_kw
    return 6.0 <= wcore <= 7.2 and 2.3 <= mfw <= 3.1 and 1.0 <= gap <= 1.7


CLAIMS: List[Claim] = [
    Claim("C1", "BG/P per-process dense rates < XT4/QC; both scale", _c1),
    Claim("C2", "BG/P STREAM higher and declines less single->EP", _c2),
    Claim("C3", "BG/P lower latency; XT higher bandwidth", _c3),
    Claim("C4", "HALO mapping matters only at large volume", _c4),
    Claim("C5", "Tree network: Bcast win + allreduce precision effect", _c5),
    Claim("C6", "POP factors 3.6x/2.5x; BG/P scales to 40k", _c6),
    Claim("C7", "CAM factors in range; OpenMP extends scalability", _c7),
    Claim("C8", "S3D flat weak scaling; BG/P cost/point higher", _c8),
    Claim("C9", "GYRO: XT4 runs out of work; BG/P continues", _c9),
    Claim("C10", "Power: 6.6x W/core but modest science-normalized gap", _c10),
]


def validate_all(raise_on_failure: bool = True) -> List[str]:
    """Verify every claim; returns the list of failed claim ids."""
    failed = []
    for claim in CLAIMS:
        try:
            claim.verify()
        except ValidationError:
            failed.append(claim.id)
    if failed and raise_on_failure:
        raise ValidationError(f"claims failed: {failed}")
    return failed
