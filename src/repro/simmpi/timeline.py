"""Per-rank activity timelines from simulated runs.

Records (rank, start, end, kind) intervals — ``compute`` from
roofline-costed compute blocks, ``send`` for injection overheads — and
derives the analyst's staples: per-rank busy fractions, the critical
rank, and an ASCII Gantt strip.  The paper's authors did exactly this
kind of attribution (with the IBM HPC toolkit) to split POP into its
baroclinic/barotropic phases.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from .comm import Cluster

__all__ = ["Interval", "Timeline", "attach_timeline"]


@dataclass(frozen=True)
class Interval:
    """One busy interval of one rank."""

    rank: int
    start: float
    end: float
    kind: str  # "compute" | "send"

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class Timeline:
    """All recorded intervals of one run."""

    intervals: List[Interval] = field(default_factory=list)

    def record(self, rank: int, start: float, end: float, kind: str) -> None:
        if end < start:
            raise ValueError("interval ends before it starts")
        self.intervals.append(Interval(rank, start, end, kind))

    # -- analysis -----------------------------------------------------------
    def span(self) -> Tuple[float, float]:
        if not self.intervals:
            return (0.0, 0.0)
        return (
            min(i.start for i in self.intervals),
            max(i.end for i in self.intervals),
        )

    def merged(self, rank: int, kind: Optional[str] = None) -> List[Tuple[float, float]]:
        """This rank's busy intervals with overlaps coalesced.

        A rank can be busy in two records at once (an ``isend``'s
        injection runs as its own process alongside compute), so raw
        durations double-count; utilisation math must merge first.
        """
        spans = sorted(
            (i.start, i.end)
            for i in self.intervals
            if i.rank == rank and (kind is None or i.kind == kind)
        )
        out: List[Tuple[float, float]] = []
        for start, end in spans:
            if out and start <= out[-1][1]:
                if end > out[-1][1]:
                    out[-1] = (out[-1][0], end)
            else:
                out.append((start, end))
        return out

    def busy_seconds(self, rank: int, kind: Optional[str] = None) -> float:
        """Seconds this rank was busy (overlapping intervals merged)."""
        return sum(end - start for start, end in self.merged(rank, kind))

    def busy_fraction(self, rank: int) -> float:
        lo, hi = self.span()
        total = hi - lo
        return self.busy_seconds(rank) / total if total > 0 else 0.0

    def critical_rank(self) -> int:
        """The rank with the most busy time (the load-imbalance culprit)."""
        ranks = {i.rank for i in self.intervals}
        if not ranks:
            raise ValueError("empty timeline")
        return max(ranks, key=self.busy_seconds)

    def gantt(self, width: int = 60) -> str:
        """ASCII strip chart: '#' compute, '>' send, '.' idle."""
        lo, hi = self.span()
        total = hi - lo
        ranks = sorted({i.rank for i in self.intervals})
        if total <= 0 or not ranks:
            return "(empty timeline)"
        lines = []
        for r in ranks:
            cells = ["."] * width
            for i in self.intervals:
                if i.rank != r:
                    continue
                a = int((i.start - lo) / total * width)
                b = max(a + 1, int((i.end - lo) / total * width))
                ch = "#" if i.kind == "compute" else ">"
                for c in range(a, min(b, width)):
                    if cells[c] == "." or ch == "#":
                        cells[c] = ch
            lines.append(f"rank {r:>4} |{''.join(cells)}|")
        return "\n".join(lines)


def attach_timeline(cluster: Cluster) -> Timeline:
    """Instrument a cluster; returns the live timeline.

    Hooks the roofline compute path (via the cluster's ``timeline``
    slot) and the transport's supported send hook so every rank's busy
    periods are captured.  Attach before ``run``.  Idempotent: a
    second attach returns the already-attached timeline.

    .. deprecated::
        Thin shim kept for existing callers; the :mod:`repro.obs`
        tracer records the same intervals as Chrome-trace spans with
        exporters and per-link telemetry on top.
    """
    if cluster.timeline is not None:
        return cluster.timeline
    timeline = Timeline()
    cluster.timeline = timeline

    def record_send(
        src: int, _dst: int, _nbytes: int, _tag: int, start: float, end: float
    ) -> None:
        timeline.record(src, start, end, "send")

    cluster.transport.add_send_hook(record_send)
    return timeline
