"""Simulated MPI over the discrete-event engine, plus the analytic twin.

Two levels of fidelity share one set of machine parameters:

* :class:`Cluster` / :class:`RankComm` — message-level simulation with
  link contention (run real communication schedules);
* :class:`CostModel` — closed-form LogGP-style estimates (drive the
  paper-scale sweeps).
"""

from .comm import ANY_SOURCE, ANY_TAG, Cluster, ClusterResult, RankComm
from .cost import CostModel
from .datatypes import bytes_of, DTYPE_SIZES, FLOAT32, FLOAT64, INT32, INT64
from .p2p import Message, ReliabilityPolicy, Transport
from .reqs import Request
from .stats import attach_stats, CommStats
from .subcomm import split_by, SubComm
from .timeline import attach_timeline, Interval, Timeline

__all__ = [
    "Cluster",
    "RankComm",
    "ClusterResult",
    "ANY_SOURCE",
    "ANY_TAG",
    "CostModel",
    "Message",
    "ReliabilityPolicy",
    "Transport",
    "Request",
    "DTYPE_SIZES",
    "bytes_of",
    "FLOAT32",
    "FLOAT64",
    "INT32",
    "INT64",
    "CommStats",
    "attach_stats",
    "Timeline",
    "Interval",
    "attach_timeline",
    "SubComm",
    "split_by",
]
