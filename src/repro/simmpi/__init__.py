"""Simulated MPI over the discrete-event engine, plus the analytic twin.

Two levels of fidelity share one set of machine parameters:

* :class:`Cluster` / :class:`RankComm` — message-level simulation with
  link contention (run real communication schedules);
* :class:`CostModel` — closed-form LogGP-style estimates (drive the
  paper-scale sweeps).
"""

from .comm import Cluster, RankComm, ClusterResult, ANY_SOURCE, ANY_TAG
from .cost import CostModel
from .p2p import Message, Transport
from .reqs import Request
from .datatypes import DTYPE_SIZES, bytes_of, FLOAT32, FLOAT64, INT32, INT64
from .stats import CommStats, attach_stats
from .timeline import Timeline, Interval, attach_timeline
from .subcomm import SubComm, split_by

__all__ = [
    "Cluster",
    "RankComm",
    "ClusterResult",
    "ANY_SOURCE",
    "ANY_TAG",
    "CostModel",
    "Message",
    "Transport",
    "Request",
    "DTYPE_SIZES",
    "bytes_of",
    "FLOAT32",
    "FLOAT64",
    "INT32",
    "INT64",
    "CommStats",
    "attach_stats",
    "Timeline",
    "Interval",
    "attach_timeline",
    "SubComm",
    "split_by",
]
