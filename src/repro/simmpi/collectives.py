"""Software collective algorithms, composed of point-to-point messages.

These run inside the discrete-event simulation, so torus contention
affects them realistically.  The XTs always use these; BlueGene machines
use them only when the collective-tree hardware cannot (e.g. the
single-precision Allreduce of paper Fig. 3a/b, or Alltoall which has no
tree offload).

All functions are generators to be driven with ``yield from`` inside a
rank program, and all take the per-rank communicator as first argument.
Tags are drawn from a reserved range so collectives never match user
point-to-point traffic.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from .comm import RankComm

__all__ = [
    "dissemination_barrier",
    "binomial_bcast",
    "recursive_doubling_allreduce",
    "binomial_reduce",
    "ring_allgather",
    "pairwise_alltoall",
]

#: Base tag for collective-internal messages.
_COLL_TAG = 1 << 20


def dissemination_barrier(comm: "RankComm"):
    """Dissemination barrier: ceil(log2 p) rounds of 0-byte messages."""
    p = comm.size
    if p == 1:
        return
    rank = comm.rank
    k = 1
    rnd = 0
    while k < p:
        dst = (rank + k) % p
        src = (rank - k) % p
        req = comm.irecv(src=src, tag=_COLL_TAG + rnd)
        yield from comm.send(dst, 0, tag=_COLL_TAG + rnd)
        yield from comm.wait(req)
        k <<= 1
        rnd += 1


def binomial_bcast(comm: "RankComm", nbytes: int, root: int = 0):
    """Binomial-tree broadcast (any rank count)."""
    p = comm.size
    if p == 1:
        return
    if nbytes < 0:
        raise ValueError("negative payload")
    rank = comm.rank
    relative = (rank - root) % p
    # Receive from parent (unless root).
    mask = 1
    while mask < p:
        if relative & mask:
            src = (relative - mask + root) % p
            yield from comm.recv(src=src, tag=_COLL_TAG + 64)
            break
        mask <<= 1
    # Forward to children.
    mask >>= 1
    while mask > 0:
        if relative + mask < p:
            dst = (relative + mask + root) % p
            yield from comm.send(dst, nbytes, tag=_COLL_TAG + 64)
        mask >>= 1


def binomial_reduce(comm: "RankComm", nbytes: int, root: int = 0):
    """Binomial-tree reduction to ``root`` with per-merge combine cost."""
    p = comm.size
    if p == 1:
        return
    rank = comm.rank
    relative = (rank - root) % p
    mask = 1
    while mask < p:
        if relative & mask:
            dst = (relative - mask + root) % p
            yield from comm.send(dst, nbytes, tag=_COLL_TAG + 96)
            return
        src_rel = relative + mask
        if src_rel < p:
            src = (src_rel + root) % p
            yield from comm.recv(src=src, tag=_COLL_TAG + 96)
            yield from comm.compute(bytes_moved=3 * nbytes)  # combine
        mask <<= 1


def recursive_doubling_allreduce(comm: "RankComm", nbytes: int):
    """MPICH-style recursive-doubling allreduce (any rank count).

    Non-power-of-two counts fold the remainder ranks in a pre-phase and
    unfold in a post-phase, exactly like the production algorithm.
    """
    p = comm.size
    if p == 1:
        yield from comm.compute(bytes_moved=3 * nbytes)
        return
    rank = comm.rank
    pof2 = 1 << (p.bit_length() - 1)
    rem = p - pof2
    tag = _COLL_TAG + 128

    if rank < 2 * rem:
        if rank % 2 == 0:
            yield from comm.send(rank + 1, nbytes, tag=tag)
            newrank = -1
        else:
            yield from comm.recv(src=rank - 1, tag=tag)
            yield from comm.compute(bytes_moved=3 * nbytes)
            newrank = rank // 2
    else:
        newrank = rank - rem

    if newrank != -1:
        mask = 1
        while mask < pof2:
            peer_new = newrank ^ mask
            peer = peer_new * 2 + 1 if peer_new < rem else peer_new + rem
            yield from comm.sendrecv(
                dst=peer, send_bytes=nbytes, src=peer, tag=tag + 1
            )
            yield from comm.compute(bytes_moved=3 * nbytes)
            mask <<= 1

    if rank < 2 * rem:
        if rank % 2 == 0:
            yield from comm.recv(src=rank + 1, tag=tag + 2)
        else:
            yield from comm.send(rank - 1, nbytes, tag=tag + 2)


#: Payload size above which allreduce switches from recursive doubling
#: to the Rabenseifner reduce-scatter/allgather algorithm (MPICH uses a
#: comparable cutoff).  Shared with the analytic CostModel.
ALLREDUCE_RD_THRESHOLD = 2048


def rabenseifner_allreduce(comm: "RankComm", nbytes: int):
    """Reduce-scatter + allgather allreduce (bandwidth-optimal).

    Recursive halving reduce-scatter followed by recursive doubling
    allgather.  Non-power-of-two rank counts fold the remainder first,
    as in :func:`recursive_doubling_allreduce`.
    """
    p = comm.size
    if p == 1:
        yield from comm.compute(bytes_moved=3 * nbytes)
        return
    rank = comm.rank
    pof2 = 1 << (p.bit_length() - 1)
    rem = p - pof2
    tag = _COLL_TAG + 320

    if rank < 2 * rem:
        if rank % 2 == 0:
            yield from comm.send(rank + 1, nbytes, tag=tag)
            newrank = -1
        else:
            yield from comm.recv(src=rank - 1, tag=tag)
            yield from comm.compute(bytes_moved=3 * nbytes)
            newrank = rank // 2
    else:
        newrank = rank - rem

    if newrank != -1:

        def old(nr: int) -> int:
            return nr * 2 + 1 if nr < rem else nr + rem

        # Reduce-scatter: halve the payload each round.
        chunk = nbytes
        mask = 1
        while mask < pof2:
            chunk //= 2
            peer = old(newrank ^ mask)
            yield from comm.sendrecv(
                dst=peer, send_bytes=chunk, src=peer, tag=tag + 1
            )
            yield from comm.compute(bytes_moved=3 * chunk)
            mask <<= 1
        # Allgather: double the payload each round.
        mask = pof2 >> 1
        while mask > 0:
            peer = old(newrank ^ mask)
            yield from comm.sendrecv(
                dst=peer, send_bytes=chunk, src=peer, tag=tag + 2
            )
            chunk *= 2
            mask >>= 1

    if rank < 2 * rem:
        if rank % 2 == 0:
            yield from comm.recv(src=rank + 1, tag=tag + 3)
        else:
            yield from comm.send(rank - 1, nbytes, tag=tag + 3)


def software_allreduce(comm: "RankComm", nbytes: int):
    """Algorithm dispatch shared with the analytic model."""
    if nbytes <= ALLREDUCE_RD_THRESHOLD:
        yield from recursive_doubling_allreduce(comm, nbytes)
    else:
        yield from rabenseifner_allreduce(comm, nbytes)


def ring_allgather(comm: "RankComm", nbytes_per_rank: int):
    """Ring allgather: p-1 neighbour shifts of one contribution each."""
    p = comm.size
    if p == 1:
        return
    rank = comm.rank
    right = (rank + 1) % p
    left = (rank - 1) % p
    for step in range(p - 1):
        tag = _COLL_TAG + 192 + step
        req = comm.irecv(src=left, tag=tag)
        yield from comm.send(right, nbytes_per_rank, tag=tag)
        yield from comm.wait(req)


def bruck_alltoall(comm: "RankComm", nbytes_per_pair: int):
    """Bruck alltoall: ceil(log2 p) rounds, each moving half the
    aggregate payload — the small-message algorithm production MPIs use."""
    p = comm.size
    if p == 1:
        return
    rank = comm.rank
    round_bytes = int(nbytes_per_pair * p / 2)
    delta = 1
    rnd = 0
    while delta < p:
        dst = (rank + delta) % p
        src = (rank - delta) % p
        tag = _COLL_TAG + 384 + rnd
        req = comm.irecv(src=src, tag=tag)
        yield from comm.send(dst, round_bytes, tag=tag)
        yield from comm.wait(req)
        delta <<= 1
        rnd += 1


def pairwise_alltoall(comm: "RankComm", nbytes_per_pair: int):
    """Pairwise-exchange alltoall: p-1 rounds of sendrecv."""
    p = comm.size
    if p == 1:
        return
    rank = comm.rank
    is_pof2 = (p & (p - 1)) == 0
    for k in range(1, p):
        if is_pof2:
            peer_s = peer_r = rank ^ k
        else:
            peer_s = (rank + k) % p
            peer_r = (rank - k) % p
        tag = _COLL_TAG + 256 + k
        req = comm.irecv(src=peer_r, tag=tag)
        yield from comm.send(peer_s, nbytes_per_pair, tag=tag)
        yield from comm.wait(req)


def recursive_halving_reduce_scatter(comm: "RankComm", nbytes_total: int):
    """Reduce-scatter via recursive halving (power-of-two optimized).

    Each round exchanges half the remaining vector with a partner and
    combines; non-power-of-two counts fold the remainder first.
    """
    p = comm.size
    if p == 1:
        yield from comm.compute(bytes_moved=3 * nbytes_total)
        return
    rank = comm.rank
    pof2 = 1 << (p.bit_length() - 1)
    rem = p - pof2
    tag = _COLL_TAG + 576

    if rank < 2 * rem:
        if rank % 2 == 0:
            yield from comm.send(rank + 1, nbytes_total, tag=tag)
            newrank = -1
        else:
            yield from comm.recv(src=rank - 1, tag=tag)
            yield from comm.compute(bytes_moved=3 * nbytes_total)
            newrank = rank // 2
    else:
        newrank = rank - rem

    if newrank != -1:

        def old(nr: int) -> int:
            return nr * 2 + 1 if nr < rem else nr + rem

        chunk = nbytes_total
        mask = 1
        while mask < pof2:
            chunk //= 2
            peer = old(newrank ^ mask)
            yield from comm.sendrecv(dst=peer, send_bytes=chunk, src=peer, tag=tag + 1)
            yield from comm.compute(bytes_moved=3 * chunk)
            mask <<= 1

    if rank < 2 * rem and rank % 2 == 0:
        # Collect this rank's result segment from its partner.
        yield from comm.recv(src=rank + 1, tag=tag + 2)
    elif rank < 2 * rem:
        yield from comm.send(rank - 1, max(1, nbytes_total // p), tag=tag + 2)


def binomial_gather(comm: "RankComm", nbytes_per_rank: int, root: int = 0):
    """Binomial-tree gather to ``root``; payloads double up the tree.

    This is PMEMD's coordinate-output pattern (paper Section III.E).
    """
    p = comm.size
    if p == 1:
        return
    rank = comm.rank
    relative = (rank - root) % p
    tag = _COLL_TAG + 448
    # Each node accumulates the subtree below it, then forwards.
    accumulated = 1
    mask = 1
    while mask < p:
        if relative & mask:
            dst = (relative - mask + root) % p
            yield from comm.send(dst, nbytes_per_rank * accumulated, tag=tag)
            return
        src_rel = relative + mask
        if src_rel < p:
            subtree = min(mask, p - src_rel)
            yield from comm.recv(src=(src_rel + root) % p, tag=tag)
            accumulated += subtree
        mask <<= 1


def binomial_scatter(comm: "RankComm", nbytes_per_rank: int, root: int = 0):
    """Binomial-tree scatter from ``root``; payloads halve down the tree."""
    p = comm.size
    if p == 1:
        return
    rank = comm.rank
    relative = (rank - root) % p
    tag = _COLL_TAG + 512
    # Receive my subtree's data from my parent (unless root).
    mask = 1
    while mask < p:
        if relative & mask:
            src = (relative - mask + root) % p
            yield from comm.recv(src=src, tag=tag)
            break
        mask <<= 1
    # Forward the halves below me.
    mask >>= 1
    while mask > 0:
        if relative + mask < p:
            dst = (relative + mask + root) % p
            subtree = min(mask, p - (relative + mask))
            yield from comm.send(dst, nbytes_per_rank * subtree, tag=tag)
        mask >>= 1


def log2_rounds(p: int) -> int:
    """ceil(log2(p)) with log2(1) == 0 (helper shared with tests)."""
    return 0 if p <= 1 else math.ceil(math.log2(p))
