"""Nonblocking-operation request handles (MPI_Request analogues)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from ..simengine import Event

__all__ = ["Request"]


@dataclass
class Request:
    """Handle for an in-flight isend/irecv.

    ``completion`` is the event that fires when the operation finishes;
    ``overhead`` is CPU time charged to the caller at wait() time
    (receive-side copy cost, per the LogGP 'o_r' parameter).

    ``peer`` and ``tag`` record the operation's envelope (``None`` for
    wildcards) so diagnostics — chiefly the simulation sanitizer's
    leaked-request report — can say *which* operation was abandoned.
    ``comm.wait``/``comm.waitall`` mark the request as consumed via the
    private ``_waited`` flag.
    """

    kind: str  # "send" | "recv"
    completion: Event
    overhead: float = 0.0
    peer: Optional[int] = None
    tag: Optional[int] = None
    _result: Any = field(default=None, repr=False)
    _waited: bool = field(default=False, repr=False)

    @property
    def complete(self) -> bool:
        return self.completion.triggered

    def result(self) -> Any:
        """Value of the completed operation (Message for receives)."""
        if not self.completion.triggered:
            raise RuntimeError("request has not completed; yield comm.wait(req)")
        return self.completion.value
