"""Point-to-point message transport for the simulated MPI.

Implements MPI-like matching semantics (source/tag matching, FIFO per
pair, wildcards) over the link-level torus model:

* **Eager protocol** (payload <= eager threshold): the sender pays its
  CPU overhead, injects the message, and completes immediately; the
  payload is buffered at the receiver if no recv is posted yet.
* **Rendezvous protocol** (payload > threshold): an RTS control message
  travels to the receiver; the bulk data transfer starts only when the
  matching receive is posted *and* the RTS has arrived, after the
  machine's rendezvous handshake cost; the sender completes when the
  data has fully arrived (synchronous-send semantics).

Messages traverse the torus with cut-through routing: each directed
link serializes its own traffic (see ``SerialLink.book``), the head
advances one hop latency per router, and delivery happens when the tail
clears the last link.  Intra-node transfers bypass the network and move
at shared-memory bandwidth (paper Section I.A: "Optimizations in the
system software allow peer tasks on a Compute Node to communicate via
shared memory").

**Faults and reliability.**  When a :class:`repro.faults.FaultInjector`
is attached, messages can be lost to link failures and corruption
windows.  Without a :class:`ReliabilityPolicy` a lost message simply
never arrives (the receiver waits forever — the sanitizer reports the
resulting deadlock, annotated as a possible fault-kill).  With a
policy, the transport runs an ack/timeout/retransmit protocol: every
network send is acknowledged, a lost message times out and is resent
over a freshly computed route (failed links get routed around), and
exponential backoff spaces the attempts.  A sender that exhausts its
retries — or has no fault-free route at all — raises
:class:`repro.faults.FaultError` in the sending rank's program, so a
fault-kill is attributable to the component that caused it.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple

from ..faults.errors import FaultError
from ..simengine import Engine, Event
from ..topology.mapping import Mapping
from ..topology.torus import NoRouteError, Torus3D

__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "Message",
    "ReliabilityPolicy",
    "Transport",
]

#: Wildcards, MPI-style.
ANY_SOURCE = -1
ANY_TAG = -1


@dataclass(frozen=True)
class ReliabilityPolicy:
    """Parameters of the ack/timeout/retransmit protocol.

    ``max_retries`` counts *retransmissions* (0 = detect the loss and
    give up immediately; the default allows three resends).  The first
    timeout is ``ack_timeout`` seconds (0 = derive one from the message
    size and link speed) and each subsequent attempt multiplies it by
    ``backoff``.
    """

    max_retries: int = 3
    backoff: float = 2.0
    ack_timeout: float = 0.0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.backoff < 1.0:
            raise ValueError("backoff must be >= 1.0")
        if self.ack_timeout < 0:
            raise ValueError("ack_timeout must be >= 0")


@dataclass
class Message:
    """A delivered message as seen by the receiver."""

    src: int
    dst: int
    tag: int
    nbytes: int
    payload: Any = None

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Message {self.src}->{self.dst} tag={self.tag} {self.nbytes}B>"


@dataclass
class _Envelope:
    """Transport-internal: a message en route or awaiting a match."""

    msg: Message
    #: eager: fires when the payload has fully arrived at the receiver
    arrival: Optional[Event] = None
    #: rendezvous: fires (for the sender) when the transfer completes
    sender_done: Optional[Event] = None
    #: rendezvous: True once the RTS control message has arrived
    rts_arrived: bool = False
    #: rendezvous: the matched receive's completion event
    matched_recv: Optional[Event] = None


@dataclass
class _PostedRecv:
    src: int
    tag: int
    event: Event

    def matches(self, msg: Message) -> bool:
        return (self.src in (ANY_SOURCE, msg.src)) and (
            self.tag in (ANY_TAG, msg.tag)
        )


class _MatchQueue:
    """Per-rank unexpected-message queue + posted-receive queue."""

    __slots__ = ("env", "transport", "unexpected", "posted")

    def __init__(self, env: Engine, transport: "Transport") -> None:
        self.env = env
        self.transport = transport
        self.unexpected: Deque[_Envelope] = deque()
        self.posted: Deque[_PostedRecv] = deque()

    def post_recv(self, src: int, tag: int) -> Event:
        """Post a receive; the returned event fires at data arrival."""
        ev = Event(self.env)
        pr = _PostedRecv(src, tag, ev)
        for i, envl in enumerate(self.unexpected):
            if pr.matches(envl.msg):
                del self.unexpected[i]
                self._pair(envl, ev)
                return ev
        self.posted.append(pr)
        return ev

    def incoming(self, envelope: _Envelope) -> None:
        """An arrived message (or rendezvous RTS) is ready to match."""
        for i, pr in enumerate(self.posted):
            if pr.matches(envelope.msg):
                del self.posted[i]
                self._pair(envelope, pr.event)
                return
        self.unexpected.append(envelope)

    def _pair(self, envelope: _Envelope, recv_event: Event) -> None:
        if envelope.sender_done is not None:
            envelope.matched_recv = recv_event
            self.transport._rendezvous_matched(envelope)
        elif envelope.arrival is not None and not envelope.arrival.triggered:
            envelope.arrival.callbacks.append(
                lambda _e, e=envelope, r=recv_event: r.succeed(e.msg)
            )
        else:
            recv_event.succeed(envelope.msg)


class Transport:
    """Moves messages between ranks over the partition's networks."""

    def __init__(
        self,
        env: Engine,
        torus: Torus3D,
        mapping: Mapping,
        machine,
        adaptive_routing: bool = False,
        ranks: Optional[int] = None,
        reliability: Optional[ReliabilityPolicy] = None,
    ) -> None:
        self.env = env
        self.torus = torus
        self.mapping = mapping
        self.machine = machine
        #: use the torus's adaptive (congestion-aware) routing per
        #: message instead of deterministic dimension order
        self.adaptive_routing = adaptive_routing
        #: communicator size for argument validation (None = unchecked)
        self.ranks = ranks
        #: retransmission policy; None = no acks, lost messages stay lost
        self.reliability = reliability
        #: the attached repro.faults.FaultInjector, if any
        self.fault_injector: Optional[Any] = None
        #: the attached repro.recovery.RecoveryRuntime, if any
        self.recovery: Optional[Any] = None
        self.queues: Dict[int, _MatchQueue] = {}
        #: total messages injected (stats)
        self.messages_sent = 0
        #: total payload bytes injected (stats)
        self.bytes_sent = 0
        #: supported observation hooks, called as
        #: ``hook(src, dst, nbytes, tag, t_start, t_end)`` once per
        #: completed send (``t_start`` = injection begins, ``t_end`` =
        #: the protocol's completion point).  This replaces the old
        #: practice of monkey-patching :meth:`send`; an empty list (the
        #: default) adds no per-message work.
        self._send_hooks: List[Callable[[int, int, int, int, float, float], None]] = []

    # -- plumbing ---------------------------------------------------------
    def queue_of(self, rank: int) -> _MatchQueue:
        q = self.queues.get(rank)
        if q is None:
            q = self.queues[rank] = _MatchQueue(self.env, self)
        return q

    def _same_node(self, a: int, b: int) -> bool:
        return self.mapping.node_of(a) == self.mapping.node_of(b)

    def shm_bandwidth(self) -> float:
        """Intra-node copy bandwidth: ~half the node STREAM rate."""
        return self.machine.node.memory.node_stream / 2.0

    def _network_transit(
        self, src: int, dst: int, nbytes: int
    ) -> Tuple[float, Optional[Tuple]]:
        """Book a route now; return ``(delay, lost_at_link)``.

        ``delay`` is the time until the message tail arrives at the
        destination (or dies).  ``lost_at_link`` is ``None`` for a
        clean delivery, else the directed link key where an injected
        fault killed the message — links past the loss point are not
        booked (the flits never reach them).  Raises
        :class:`~repro.topology.torus.NoRouteError` when failures have
        disconnected the pair.
        """
        mpi = self.machine.mpi
        a, b = self.mapping.node_of(src), self.mapping.node_of(dst)
        if self.adaptive_routing:
            route = self.torus.route_adaptive(a, b, float(nbytes))
        else:
            route = self.torus.route(a, b)
        injector = self.fault_injector
        head = self.env.now + mpi.latency
        tail = head
        for key in route:
            head, tail = self.torus.links[key].book(float(nbytes), head)
            if injector is not None:
                reason = injector.lost_on(key, tail)
                if reason is not None:
                    injector.record_drop(key, reason)
                    return tail - self.env.now, key
        return tail - self.env.now, None

    def _network_delivery_delay(self, src: int, dst: int, nbytes: int) -> float:
        """Book the route now; return delay until the tail arrives."""
        delay, _lost = self._network_transit(src, dst, nbytes)
        return delay

    def _retry_timeout(self, nbytes: int, attempt: int) -> float:
        """Deterministic ack-timeout before retransmission ``attempt``."""
        rel = self.reliability
        assert rel is not None
        base = rel.ack_timeout
        if base == 0.0:
            mpi = self.machine.mpi
            base = 4.0 * (
                mpi.latency + float(nbytes) / self.torus.spec.link_bandwidth
            )
        return base * rel.backoff**attempt

    def _shm_delivery_delay(self, nbytes: int) -> float:
        return 0.5 * self.machine.mpi.latency + nbytes / self.shm_bandwidth()

    def _schedule_eager_arrival(self, envelope: _Envelope, delay: float) -> None:
        ev = Event(self.env)
        ev._ok = True
        ev._value = envelope.msg
        self.env.schedule(ev, delay=delay)
        envelope.arrival = ev
        ev.callbacks.append(
            lambda _e: self.queue_of(envelope.msg.dst).incoming(envelope)
        )

    # -- sends -------------------------------------------------------------
    def add_send_hook(
        self, hook: Callable[[int, int, int, int, float, float], None]
    ) -> None:
        """Register a send observation hook (see ``_send_hooks``)."""
        if hook not in self._send_hooks:
            self._send_hooks.append(hook)

    def remove_send_hook(
        self, hook: Callable[[int, int, int, int, float, float], None]
    ) -> None:
        """Unregister a previously added send hook (missing is a no-op)."""
        try:
            self._send_hooks.remove(hook)
        except ValueError:
            pass

    def _check_rank(self, value: int, what: str) -> None:
        if self.ranks is not None and not 0 <= value < self.ranks:
            raise ValueError(
                f"{what} rank {value} out of range for a communicator "
                f"of {self.ranks} rank(s) (valid: 0..{self.ranks - 1})"
            )

    def send(self, src: int, dst: int, nbytes: int, tag: int = 0, payload: Any = None):
        """Blocking send.  Returns a generator; completes per protocol.

        Arguments are validated *here*, at the call site, so a bad rank
        or tag raises :class:`ValueError` immediately instead of
        surfacing later inside the event loop.
        """
        self._check_rank(src, "source")
        self._check_rank(dst, "destination")
        if tag < 0:
            raise ValueError(f"tag must be >= 0, got {tag}")
        if nbytes < 0:
            raise ValueError(f"negative message size: {nbytes}")
        self._check_dead(src, dst, "send")
        return self._send_observed(src, dst, nbytes, tag, payload)

    def _check_dead(self, src: int, dst: int, op: str) -> None:
        """ULFM: touching a dead rank raises at the initiating peer."""
        recovery = self.recovery
        if recovery is None or not recovery.dead_ranks:
            return
        dead = recovery.dead_ranks
        if src in dead or dst in dead:
            from ..recovery.errors import RankFailedError

            peer = dst if dst in dead else src
            raise RankFailedError(
                dead, sim_time=self.env.now, op=op,
                rank=src if op == "send" else dst, peer=peer,
            )

    def _send_observed(self, src: int, dst: int, nbytes: int, tag: int, payload: Any):
        if not self._send_hooks:
            yield from self._send_impl(src, dst, nbytes, tag, payload)
            return
        start = self.env.now
        yield from self._send_impl(src, dst, nbytes, tag, payload)
        end = self.env.now
        for hook in self._send_hooks:
            hook(src, dst, nbytes, tag, start, end)

    def _send_impl(self, src: int, dst: int, nbytes: int, tag: int, payload: Any):
        mpi = self.machine.mpi
        self.messages_sent += 1
        self.bytes_sent += nbytes
        msg = Message(src=src, dst=dst, tag=tag, nbytes=nbytes, payload=payload)

        yield self.env.timeout(mpi.send_overhead)

        intranode = src != dst and self._same_node(src, dst)
        if src == dst:
            envl = _Envelope(msg)
            self._schedule_eager_arrival(envl, delay=0.0)
            return
        if nbytes <= mpi.eager_threshold or intranode:
            envl = _Envelope(msg)
            if intranode:
                self._schedule_eager_arrival(envl, self._shm_delivery_delay(nbytes))
                return
            yield from self._eager_network_send(envl)
            return

        # Rendezvous: RTS control message first, then the bulk transfer.
        done = Event(self.env)
        envl = _Envelope(msg, sender_done=done)
        rel = self.reliability
        attempt = 0
        while True:
            try:
                rts_delay, lost = self._network_transit(src, dst, 0)
            except NoRouteError as exc:
                self._record_kill()
                raise FaultError(
                    src, dst, tag, nbytes,
                    attempts=attempt, time=self.env.now, reason=str(exc),
                ) from exc
            if lost is None:
                rts_ev = Event(self.env)
                rts_ev._ok = True
                rts_ev._value = None
                self.env.schedule(rts_ev, delay=rts_delay)
                rts_ev.callbacks.append(lambda _e: self._rts_arrived(envl))
                break
            if rel is None:
                # The RTS died and nobody will resend it; the sender
                # blocks forever — the sanitizer reports the hang.
                break
            if attempt >= rel.max_retries:
                self._record_kill()
                raise FaultError(
                    src, dst, tag, nbytes,
                    link=lost, attempts=attempt, time=self.env.now,
                    reason="retries exhausted",
                )
            yield self.env.timeout(self._retry_timeout(0, attempt))
            attempt += 1
            self._record_retry()
        yield done

    def _eager_network_send(self, envelope: _Envelope):
        """Eager-protocol network send, with retransmission if enabled."""
        msg = envelope.msg
        rel = self.reliability
        attempt = 0
        while True:
            try:
                delay, lost = self._network_transit(msg.src, msg.dst, msg.nbytes)
            except NoRouteError as exc:
                self._record_kill()
                raise FaultError(
                    msg.src, msg.dst, msg.tag, msg.nbytes,
                    attempts=attempt, time=self.env.now, reason=str(exc),
                ) from exc
            if lost is None:
                self._schedule_eager_arrival(envelope, delay)
                if rel is not None:
                    # Acked eager: the sender holds until the ack is back.
                    yield self.env.timeout(delay + self.machine.mpi.latency)
                return
            if rel is None:
                return  # fire-and-forget: the loss is silent
            if attempt >= rel.max_retries:
                self._record_kill()
                raise FaultError(
                    msg.src, msg.dst, msg.tag, msg.nbytes,
                    link=lost, attempts=attempt, time=self.env.now,
                    reason="retries exhausted",
                )
            yield self.env.timeout(self._retry_timeout(msg.nbytes, attempt))
            attempt += 1
            self._record_retry()

    def _record_retry(self) -> None:
        if self.fault_injector is not None:
            self.fault_injector.record_retry()

    def _record_kill(self) -> None:
        if self.fault_injector is not None:
            self.fault_injector.record_kill()

    def _rts_arrived(self, envelope: _Envelope) -> None:
        envelope.rts_arrived = True
        recovery = self.recovery
        if recovery is not None and envelope.msg.dst in recovery.dead_ranks:
            # The receiver died while the RTS was in flight: fail the
            # sender instead of parking the envelope forever.
            done = envelope.sender_done
            if done is not None and not done.triggered:
                from ..recovery.errors import RankFailedError

                msg = envelope.msg
                done.fail(
                    RankFailedError(
                        recovery.dead_ranks, sim_time=self.env.now,
                        op="send", rank=msg.src, peer=msg.dst,
                    )
                )
                done.defuse()
            return
        self.queue_of(envelope.msg.dst).incoming(envelope)

    def _rendezvous_matched(self, envelope: _Envelope) -> None:
        """Both sides are ready (called by the match queue)."""
        if not envelope.rts_arrived:  # pragma: no cover - defensive
            return
        msg = envelope.msg
        intranode = self._same_node(msg.src, msg.dst)
        if not intranode and self.fault_injector is not None:
            if self.reliability is not None:
                self.env.process(self._reliable_rendezvous_transfer(envelope))
                return
            delay, lost = self._network_transit(msg.src, msg.dst, msg.nbytes)
            if lost is not None:
                # Transfer died in flight with nobody retransmitting:
                # both sides hang (fault-kill, flagged by the sanitizer).
                return
            self._deliver_rendezvous(
                envelope, self.machine.mpi.rendezvous_overhead + delay
            )
            return
        delay = self.machine.mpi.rendezvous_overhead + (
            self._shm_delivery_delay(msg.nbytes)
            if intranode
            else self._network_delivery_delay(msg.src, msg.dst, msg.nbytes)
        )
        self._deliver_rendezvous(envelope, delay)

    def _deliver_rendezvous(self, envelope: _Envelope, delay: float) -> None:
        msg = envelope.msg
        ev = Event(self.env)
        ev._ok = True
        ev._value = msg
        self.env.schedule(ev, delay=delay)

        def _deliver(_e: Event) -> None:
            recv = envelope.matched_recv
            assert recv is not None and envelope.sender_done is not None
            recv.succeed(msg)
            if not envelope.sender_done.triggered:
                envelope.sender_done.succeed()

        ev.callbacks.append(_deliver)

    def _reliable_rendezvous_transfer(self, envelope: _Envelope):
        """Retransmitting bulk transfer (runs as its own process)."""
        msg = envelope.msg
        rel = self.reliability
        assert rel is not None
        yield self.env.timeout(self.machine.mpi.rendezvous_overhead)
        attempt = 0
        while True:
            try:
                delay, lost = self._network_transit(msg.src, msg.dst, msg.nbytes)
            except NoRouteError as exc:
                self._fail_rendezvous(
                    envelope,
                    FaultError(
                        msg.src, msg.dst, msg.tag, msg.nbytes,
                        attempts=attempt, time=self.env.now, reason=str(exc),
                    ),
                )
                return
            if lost is None:
                yield self.env.timeout(delay)
                recv = envelope.matched_recv
                assert recv is not None and envelope.sender_done is not None
                recv.succeed(msg)
                if not envelope.sender_done.triggered:
                    envelope.sender_done.succeed()
                return
            if attempt >= rel.max_retries:
                self._fail_rendezvous(
                    envelope,
                    FaultError(
                        msg.src, msg.dst, msg.tag, msg.nbytes,
                        link=lost, attempts=attempt, time=self.env.now,
                        reason="retries exhausted",
                    ),
                )
                return
            yield self.env.timeout(self._retry_timeout(msg.nbytes, attempt))
            attempt += 1
            self._record_retry()

    def _fail_rendezvous(self, envelope: _Envelope, err: FaultError) -> None:
        """Kill both sides of a rendezvous with sender-side attribution."""
        self._record_kill()
        recovery = self.recovery
        dead = recovery.dead_ranks if recovery is not None else ()
        if envelope.sender_done is not None and not envelope.sender_done.triggered:
            envelope.sender_done.fail(err)
            if envelope.msg.src in dead:
                envelope.sender_done.defuse()
        recv = envelope.matched_recv
        if recv is not None and not recv.triggered:
            recv.fail(err)
            if envelope.msg.dst in dead:
                recv.defuse()

    # -- receives ------------------------------------------------------------
    def post_recv(self, dst: int, src: int = ANY_SOURCE, tag: int = ANY_TAG) -> Event:
        """Post a receive; returned event fires when the data has arrived.

        ``src`` may be :data:`ANY_SOURCE` and ``tag`` may be
        :data:`ANY_TAG`; anything else is validated immediately.
        """
        self._check_rank(dst, "receiver")
        if src != ANY_SOURCE:
            self._check_rank(src, "source")
        if tag != ANY_TAG and tag < 0:
            raise ValueError(f"tag must be >= 0 or ANY_TAG, got {tag}")
        if src != ANY_SOURCE:
            self._check_dead(src, dst, "recv")
        return self.queue_of(dst).post_recv(src, tag)
