"""Sub-communicators: MPI_Comm_split for the simulated MPI.

Applications like GYRO and CAM decompose their transposes over row and
column communicators rather than COMM_WORLD; this module provides the
same facility::

    def program(comm):
        row = split_by(comm, lambda r: r // 4)   # rows of four ranks
        yield from row.allreduce(1024, dtype="float64")

A :class:`SubComm` exposes the familiar communicator API with ranks
renumbered inside the subgroup; point-to-point traffic is translated to
parent-rank messages on a reserved tag band, and collectives run the
software algorithms over the subgroup (the BG/P tree network serves the
full partition; subgroup collectives took the torus path on the real
machine too, absent a configured class route).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from . import collectives as _algos
from .comm import ANY_SOURCE, ANY_TAG, RankComm

__all__ = ["SubComm", "split_by"]

#: Tag band reserved for subgroup traffic (above the collective band).
_SUB_TAG = 1 << 24


class SubComm:
    """A communicator over a subgroup of a cluster's ranks.

    Under an armed recovery runtime a SubComm is bound to the *shrink
    generation* it was created in: when a later node failure advances
    the generation, every subsequent operation on this communicator
    raises :class:`~repro.recovery.RankFailedError` (the ULFM revoke),
    and the survivors must shrink again.
    """

    __slots__ = ("parent", "group", "rank", "_group_id", "_gen")

    def __init__(self, parent: RankComm, group: List[int], group_id: int) -> None:
        if parent.rank not in group:
            raise ValueError("parent rank is not a member of the subgroup")
        if len(set(group)) != len(group):
            raise ValueError("subgroup contains duplicate ranks")
        self.parent = parent
        self.group = list(group)
        self.rank = self.group.index(parent.rank)
        self._group_id = group_id
        recovery = parent.cluster.recovery
        self._gen = 0 if recovery is None else recovery.generation

    # -- introspection -------------------------------------------------------
    @property
    def size(self) -> int:
        return len(self.group)

    @property
    def env(self):
        return self.parent.env

    @property
    def now(self) -> float:
        return self.parent.now

    @property
    def machine(self):
        return self.parent.machine

    @property
    def cluster(self):
        return self.parent.cluster

    def world_rank(self, sub_rank: int) -> int:
        """Translate a subgroup rank to the cluster rank."""
        return self.group[sub_rank]

    def _tag(self, tag: int) -> int:
        # Isolate subgroup traffic per group id and user tag.  The
        # stride exceeds the collective-internal tag band (~2^20), so
        # concurrent collectives on different subgroups cannot collide.
        return _SUB_TAG + self._group_id * (1 << 22) + tag

    def _guard(self, op: str, peer: Optional[int] = None) -> None:
        """Raise when a later failure has revoked this generation."""
        recovery = self.parent.cluster.recovery
        if recovery is not None and recovery.generation != self._gen:
            from ..recovery.errors import RankFailedError

            raise RankFailedError(
                recovery.dead_ranks,
                sim_time=self.parent.env.now,
                op=op,
                rank=self.parent.rank,
                peer=peer,
            )

    # -- point-to-point ---------------------------------------------------------
    def send(self, dst: int, nbytes: int, tag: int = 0, payload: Any = None):
        wdst = self.world_rank(dst)
        self._guard("send", peer=wdst)
        yield from self.parent._do_send(wdst, nbytes, self._tag(tag), payload)

    def recv(self, src: int = ANY_SOURCE, tag: int = ANY_TAG):
        wsrc = ANY_SOURCE if src == ANY_SOURCE else self.world_rank(src)
        self._guard("recv", peer=None if src == ANY_SOURCE else wsrc)
        wtag = ANY_TAG if tag == ANY_TAG else self._tag(tag)
        msg = yield from self.parent._do_recv(wsrc, wtag)
        return msg

    def isend(self, dst: int, nbytes: int, tag: int = 0, payload: Any = None):
        wdst = self.world_rank(dst)
        self._guard("isend", peer=wdst)
        return self.parent._do_isend(wdst, nbytes, self._tag(tag), payload)

    def irecv(self, src: int = ANY_SOURCE, tag: int = ANY_TAG):
        wsrc = ANY_SOURCE if src == ANY_SOURCE else self.world_rank(src)
        self._guard("irecv", peer=None if src == ANY_SOURCE else wsrc)
        wtag = ANY_TAG if tag == ANY_TAG else self._tag(tag)
        return self.parent._do_irecv(wsrc, wtag)

    def wait(self, req):
        value = yield from self.parent.wait(req)
        return value

    def waitall(self, reqs):
        values = yield from self.parent.waitall(reqs)
        return values

    def sendrecv(self, dst: int, send_bytes: int, src: int, tag: int = 0,
                 recv_tag: Optional[int] = None):
        rtag = tag if recv_tag is None else recv_tag
        req = self.irecv(src=src, tag=rtag)
        yield from self.send(dst, send_bytes, tag=tag)
        msg = yield from self.wait(req)
        return msg

    # -- compute ---------------------------------------------------------------
    def compute(self, flops: float = 0.0, bytes_moved: float = 0.0, seconds: float = 0.0):
        yield from self.parent.compute(
            flops=flops, bytes_moved=bytes_moved, seconds=seconds
        )

    # -- phase annotation -------------------------------------------------------
    def phase(self, name: str):
        """Named application-phase span (see :meth:`RankComm.phase`)."""
        return self.parent.phase(name)

    # -- collectives (software algorithms over the subgroup) --------------------
    def barrier(self):
        yield from _algos.dissemination_barrier(self)

    def bcast(self, nbytes: int, root: int = 0, dtype: str = "byte"):
        yield from _algos.binomial_bcast(self, nbytes, root)

    def reduce(self, nbytes: int, root: int = 0, dtype: str = "float64"):
        yield from _algos.binomial_reduce(self, nbytes, root)

    def allreduce(self, nbytes: int, dtype: str = "float64"):
        yield from _algos.software_allreduce(self, nbytes)

    def allgather(self, nbytes_per_rank: int):
        yield from _algos.ring_allgather(self, nbytes_per_rank)

    def alltoall(self, nbytes_per_pair: int):
        yield from _algos.pairwise_alltoall(self, nbytes_per_pair)

    def gather(self, nbytes_per_rank: int, root: int = 0):
        yield from _algos.binomial_gather(self, nbytes_per_rank, root)

    def scatter(self, nbytes_per_rank: int, root: int = 0):
        yield from _algos.binomial_scatter(self, nbytes_per_rank, root)


def split_by(comm: RankComm, color_fn, key_fn=None) -> SubComm:
    """MPI_Comm_split with an explicit shared color function.

    ``color_fn(world_rank) -> color`` is evaluated for every rank (it
    must be pure), sidestepping the coordination a real MPI performs::

        row = split_by(comm, lambda r: r // 4)        # rows of 4
        col = split_by(comm, lambda r: r % 4)         # columns
    """
    colors: Dict[int, List[int]] = {}
    for r in range(comm.size):
        colors.setdefault(color_fn(r), []).append(r)
    my_color = color_fn(comm.rank)
    group = colors[my_color]
    if key_fn is not None:
        group = sorted(group, key=key_fn)
    group_ids = {c: i for i, c in enumerate(sorted(colors, key=repr))}
    return SubComm(comm, group, group_ids[my_color])
