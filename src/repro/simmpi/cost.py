"""Analytic (LogGP-style) communication cost model.

Shares machine parameters with the discrete-event transport so that the
two levels of fidelity agree; tests cross-validate them at small scale
(see ``tests/simmpi/test_cross_validation.py``).  The analytic model is
what the figure-regeneration benches use at the paper's 8k–40k-rank
scales, where message-level simulation would be needlessly slow.

Collective formulas follow the standard algorithm menu (binomial
broadcast, recursive-doubling and Rabenseifner allreduce, ring
allgather, pairwise alltoall) with per-machine algorithm selection:
BlueGene machines offload broadcast/reduction to the collective tree
network for dtypes its ALU supports (paper Section I.A / Fig. 3).
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from ..machines.modes import Mode, ModeConfig, resolve_mode
from ..machines.specs import MachineSpec
from ..topology.barrier import BarrierNetwork, software_barrier_time
from ..topology.partition import allocate, Partition
from ..topology.torus import Torus3D
from ..topology.tree import TreeNetwork

__all__ = ["CostModel"]


class CostModel:
    """Communication/computation time estimates for one job configuration.

    Parameters
    ----------
    machine:
        Hardware description.
    mode:
        Execution mode (SMP/DUAL/VN or SN/VN).
    ranks:
        Number of MPI ranks in the job.
    partition:
        Node allocation; if omitted, one is allocated (quiet machine).
    rng:
        Randomness source for fragmented allocations.
    """

    def __init__(
        self,
        machine: MachineSpec,
        mode: Mode | str,
        ranks: int,
        partition: Optional[Partition] = None,
        rng: Optional[np.random.Generator] = None,
        utilization: float = 0.0,
    ) -> None:
        if ranks < 1:
            raise ValueError("ranks must be >= 1")
        self.machine = machine
        self.mode: ModeConfig = resolve_mode(machine, mode)
        self.ranks = ranks
        nodes = self.mode.nodes_for_ranks(ranks)
        if partition is None:
            partition = allocate(machine, nodes, rng=rng, utilization=utilization)
        elif partition.nodes < nodes:
            raise ValueError(
                f"partition has {partition.nodes} nodes but {nodes} are needed"
            )
        self.partition = partition
        self.nodes = nodes
        # Analytic torus over the partition shape (no engine -> no links).
        self._torus = Torus3D(partition.torus_shape, machine.torus)
        self._tree = (
            TreeNetwork(nodes, machine.tree) if machine.tree is not None else None
        )
        self._barrier = BarrierNetwork(nodes)

    # ------------------------------------------------------------------
    # building blocks
    # ------------------------------------------------------------------
    @property
    def avg_hops(self) -> float:
        """Mean route length in the partition, fragmentation-dilated."""
        return self.partition.effective_hops(self._torus.average_distance())

    @property
    def p2p_bandwidth(self) -> float:
        """Best-case single-message bandwidth for one rank, bytes/s.

        The minimum of the single-route link bandwidth and this rank's
        share of node injection bandwidth; degraded by background
        contention on fragmented allocations.
        """
        bw = min(
            self.machine.torus.single_stream_bandwidth,
            self.mode.injection_bw_per_task,
        )
        return bw / self.partition.contention_multiplier

    def shm_bandwidth(self) -> float:
        """Intra-node (shared-memory) transfer bandwidth, bytes/s.

        A copy through shared memory reads and writes each byte, so it
        moves at roughly half the node's STREAM rate.
        """
        return self.machine.node.memory.node_stream / 2.0

    def p2p_time(
        self,
        nbytes: float,
        hops: Optional[float] = None,
        intranode: bool = False,
    ) -> float:
        """One point-to-point message, send-start to receive-complete."""
        if nbytes < 0:
            raise ValueError("negative message size")
        mpi = self.machine.mpi
        if intranode:
            # Section I.A: peer tasks on a node communicate via shared
            # memory; lower latency, memory-bandwidth-limited.
            return 0.5 * mpi.latency + nbytes / self.shm_bandwidth()
        h = self.avg_hops if hops is None else self.partition.effective_hops(hops)
        t = (
            mpi.send_overhead
            + mpi.latency
            + h * self.machine.torus.hop_latency
            + nbytes / self.p2p_bandwidth
            + mpi.recv_overhead
        )
        if nbytes > mpi.eager_threshold:
            t += mpi.rendezvous_overhead
        return t

    def pingpong_time(self, nbytes: float, hops: Optional[float] = None) -> float:
        """Round-trip time of a ping-pong with ``nbytes`` payloads."""
        return 2.0 * self.p2p_time(nbytes, hops=hops)

    # ------------------------------------------------------------------
    # HPCC-style network figures (Table 2)
    # ------------------------------------------------------------------
    def random_ring_latency(self) -> float:
        """Mean latency of 8-byte messages around a random ring."""
        return self.p2p_time(8.0)

    def random_ring_bandwidth(self) -> float:
        """Per-rank sustained bandwidth under random-ring traffic, bytes/s.

        Classic saturation bound for uniform random traffic on a torus:
        each node's router carries its own plus transit traffic, so the
        sustainable injection rate is the aggregate *link* bandwidth
        divided by the mean route length — separately capped by the
        node's injection limit (HyperTransport on the XTs).  Shared
        among the node's tasks.  This is what makes the XT a
        "high-bandwidth" network and the BG/P a "low-latency" one in
        the paper's Table 2 discussion.
        """
        spec = self.machine.torus
        link_aggregate = spec.link_bandwidth * spec.links_per_node * 2
        transit_limited = link_aggregate / max(1.0, self.avg_hops)
        per_node = min(transit_limited, spec.injection_bandwidth)
        return (
            per_node
            / self.mode.tasks_per_node
            / self.partition.contention_multiplier
        )

    # ------------------------------------------------------------------
    # collectives
    # ------------------------------------------------------------------
    def barrier_time(self) -> float:
        """One barrier over all ranks."""
        if self.machine.tree is not None:
            # Dedicated barrier/interrupt network (BlueGene).
            local = 0.2e-6 * (self.mode.tasks_per_node - 1)
            return self._barrier.barrier_time() + local
        return software_barrier_time(self.ranks, self.machine.mpi.latency)

    def bcast_time(self, nbytes: float, dtype: str = "byte") -> float:
        """MPI_Bcast of ``nbytes`` from one root to all ranks."""
        if nbytes < 0:
            raise ValueError("negative payload")
        if self._tree is not None:
            # Hardware broadcast down the tree network; the tasks of a
            # node then fan the payload out through shared memory.
            local = (
                nbytes / self.shm_bandwidth()
                if self.mode.tasks_per_node > 1
                else 0.0
            )
            return (
                self._tree.broadcast_time(int(nbytes))
                + self.machine.mpi.send_overhead
                + self.machine.mpi.recv_overhead
                + local
            )
        # Software binomial tree over the torus.
        rounds = max(1, math.ceil(math.log2(self.ranks))) if self.ranks > 1 else 0
        return rounds * self.p2p_time(nbytes)

    def reduce_time(self, nbytes: float, dtype: str = "float64") -> float:
        """MPI_Reduce of ``nbytes`` to a root."""
        if self._tree is not None and self._tree.spec.supports_reduce(dtype):
            local = self._local_combine_time(nbytes)
            return (
                self._tree.reduce_time(int(nbytes), dtype)
                + self.machine.mpi.send_overhead
                + self.machine.mpi.recv_overhead
                + local
            )
        rounds = max(1, math.ceil(math.log2(self.ranks))) if self.ranks > 1 else 0
        per_round = self.p2p_time(nbytes) + self._combine_flops_time(nbytes)
        return rounds * per_round

    def allreduce_time(self, nbytes: float, dtype: str = "float64") -> float:
        """MPI_Allreduce over all ranks.

        BlueGene + tree-supported dtype: hardware reduce + broadcast
        (paper Fig. 3a/b: the double-precision path).  Otherwise the
        better of recursive doubling (latency-optimal) and Rabenseifner
        reduce-scatter/allgather (bandwidth-optimal).
        """
        if self.ranks == 1:
            return self._combine_flops_time(nbytes)
        if self._tree is not None and self._tree.spec.supports_reduce(dtype):
            local = self._local_combine_time(nbytes)
            return (
                self._tree.allreduce_time(int(nbytes), dtype)
                + self.machine.mpi.send_overhead
                + self.machine.mpi.recv_overhead
                + local
            )
        return self._software_allreduce_time(nbytes)

    def _software_allreduce_time(self, nbytes: float) -> float:
        """Torus-based allreduce, same algorithm switch as the DES layer."""
        from .collectives import ALLREDUCE_RD_THRESHOLD

        p = self.ranks
        rounds = math.ceil(math.log2(p))
        if nbytes <= ALLREDUCE_RD_THRESHOLD:
            # Recursive doubling: full payload every round.
            return rounds * (
                self.p2p_time(nbytes) + self._combine_flops_time(nbytes)
            )
        # Rabenseifner: reduce-scatter (halving payloads) + allgather
        # (doubling payloads); sum the per-round point-to-point costs so
        # the estimate matches the message-level algorithm.
        total = 0.0
        chunk = nbytes
        for _ in range(rounds):
            chunk /= 2
            total += self.p2p_time(chunk) + self._combine_flops_time(chunk)
        for _ in range(rounds):
            total += self.p2p_time(chunk)
            chunk *= 2
        return total

    def allgather_time(self, nbytes_per_rank: float) -> float:
        """MPI_Allgather, ring algorithm: p-1 shifts of the payload."""
        if self.ranks == 1:
            return 0.0
        return (self.ranks - 1) * self.p2p_time(nbytes_per_rank, hops=1.0)

    def alltoall_time(self, nbytes_per_pair: float) -> float:
        """MPI_Alltoall with ``nbytes_per_pair`` to every other rank.

        Bounded by the slower of per-rank injection and the partition's
        bisection bandwidth, plus per-message overheads for the p-1
        exchange rounds.
        """
        p = self.ranks
        if p == 1:
            return 0.0
        # Pairwise exchange (what the DES layer runs for mid/large
        # payloads): p-1 sequential sendrecv rounds.
        pairwise = (p - 1) * self.p2p_time(nbytes_per_pair)
        # Bruck algorithm for small payloads: ceil(log2 p) rounds, each
        # carrying half the aggregate payload — what production MPIs
        # switch to when latency would dominate.
        rounds = math.ceil(math.log2(p))
        bruck = rounds * self.p2p_time(nbytes_per_pair * p / 2.0)
        # Never faster than the bisection allows: half the traffic
        # crosses the worst-case cut in each direction.
        cross = (p * p / 4.0) * nbytes_per_pair
        bis_bw = (
            self._torus.bisection_bandwidth()
            / self.partition.contention_multiplier
        )
        return max(min(pairwise, bruck), cross / bis_bw)

    def gather_time(self, nbytes_per_rank: float) -> float:
        """MPI_Gather: binomial tree, payload doubling toward the root.

        Critical path: one latency per round plus the full (p-1)-rank
        payload through the root's link.
        """
        p = self.ranks
        if p == 1:
            return 0.0
        rounds = math.ceil(math.log2(p))
        return rounds * self.p2p_time(0.0) + (
            (p - 1) * nbytes_per_rank / self.p2p_bandwidth
        )

    def scatter_time(self, nbytes_per_rank: float) -> float:
        """MPI_Scatter: the gather path in reverse (same cost)."""
        return self.gather_time(nbytes_per_rank)

    def reduce_scatter_time(self, nbytes_total: float) -> float:
        """MPI_Reduce_scatter of a ``nbytes_total`` vector."""
        p = self.ranks
        if p == 1:
            return self._combine_flops_time(nbytes_total)
        rounds = math.ceil(math.log2(p))
        return (
            rounds * self.p2p_time(0.0)
            + ((p - 1) / p) * nbytes_total / self.p2p_bandwidth
            + self._combine_flops_time(nbytes_total)
        )

    # ------------------------------------------------------------------
    # computation helpers
    # ------------------------------------------------------------------
    def _combine_flops_time(self, nbytes: float) -> float:
        """Time for one rank to combine ``nbytes`` of reduction operands."""
        elems = nbytes / 8.0
        # Reduction combine is memory-streaming work, not peak flops.
        bw = self.mode.stream_bw_per_task
        return 3.0 * nbytes / bw if bw > 0 else elems / self.machine.node.core.peak_flops

    def _local_combine_time(self, nbytes: float) -> float:
        """Pre-combine of the node's task contributions before the tree.

        The node leader streams the peers' vectors at full node memory
        bandwidth (the other tasks are blocked in the collective, so no
        bandwidth sharing applies).
        """
        extra = self.mode.tasks_per_node - 1
        if extra <= 0:
            return 0.0
        return extra * 3.0 * nbytes / self.machine.node.memory.node_stream

    def compute_time(self, flops: float, bytes_moved: float = 0.0) -> float:
        """Roofline time for a per-rank compute region.

        The slower of the flop-limited and memory-limited times, using
        the task's share of node resources for the current mode.
        """
        if flops < 0 or bytes_moved < 0:
            raise ValueError("work quantities must be non-negative")
        peak = self.mode.peak_flops_per_task
        t_flops = flops / peak if peak > 0 else 0.0
        bw = self.mode.stream_bw_per_task
        t_mem = bytes_moved / bw if bw > 0 else 0.0
        return max(t_flops, t_mem)
