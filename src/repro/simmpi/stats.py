"""Communication statistics and tracing for simulated runs.

Observes a :class:`~repro.simmpi.comm.Cluster`'s transport with
counters a performance analyst would want from a real run:
message-size histograms, per-pair traffic matrices, link utilisation
summaries, and a compact event trace.  This is the kind of
instrumentation the paper's authors used (the IBM HPC Toolkit of
reference [15]) to attribute application time to the networks.

.. deprecated::
    :func:`attach_stats` predates the unified observability layer and
    is kept as a thin shim over the transport's supported send hook.
    New code should use :mod:`repro.obs` (``cluster.run(program,
    trace=True)``), which subsumes these counters and adds spans,
    per-link telemetry, and exporters.
"""

from __future__ import annotations

import math
import warnings
from collections import Counter, defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from .comm import Cluster

__all__ = ["CommStats", "attach_stats"]


@dataclass
class TraceEvent:
    """One send, as recorded by the tracer."""

    time: float
    src: int
    dst: int
    nbytes: int
    tag: int


@dataclass
class CommStats:
    """Aggregated communication statistics of one simulated run."""

    messages: int = 0
    bytes_total: int = 0
    #: message count per power-of-two size bucket (log2 of bytes, -1 for 0)
    size_histogram: Counter = field(default_factory=Counter)
    #: (src, dst) -> bytes
    traffic_matrix: Dict[Tuple[int, int], int] = field(
        default_factory=lambda: defaultdict(int)
    )
    trace: List[TraceEvent] = field(default_factory=list)
    #: cap on stored trace events (statistics keep accumulating)
    trace_limit: int = 10000
    #: events NOT stored in :attr:`trace` because the cap was hit; a
    #: nonzero value means the trace is truncated (the aggregate
    #: counters above still cover every message)
    dropped: int = 0

    def record(self, time: float, src: int, dst: int, nbytes: int, tag: int) -> None:
        self.messages += 1
        self.bytes_total += nbytes
        bucket = -1 if nbytes == 0 else int(math.log2(nbytes))
        self.size_histogram[bucket] += 1
        self.traffic_matrix[(src, dst)] += nbytes
        if len(self.trace) < self.trace_limit:
            self.trace.append(TraceEvent(time, src, dst, nbytes, tag))
        else:
            self.dropped += 1

    # -- analysis -----------------------------------------------------------
    def mean_message_bytes(self) -> float:
        return self.bytes_total / self.messages if self.messages else 0.0

    def heaviest_pairs(self, n: int = 5) -> List[Tuple[Tuple[int, int], int]]:
        """The n most-communicating (src, dst) pairs."""
        return sorted(self.traffic_matrix.items(), key=lambda kv: -kv[1])[:n]

    def rank_volume(self, rank: int) -> Tuple[int, int]:
        """(bytes sent, bytes received) for one rank."""
        sent = sum(v for (s, _d), v in self.traffic_matrix.items() if s == rank)
        recv = sum(v for (_s, d), v in self.traffic_matrix.items() if d == rank)
        return sent, recv

    def summary(self) -> str:
        """A human-readable digest."""
        lines = [
            f"messages: {self.messages}",
            f"bytes:    {self.bytes_total}",
            f"mean msg: {self.mean_message_bytes():.1f} B",
            "size histogram (log2-byte buckets):",
        ]
        for bucket in sorted(self.size_histogram):
            label = "0B" if bucket == -1 else f"2^{bucket}"
            lines.append(f"  {label:>6}: {self.size_histogram[bucket]}")
        if self.dropped:
            lines.append(
                f"trace:    TRUNCATED — {self.dropped} event(s) dropped past "
                f"the {self.trace_limit}-event limit"
            )
        return "\n".join(lines)


def attach_stats(cluster: Cluster, trace_limit: int = 10000) -> CommStats:
    """Instrument a cluster's transport; returns the live stats object.

    Every subsequent send on the cluster is recorded.  Idempotent:
    attaching a second time returns the already-attached recorder
    (``trace_limit`` is then ignored) instead of layering two.

    .. deprecated::
        Thin shim over ``Transport.add_send_hook``; prefer the unified
        tracer — ``cluster.run(program, trace=True)`` — whose metrics
        registry subsumes these counters (see ``docs/observability.md``).
    """
    transport = cluster.transport
    existing = getattr(transport, "_comm_stats", None)
    if existing is not None:
        return existing
    warnings.warn(
        "attach_stats() is deprecated; use the repro.obs tracer "
        "(cluster.run(program, trace=True)) instead",
        DeprecationWarning,
        stacklevel=2,
    )
    stats = CommStats(trace_limit=trace_limit)

    def record_send(
        src: int, dst: int, nbytes: int, tag: int, start: float, _end: float
    ) -> None:
        stats.record(start, src, dst, nbytes, tag)

    transport.add_send_hook(record_send)
    transport._comm_stats = stats
    return stats
