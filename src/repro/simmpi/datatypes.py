"""Datatype bookkeeping for the simulated MPI layer."""

from __future__ import annotations

from typing import Dict

__all__ = ["DTYPE_SIZES", "bytes_of", "FLOAT32", "FLOAT64", "INT32", "INT64"]

FLOAT32 = "float32"
FLOAT64 = "float64"
INT32 = "int32"
INT64 = "int64"

#: Size in bytes of each supported element type.
DTYPE_SIZES: Dict[str, int] = {
    FLOAT32: 4,
    FLOAT64: 8,
    INT32: 4,
    INT64: 8,
    "float": 4,  # the IMB benchmark's MPI_FLOAT (Section II.B.2)
    "double": 8,
    "int": 4,
    "byte": 1,
}


def bytes_of(count: int, dtype: str = FLOAT64) -> int:
    """Payload size of ``count`` elements of ``dtype``."""
    if count < 0:
        raise ValueError(f"negative element count: {count}")
    try:
        return count * DTYPE_SIZES[dtype]
    except KeyError:
        raise KeyError(
            f"unknown dtype {dtype!r}; known: {sorted(DTYPE_SIZES)}"
        ) from None
