"""The simulated cluster and per-rank communicator.

:class:`Cluster` assembles everything needed to run an MPI program on a
simulated machine: a node partition, the torus (with contended links),
the collective tree / barrier networks where the machine has them, a
process mapping, and the analytic :class:`~repro.simmpi.cost.CostModel`
sharing the same parameters.

A *program* is a generator function ``program(comm, *args)`` executed
once per rank; ``comm`` is a :class:`RankComm` whose operations are
yielded from::

    def program(comm):
        if comm.rank == 0:
            yield from comm.send(1, nbytes=1024)
        elif comm.rank == 1:
            msg = yield from comm.recv(src=0)
        yield from comm.barrier()
        return comm.now

    cluster = Cluster(BGP, ranks=2, mode="VN")
    result = cluster.run(program)
    print(result.elapsed)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from ..machines.modes import Mode, ModeConfig, resolve_mode
from ..machines.specs import MachineSpec
from ..simengine import Engine, Event, Process
from ..topology.barrier import BarrierNetwork
from ..topology.mapping import Mapping
from ..topology.partition import allocate, Partition
from ..topology.torus import Torus3D
from ..topology.tree import TreeNetwork
from . import collectives as _algos
from .cost import CostModel
from .p2p import ANY_SOURCE, ANY_TAG, ReliabilityPolicy, Transport
from .reqs import Request

__all__ = [
    "Cluster",
    "RankComm",
    "ClusterResult",
    "ReliabilityPolicy",
    "ANY_SOURCE",
    "ANY_TAG",
]


@dataclass
class ClusterResult:
    """Outcome of one :meth:`Cluster.run`."""

    elapsed: float
    returns: List[Any]
    messages: int
    bytes_sent: int
    #: the run's :class:`~repro.obs.Tracer` when tracing was enabled
    #: (``Cluster.run(..., trace=True)`` or an ambient ``obs.tracing``
    #: context), else ``None``
    trace: Optional[Any] = None
    #: the run's :class:`~repro.faults.FaultStats` when a fault plan or
    #: injector was supplied to :meth:`Cluster.run`, else ``None``
    faults: Optional[Any] = None
    #: the run's :class:`~repro.recovery.RecoveryRuntime` when a
    #: recovery policy was supplied to :meth:`Cluster.run`, else
    #: ``None``; its ``times()`` give the clean/lost/rework/overhead
    #: decomposition of ``elapsed``
    recovery: Optional[Any] = None
    #: the run's :class:`~repro.perf.HostProfiler` when host
    #: self-profiling was enabled (``Cluster.run(..., profile=True)``
    #: or an ambient ``repro.perf.profiling`` context), else ``None``
    profile: Optional[Any] = None

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<ClusterResult elapsed={self.elapsed:.6g}s "
            f"messages={self.messages} bytes={self.bytes_sent}>"
        )


class _OpSync:
    """Rendezvous for one hardware-collective invocation."""

    __slots__ = ("remaining", "event", "kind")

    def __init__(self, env: Engine, n: int, kind: str) -> None:
        self.remaining = n
        self.event = Event(env)
        self.kind = kind


class Cluster:
    """A job: machine + mode + partition + networks + rank programs."""

    def __init__(
        self,
        machine: MachineSpec,
        ranks: int,
        mode: Mode | str = "SMP",
        mapping: str = "XYZT",
        env: Optional[Engine] = None,
        partition: Optional[Partition] = None,
        rng: Optional[np.random.Generator] = None,
        utilization: float = 0.0,
        adaptive_routing: bool = False,
        reliability: Optional[ReliabilityPolicy] = None,
    ) -> None:
        if ranks < 1:
            raise ValueError("ranks must be >= 1")
        self.machine = machine
        self.mode: ModeConfig = resolve_mode(machine, mode)
        self.ranks = ranks
        self.env = env if env is not None else Engine()
        nodes = self.mode.nodes_for_ranks(ranks)
        if partition is None:
            partition = allocate(machine, nodes, rng=rng, utilization=utilization)
        self.partition = partition
        self.nodes = nodes
        self.torus: Torus3D = partition.build_torus(self.env)
        self.tree: Optional[TreeNetwork] = (
            TreeNetwork(nodes, machine.tree, self.env)
            if machine.tree is not None
            else None
        )
        self.barrier_net: Optional[BarrierNetwork] = (
            BarrierNetwork(nodes, self.env) if machine.tree is not None else None
        )
        self.mapping = Mapping(
            mapping, partition.torus_shape, self.mode.tasks_per_node
        )
        if self.mapping.size < ranks:
            raise ValueError(
                f"mapping capacity {self.mapping.size} < {ranks} ranks "
                f"(shape {partition.torus_shape}, "
                f"{self.mode.tasks_per_node} tasks/node)"
            )
        self.transport = Transport(
            self.env, self.torus, self.mapping, machine,
            adaptive_routing=adaptive_routing,
            ranks=ranks,
            reliability=reliability,
        )
        #: analytic twin sharing the same partition (for cross-validation)
        self.cost = CostModel(machine, self.mode.mode, ranks, partition=partition)
        # Collective-synchronization state.
        self._op_counters: Dict[int, int] = {}
        self._op_syncs: Dict[int, _OpSync] = {}
        #: optional per-rank activity recorder (see simmpi.timeline)
        self.timeline = None
        #: active simulation sanitizer, if this run enabled one
        self.sanitizer = None
        #: attached :class:`~repro.obs.Tracer`, or ``None`` (untraced);
        #: every span hook guards on this before doing any work
        self.tracer = None
        #: attached :class:`~repro.faults.FaultInjector`, or ``None``
        self.fault_injector = None
        #: attached :class:`~repro.recovery.RecoveryRuntime`, or
        #: ``None`` (node failures then hang their victims instead of
        #: raising :class:`~repro.recovery.RankFailedError`)
        self.recovery = None

    # -- running programs ---------------------------------------------------
    def run(
        self,
        program: Callable,
        *args: Any,
        sanitize: bool = False,
        trace: bool = False,
        faults: Optional[Any] = None,
        recovery: Optional[Any] = None,
        budget: Optional[Any] = None,
        profile: Any = False,
    ) -> ClusterResult:
        """Execute ``program(comm, *args)`` on every rank to completion.

        With ``sanitize=True`` the run is watched by the simulation
        sanitizer (:mod:`repro.lint.sanitizer`): deadlocks raise a
        :class:`~repro.lint.sanitizer.DeadlockError` naming the blocked
        ranks and wait cycle, and leaked ``Request`` objects or sends
        that nobody received raise at program exit.

        With ``trace=True`` a fresh :class:`~repro.obs.Tracer` is
        attached (unless one already is) and returned on
        ``ClusterResult.trace``; an ambient :func:`repro.obs.tracing`
        context enables the same without the flag.

        ``faults`` injects failures: pass a
        :class:`~repro.faults.FaultPlan` (an injector is built for it)
        or a ready :class:`~repro.faults.FaultInjector`.  The run's
        fault statistics come back on ``ClusterResult.faults``.

        ``recovery`` arms ULFM-style failure semantics: pass a
        :class:`~repro.recovery.RecoveryPolicy` (a runtime is built for
        it) or a ready :class:`~repro.recovery.RecoveryRuntime`.  Node
        failures then kill their ranks and *revoke* the communicator —
        surviving ranks see :class:`~repro.recovery.RankFailedError`
        and may ``comm.shrink()`` onto the survivors; without recovery
        a node failure silently hangs its communication partners.

        ``budget`` (a :class:`~repro.simengine.Budget`) bounds the run;
        exceeding it raises :class:`~repro.simengine.BudgetExceeded`
        enriched with a partial-result summary.

        ``profile`` enables *host-side* self-profiling: pass ``True``
        for a fresh :class:`~repro.perf.HostProfiler` (or pass one,
        e.g. ``HostProfiler(cprofile=True)`` for hotspots); it comes
        back on ``ClusterResult.profile`` with spawn/drive phase
        timings, per-step engine host cost, and — when the run is also
        traced — host spans on an extra Chrome-trace pid.  An ambient
        :func:`repro.perf.profiling` context enables the same without
        the flag.  Disabled profiling costs nothing: no hook is
        installed and no host clock is read.

        Inside an ambient :func:`repro.pdes.sharding` context the run
        is served by the sharded parallel-DES engine instead, provided
        the configuration is one sharding reproduces byte-exactly;
        anything else (telemetry, faults, hardware collectives,
        cross-shard link contention, ...) falls back to this engine and
        is counted by :func:`repro.pdes.fallback_count`.
        """
        from ..pdes.ambient import active_shards

        ambient_shards = active_shards()
        if ambient_shards is not None and ambient_shards > 1:
            from ..pdes.runner import maybe_run_sharded

            sharded = maybe_run_sharded(
                self,
                program,
                args,
                ambient_shards,
                {
                    "sanitize": sanitize,
                    "trace": trace,
                    "faults": faults,
                    "recovery": recovery,
                    "budget": budget,
                    "profile": profile,
                },
            )
            if sharded is not None:
                return sharded
        if faults is not None and self.fault_injector is None:
            from ..faults import FaultInjector, FaultPlan

            injector = (
                FaultInjector(faults) if isinstance(faults, FaultPlan) else faults
            )
            injector.attach(self)
            self.fault_injector = injector
        if recovery is not None and self.recovery is None:
            from ..recovery import RecoveryPolicy, RecoveryRuntime

            runtime = (
                RecoveryRuntime(recovery)
                if isinstance(recovery, RecoveryPolicy)
                else recovery
            )
            runtime.attach(self)
        if self.tracer is None:
            from ..obs import active_tracer, Tracer

            ambient = active_tracer()
            if ambient is not None:
                ambient.attach(self)
            elif trace:
                Tracer().attach(self)
        prof = None
        ambient_prof = False
        if profile:
            from ..perf.profiler import HostProfiler

            prof = profile if isinstance(profile, HostProfiler) else HostProfiler()
        else:
            from ..perf.profiler import active_profiler

            prof = active_profiler()
            ambient_prof = prof is not None
        if prof is not None:
            prof.attach(self)
        san = None
        if sanitize:
            from ..lint.sanitizer import Sanitizer

            san = Sanitizer(self)
        self.sanitizer = san
        start = self.env.now
        try:
            procs: List[Process] = []
            if prof is not None:
                with prof.phase("spawn"):
                    for r in range(self.ranks):
                        comm = RankComm(self, r)
                        procs.append(self.env.process(program(comm, *args)))
            else:
                for r in range(self.ranks):
                    comm = RankComm(self, r)
                    procs.append(self.env.process(program(comm, *args)))
            if self.recovery is not None:
                self.recovery.begin_run(procs)
            done = self.env.all_of(procs)
            drive_phase = prof.phase("drive") if prof is not None else None
            if san is not None:
                san.attach(procs)
                try:
                    if drive_phase is not None:
                        with drive_phase:
                            self._drive(done, procs, budget)
                    else:
                        self._drive(done, procs, budget)
                finally:
                    san.detach()
            elif drive_phase is not None:
                with drive_phase:
                    self._drive(done, procs, budget)
            else:
                self._drive(done, procs, budget)
            if self.recovery is not None:
                self.recovery.finalize_success(self.env.now)
            result = ClusterResult(
                elapsed=self.env.now - start,
                returns=[p.value for p in procs],
                messages=self.transport.messages_sent,
                bytes_sent=self.transport.bytes_sent,
                trace=self.tracer,
                faults=(
                    self.fault_injector.finalize()
                    if self.fault_injector is not None
                    else None
                ),
                recovery=self.recovery,
                profile=prof,
            )
            if san is not None:
                # Let in-flight deliveries land, then check for leaks.
                san.drain()
                san.finish()
            return result
        finally:
            if prof is not None:
                prof.detach()
                # An ambient profiler spans several runs; its owner
                # (e.g. `repro bench profile`) finalizes it once.
                if not ambient_prof:
                    prof.finalize()
            self.sanitizer = None

    def _drive(self, done: Event, procs: List[Process], budget: Optional[Any]) -> None:
        """Run the engine to ``done``, decorating budget overruns."""
        if budget is None:
            self.env.run(done)
            return
        from ..simengine import BudgetExceeded

        try:
            self.env.run(done, budget=budget)
        except BudgetExceeded as exc:
            alive = sum(1 for p in procs if p.is_alive)
            raise exc.with_detail(
                f"cluster partial result: {alive}/{self.ranks} rank(s) "
                f"still running, {self.transport.messages_sent} message(s) "
                f"and {self.transport.bytes_sent} B sent"
            ) from None

    # -- hardware-collective synchronisation ---------------------------------
    def _next_sync(self, rank: int, kind: str) -> _OpSync:
        recovery = self.recovery
        if recovery is not None and recovery.dead_ranks:
            # A world hardware collective can never complete once ranks
            # have died: the tree/barrier networks span the partition.
            from ..recovery.errors import RankFailedError

            raise RankFailedError(
                recovery.dead_ranks,
                sim_time=self.env.now,
                op=f"collective {kind}",
                rank=rank,
            )
        idx = self._op_counters.get(rank, 0)
        self._op_counters[rank] = idx + 1
        sync = self._op_syncs.get(idx)
        if sync is None:
            sync = self._op_syncs[idx] = _OpSync(self.env, self.ranks, kind)
        elif sync.kind != kind:
            raise RuntimeError(
                f"collective mismatch at op {idx}: rank {rank} called "
                f"{kind!r} but others called {sync.kind!r}"
            )
        return sync


class _RankPhase:
    """Context manager behind :meth:`RankComm.phase`."""

    __slots__ = ("comm", "name", "_t0")

    def __init__(self, comm: "RankComm", name: str) -> None:
        self.comm = comm
        self.name = name
        self._t0 = 0.0

    def __enter__(self) -> "_RankPhase":
        if self.comm.cluster.tracer is not None:
            self._t0 = self.comm.env.now
        return self

    def __exit__(self, exc_type, _exc, _tb) -> bool:
        tracer = self.comm.cluster.tracer
        if tracer is not None and exc_type is None:
            tracer.complete(
                self.comm.rank, self.name, self._t0, self.comm.env.now, cat="phase"
            )
        return False


class RankComm:
    """Per-rank communicator handle (the ``comm`` of a rank program)."""

    __slots__ = ("cluster", "rank")

    def __init__(self, cluster: Cluster, rank: int) -> None:
        if not 0 <= rank < cluster.ranks:
            raise ValueError(f"rank {rank} outside [0, {cluster.ranks})")
        self.cluster = cluster
        self.rank = rank

    # -- introspection -------------------------------------------------------
    @property
    def size(self) -> int:
        return self.cluster.ranks

    @property
    def env(self) -> Engine:
        return self.cluster.env

    @property
    def now(self) -> float:
        return self.cluster.env.now

    @property
    def machine(self) -> MachineSpec:
        return self.cluster.machine

    def node_coords(self) -> Tuple[int, int, int]:
        """Torus coordinates of the node hosting this rank."""
        return self.cluster.mapping.node_of(self.rank)

    # -- recovery gate ---------------------------------------------------------
    def _guard(self, op: str, peer: Optional[int] = None) -> None:
        """ULFM revocation check at operation entry.

        Once any rank has died, the world communicator is revoked:
        every new operation on it raises
        :class:`~repro.recovery.RankFailedError` (survivors must
        ``agree()``/``shrink()`` onto a live-rank communicator or be
        restarted from a checkpoint).  A no-op without recovery armed.
        """
        recovery = self.cluster.recovery
        if recovery is not None and recovery.dead_ranks:
            from ..recovery.errors import RankFailedError

            raise RankFailedError(
                recovery.dead_ranks,
                sim_time=self.env.now,
                op=op,
                rank=self.rank,
                peer=peer,
            )

    def _require_recovery(self, op: str):
        recovery = self.cluster.recovery
        if recovery is None:
            raise RuntimeError(
                f"comm.{op}() needs an armed recovery runtime — run under "
                "Cluster.run(recovery=RecoveryPolicy(...))"
            )
        return recovery

    # -- ULFM recovery collectives ---------------------------------------------
    def agree(self):
        """Agree on the failed-rank set with every other survivor.

        Generator; returns the agreed ``frozenset`` of dead world
        ranks.  The simulated analogue of ``MPIX_Comm_agree``: it
        completes only once every live rank has entered (survivors get
        there by catching :class:`~repro.recovery.RankFailedError`).
        """
        runtime = self._require_recovery("agree")
        dead, _resume = yield from runtime.agreement(self)
        return dead

    def shrink(self):
        """Build the deterministic live-rank sub-communicator.

        Generator; agrees on the failure set (see :meth:`agree`), pays
        one small software allreduce over the survivors as the
        agreement cost, and returns a
        :class:`~repro.simmpi.subcomm.SubComm` over the live ranks —
        the simulated analogue of ``MPIX_Comm_shrink``.
        """
        runtime = self._require_recovery("shrink")
        sub, _resume = yield from runtime.shrink(self)
        return sub

    # -- point-to-point --------------------------------------------------------
    def send(self, dst: int, nbytes: int, tag: int = 0, payload: Any = None):
        """Blocking send (generator; drive with ``yield from``)."""
        self._guard("send", peer=dst)
        yield from self._do_send(dst, nbytes, tag, payload)

    def _do_send(self, dst: int, nbytes: int, tag: int, payload: Any):
        self._check_peer(dst)
        yield from self.cluster.transport.send(self.rank, dst, nbytes, tag, payload)

    def recv(self, src: int = ANY_SOURCE, tag: int = ANY_TAG):
        """Blocking receive; returns the :class:`Message`."""
        self._guard("recv", peer=None if src == ANY_SOURCE else src)
        msg = yield from self._do_recv(src, tag)
        return msg

    def _do_recv(self, src: int, tag: int):
        if src != ANY_SOURCE:
            self._check_peer(src)
        tracer = self.cluster.tracer
        t0 = self.env.now if tracer is not None else 0.0
        ev = self.cluster.transport.post_recv(self.rank, src, tag)
        msg = yield ev
        yield self.env.timeout(self.machine.mpi.recv_overhead)
        if tracer is not None:
            tracer.complete(
                self.rank,
                "recv",
                t0,
                self.env.now,
                cat="p2p",
                args={"src": msg.src, "nbytes": msg.nbytes, "tag": msg.tag},
            )
        return msg

    def isend(self, dst: int, nbytes: int, tag: int = 0, payload: Any = None) -> Request:
        """Nonblocking send; completes at eager-injection/rendezvous end."""
        self._guard("isend", peer=dst)
        return self._do_isend(dst, nbytes, tag, payload)

    def _do_isend(self, dst: int, nbytes: int, tag: int, payload: Any) -> Request:
        self._check_peer(dst)
        proc = self.env.process(
            self.cluster.transport.send(self.rank, dst, nbytes, tag, payload)
        )
        return self._track(Request(kind="send", completion=proc, peer=dst, tag=tag))

    def irecv(self, src: int = ANY_SOURCE, tag: int = ANY_TAG) -> Request:
        """Nonblocking receive; posted immediately (matching order!)."""
        self._guard("irecv", peer=None if src == ANY_SOURCE else src)
        return self._do_irecv(src, tag)

    def _do_irecv(self, src: int, tag: int) -> Request:
        if src != ANY_SOURCE:
            self._check_peer(src)
        ev = self.cluster.transport.post_recv(self.rank, src, tag)
        return self._track(
            Request(
                kind="recv",
                completion=ev,
                overhead=self.machine.mpi.recv_overhead,
                peer=None if src == ANY_SOURCE else src,
                tag=None if tag == ANY_TAG else tag,
            )
        )

    def _track(self, req: Request) -> Request:
        san = self.cluster.sanitizer
        if san is not None:
            san.track_request(self.rank, req)
        return req

    def wait(self, req: Request):
        """Wait for one request; returns its result (Message for recvs)."""
        req._waited = True
        value = yield req.completion
        if req.overhead > 0:
            yield self.env.timeout(req.overhead)
        return value

    def waitall(self, reqs: List[Request]):
        """Wait for all requests; returns their results in order."""
        for r in reqs:
            r._waited = True
        values = yield self.env.all_of([r.completion for r in reqs])
        overhead = sum(r.overhead for r in reqs)
        if overhead > 0:
            yield self.env.timeout(overhead)
        return values

    def sendrecv(
        self,
        dst: int,
        send_bytes: int,
        src: int,
        tag: int = 0,
        recv_tag: Optional[int] = None,
    ):
        """Simultaneous send+receive (deadlock-free).

        Matches MPI_Sendrecv: the receive is posted before the send
        starts, both complete before returning.
        """
        rtag = tag if recv_tag is None else recv_tag
        req = self.irecv(src=src, tag=rtag)
        yield from self.send(dst, send_bytes, tag=tag)
        msg = yield from self.wait(req)
        return msg

    def _check_peer(self, peer: int) -> None:
        if not 0 <= peer < self.size:
            raise ValueError(f"peer rank {peer} outside [0, {self.size})")

    # -- phase annotation -----------------------------------------------------
    def phase(self, name: str):
        """Named application-phase span (``with comm.phase("baroclinic"):``).

        The ``with`` body may contain ``yield``/``yield from`` as usual;
        on exit the phase is recorded as one span on this rank's trace
        track.  Without an attached tracer this is a no-op — the paper's
        per-phase attribution (POP baroclinic/barotropic, CAM dynamics/
        physics) hangs off these markers.
        """
        return _RankPhase(self, name)

    # -- computation --------------------------------------------------------------
    def compute(self, flops: float = 0.0, bytes_moved: float = 0.0, seconds: float = 0.0):
        """Occupy this rank with computation.

        Either give raw work (``flops`` and/or ``bytes_moved``; a
        roofline picks the binding resource for the current mode) or an
        explicit duration in ``seconds``.
        """
        t = self.cluster.cost.compute_time(flops, bytes_moved) + seconds
        if t > 0:
            start = self.env.now
            yield self.env.timeout(t)
            if self.cluster.timeline is not None:
                self.cluster.timeline.record(
                    self.rank, start, self.env.now, "compute"
                )
            tracer = self.cluster.tracer
            if tracer is not None:
                tracer.complete(self.rank, "compute", start, self.env.now, cat="compute")

    def _collective_span(
        self, tracer, name: str, t0: float, algorithm: str, nbytes: Optional[int] = None
    ) -> None:
        """Record one finished collective (caller guards ``tracer``)."""
        args: Dict[str, Any] = {"algorithm": algorithm}
        if nbytes is not None:
            args["nbytes"] = nbytes
        tracer.complete(
            self.rank, name, t0, self.env.now, cat="collective", args=args
        )

    # -- collectives -------------------------------------------------------------
    def barrier(self):
        """MPI_Barrier: hardware barrier network on BG, dissemination on XT."""
        cl = self.cluster
        tracer = cl.tracer
        t0 = self.env.now if tracer is not None else 0.0
        if cl.barrier_net is not None:
            alg = "hw-barrier"
            sync = cl._next_sync(self.rank, "barrier")
            sync.remaining -= 1
            if sync.remaining == 0:
                wait_ev = cl.barrier_net.wait()
                wait_ev.callbacks.append(lambda _e, s=sync: s.event.succeed())
            yield sync.event
        else:
            alg = "dissemination"
            yield from _algos.dissemination_barrier(self)
        if tracer is not None:
            self._collective_span(tracer, "barrier", t0, alg)

    def bcast(self, nbytes: int, root: int = 0, dtype: str = "byte"):
        """MPI_Bcast: tree-network broadcast on BG, binomial on XT."""
        cl = self.cluster
        tracer = cl.tracer
        t0 = self.env.now if tracer is not None else 0.0
        if cl.tree is not None:
            alg = "tree"
            mpi = self.machine.mpi
            yield self.env.timeout(mpi.send_overhead if self.rank == root else 0.0)
            sync = cl._next_sync(self.rank, "bcast")
            sync.remaining -= 1
            if sync.remaining == 0:
                dur = cl.tree.broadcast_time(nbytes)
                if cl.mode.tasks_per_node > 1:
                    dur += nbytes / cl.transport.shm_bandwidth()
                occ = cl.tree.occupy(dur)
                occ.callbacks.append(lambda _e, s=sync: s.event.succeed())
            yield sync.event
            yield self.env.timeout(mpi.recv_overhead)
        else:
            alg = "binomial"
            yield from _algos.binomial_bcast(self, nbytes, root)
        if tracer is not None:
            self._collective_span(tracer, "bcast", t0, alg, nbytes)

    def reduce(self, nbytes: int, root: int = 0, dtype: str = "float64"):
        """MPI_Reduce: tree network when the ALU supports the dtype."""
        cl = self.cluster
        tracer = cl.tracer
        t0 = self.env.now if tracer is not None else 0.0
        if cl.tree is not None and cl.tree.spec.supports_reduce(dtype):
            alg = "tree"
            yield from self._tree_reduction(nbytes, dtype, allreduce=False)
        else:
            alg = "binomial"
            yield from _algos.binomial_reduce(self, nbytes, root)
        if tracer is not None:
            self._collective_span(tracer, "reduce", t0, alg, nbytes)

    def allreduce(self, nbytes: int, dtype: str = "float64"):
        """MPI_Allreduce.

        BG + hardware dtype: tree reduce+broadcast (the fast
        double-precision path of paper Fig. 3a/b).  Otherwise software
        recursive doubling over the torus.
        """
        cl = self.cluster
        tracer = cl.tracer
        t0 = self.env.now if tracer is not None else 0.0
        if cl.tree is not None and cl.tree.spec.supports_reduce(dtype):
            alg = "tree"
            yield from self._tree_reduction(nbytes, dtype, allreduce=True)
        else:
            alg = (
                "recursive-doubling"
                if nbytes <= _algos.ALLREDUCE_RD_THRESHOLD
                else "rabenseifner"
            )
            yield from _algos.software_allreduce(self, nbytes)
        if tracer is not None:
            self._collective_span(tracer, "allreduce", t0, alg, nbytes)

    def _tree_reduction(self, nbytes: int, dtype: str, allreduce: bool):
        cl = self.cluster
        mpi = self.machine.mpi
        yield self.env.timeout(mpi.send_overhead)
        # Tasks sharing a node pre-combine their contributions in memory
        # (same cost formula as the analytic model).
        local = cl.cost._local_combine_time(nbytes)
        if local > 0:
            yield self.env.timeout(local)
        kind = "allreduce" if allreduce else "reduce"
        sync = cl._next_sync(self.rank, kind)
        sync.remaining -= 1
        if sync.remaining == 0:
            dur = (
                cl.tree.allreduce_time(nbytes, dtype)
                if allreduce
                else cl.tree.reduce_time(nbytes, dtype)
            )
            occ = cl.tree.occupy(dur)
            occ.callbacks.append(lambda _e, s=sync: s.event.succeed())
        yield sync.event
        yield self.env.timeout(mpi.recv_overhead)

    def allgather(self, nbytes_per_rank: int):
        """MPI_Allgather (ring algorithm on all machines)."""
        tracer = self.cluster.tracer
        t0 = self.env.now if tracer is not None else 0.0
        yield from _algos.ring_allgather(self, nbytes_per_rank)
        if tracer is not None:
            self._collective_span(tracer, "allgather", t0, "ring", nbytes_per_rank)

    def reduce_scatter(self, nbytes_total: int):
        """MPI_Reduce_scatter (recursive halving)."""
        tracer = self.cluster.tracer
        t0 = self.env.now if tracer is not None else 0.0
        yield from _algos.recursive_halving_reduce_scatter(self, nbytes_total)
        if tracer is not None:
            self._collective_span(
                tracer, "reduce_scatter", t0, "recursive-halving", nbytes_total
            )

    def gather(self, nbytes_per_rank: int, root: int = 0):
        """MPI_Gather (binomial tree; payloads grow toward the root)."""
        tracer = self.cluster.tracer
        t0 = self.env.now if tracer is not None else 0.0
        yield from _algos.binomial_gather(self, nbytes_per_rank, root)
        if tracer is not None:
            self._collective_span(tracer, "gather", t0, "binomial", nbytes_per_rank)

    def scatter(self, nbytes_per_rank: int, root: int = 0):
        """MPI_Scatter (binomial tree; payloads shrink from the root)."""
        tracer = self.cluster.tracer
        t0 = self.env.now if tracer is not None else 0.0
        yield from _algos.binomial_scatter(self, nbytes_per_rank, root)
        if tracer is not None:
            self._collective_span(tracer, "scatter", t0, "binomial", nbytes_per_rank)

    def alltoall(self, nbytes_per_pair: int):
        """MPI_Alltoall (no tree offload exists).

        Algorithm choice matches the analytic model: Bruck when its
        round structure is estimated cheaper (small payloads), pairwise
        exchange otherwise.
        """
        tracer = self.cluster.tracer
        t0 = self.env.now if tracer is not None else 0.0
        alg = "pairwise"
        p = self.size
        if p > 1:
            import math as _math

            cost = self.cluster.cost
            pairwise_est = (p - 1) * cost.p2p_time(nbytes_per_pair)
            bruck_est = _math.ceil(_math.log2(p)) * cost.p2p_time(
                nbytes_per_pair * p / 2.0
            )
            if bruck_est < pairwise_est:
                alg = "bruck"
        if alg == "bruck":
            yield from _algos.bruck_alltoall(self, nbytes_per_pair)
        else:
            yield from _algos.pairwise_alltoall(self, nbytes_per_pair)
        if tracer is not None:
            self._collective_span(tracer, "alltoall", t0, alg, nbytes_per_pair)
