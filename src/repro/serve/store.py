"""The durable job queue: SQLite in WAL mode, one transaction per transition.

This is the crash-safety core of the campaign service.  Design rules:

* **Every state transition is a single transaction** (``BEGIN
  IMMEDIATE`` … ``COMMIT``), so a SIGKILL at any instant leaves the
  database at a transition boundary — never between "job marked done"
  and "lease cleared".
* **WAL + ``synchronous=FULL``**: a committed transition survives the
  process dying before the next line executes.  Readers (status
  requests) never block the dispatcher's writes.
* **Schema is versioned** via ``PRAGMA user_version``; opening a
  database from a newer schema fails loudly instead of corrupting it.
* **Submission is idempotent**: the primary key of a job row is its
  content-address (the campaign :func:`~repro.campaign.cache.cache_key`),
  so resubmitting the same work — same client retrying after a 429, four
  concurrent clients racing the same spec — collapses onto one row.
* **Leases carry fencing tokens**: every grant gets a fresh token, and
  every terminal transition must present the token it was granted.  A
  worker whose lease expired (missed heartbeats) can still finish its
  computation, but its attempt to commit the result is detected as
  stale and discarded — no duplicated side effects.

The store knows nothing about HTTP, workers, or retry policy; it is the
ledger.  :mod:`repro.serve.leases` applies policy on top of it.
"""

from __future__ import annotations

import json
import os
import pathlib
import sqlite3
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional, Union

from contextlib import contextmanager

from ..perf.hostclock import host_counter
from .protocol import JOB_STATES, TERMINAL_STATES

__all__ = ["SCHEMA_VERSION", "StoreError", "JobRow", "JobStore"]

#: Bump on any incompatible schema change; the store refuses databases
#: written by a *newer* schema and migrates (today: creates) older ones.
SCHEMA_VERSION = 1

_SCHEMA = """
CREATE TABLE IF NOT EXISTS jobs (
    seq            INTEGER PRIMARY KEY AUTOINCREMENT,
    key            TEXT NOT NULL UNIQUE,
    job_id         TEXT NOT NULL,
    experiment     TEXT NOT NULL,
    params         TEXT NOT NULL,
    state          TEXT NOT NULL,
    attempts       INTEGER NOT NULL DEFAULT 0,
    kills          INTEGER NOT NULL DEFAULT 0,
    not_before     REAL NOT NULL DEFAULT 0,
    lease_token    TEXT NOT NULL DEFAULT '',
    lease_worker   INTEGER NOT NULL DEFAULT -1,
    lease_deadline REAL NOT NULL DEFAULT 0,
    source         TEXT NOT NULL DEFAULT '',
    digest         TEXT NOT NULL DEFAULT '',
    artifact       TEXT NOT NULL DEFAULT '',
    error          TEXT NOT NULL DEFAULT '',
    error_type     TEXT NOT NULL DEFAULT '',
    classification TEXT NOT NULL DEFAULT '',
    backoff_s      TEXT NOT NULL DEFAULT '[]'
);
CREATE INDEX IF NOT EXISTS jobs_state ON jobs (state, not_before);
CREATE TABLE IF NOT EXISTS campaigns (
    id       TEXT PRIMARY KEY,
    name     TEXT NOT NULL,
    spec     TEXT NOT NULL,
    accepted INTEGER NOT NULL DEFAULT 1
);
CREATE TABLE IF NOT EXISTS campaign_jobs (
    campaign_id TEXT NOT NULL,
    key         TEXT NOT NULL,
    position    INTEGER NOT NULL,
    PRIMARY KEY (campaign_id, key)
);
CREATE TABLE IF NOT EXISTS chaos_fired (key TEXT PRIMARY KEY);
CREATE TABLE IF NOT EXISTS meta (key TEXT PRIMARY KEY, value TEXT NOT NULL);
"""


class StoreError(RuntimeError):
    """The job store cannot be opened or a transition is invalid."""


@dataclass
class JobRow:
    """One job as the ledger sees it (plain data, no live objects)."""

    key: str
    job_id: str
    experiment: str
    params: Dict[str, Any] = field(default_factory=dict)
    state: str = "queued"
    attempts: int = 0
    kills: int = 0
    not_before: float = 0.0
    lease_token: str = ""
    lease_worker: int = -1
    lease_deadline: float = 0.0
    source: str = ""
    digest: str = ""
    artifact: str = ""
    error: str = ""
    error_type: str = ""
    classification: str = ""
    backoff_s: List[float] = field(default_factory=list)

    @classmethod
    def _from_sql(cls, row: sqlite3.Row) -> "JobRow":
        return cls(
            key=row["key"],
            job_id=row["job_id"],
            experiment=row["experiment"],
            params=json.loads(row["params"]),
            state=row["state"],
            attempts=row["attempts"],
            kills=row["kills"],
            not_before=row["not_before"],
            lease_token=row["lease_token"],
            lease_worker=row["lease_worker"],
            lease_deadline=row["lease_deadline"],
            source=row["source"],
            digest=row["digest"],
            artifact=row["artifact"],
            error=row["error"],
            error_type=row["error_type"],
            classification=row["classification"],
            backoff_s=json.loads(row["backoff_s"]),
        )


class JobStore:
    """The SQLite-backed durable queue behind the campaign service.

    ``clock`` supplies host seconds (monotonic; the sanctioned
    :func:`~repro.perf.hostclock.host_counter` by default — on Linux its
    epoch is boot time, so ``not_before`` backoff stamps stay comparable
    across a restart of the server process).
    """

    def __init__(
        self,
        path: Union[str, pathlib.Path],
        clock: Callable[[], float] = host_counter,
    ) -> None:
        self.path = pathlib.Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.clock = clock
        self._token_seq = 0
        # check_same_thread=False: the store may be *built* on one
        # thread and then used from the server's event-loop thread
        # (start_background); after init, all access is single-threaded
        # by construction — routes and dispatcher share the loop.
        self._conn = sqlite3.connect(
            str(self.path), isolation_level=None, check_same_thread=False
        )
        self._conn.row_factory = sqlite3.Row
        cur = self._conn.cursor()
        cur.execute("PRAGMA journal_mode=WAL")
        cur.execute("PRAGMA synchronous=FULL")
        cur.execute("PRAGMA busy_timeout=5000")
        version = cur.execute("PRAGMA user_version").fetchone()[0]
        if version > SCHEMA_VERSION:
            self._conn.close()
            raise StoreError(
                f"{self.path}: schema version {version} is newer than this "
                f"code understands ({SCHEMA_VERSION}); refusing to touch it"
            )
        # executescript issues its own COMMIT, so no _txn() here; the
        # pragma write after it is atomic on its own.
        cur.executescript(_SCHEMA)
        cur.execute(f"PRAGMA user_version={SCHEMA_VERSION}")

    def close(self) -> None:
        self._conn.close()

    @contextmanager
    def _txn(self) -> Iterator[sqlite3.Cursor]:
        """One transition = one transaction (IMMEDIATE: writer lock now,
        so a transition never splits around a reader's snapshot)."""
        cur = self._conn.cursor()
        cur.execute("BEGIN IMMEDIATE")
        try:
            yield cur
        except BaseException:
            cur.execute("ROLLBACK")
            raise
        cur.execute("COMMIT")

    # -- submission ---------------------------------------------------------
    def submit(
        self,
        campaign_id: str,
        name: str,
        spec_doc: Dict[str, Any],
        rows: List[Dict[str, Any]],
    ) -> List[str]:
        """Admit one campaign's expanded jobs; idempotent by content key.

        ``rows`` carry ``key``/``job_id``/``experiment``/``params`` plus
        optionally ``state='done'`` + ``digest``/``artifact``/``source``
        for jobs already served by the result cache.  Returns one
        disposition per row, aligned: ``"accepted"`` (new queued row),
        ``"cache"`` (new row, already done via cache), or ``"dedup"``
        (row existed — submission folded onto it).  The whole admission
        is a single transaction: a SIGKILL mid-submit loses the entire
        campaign or none of it, never half.
        """
        dispositions: List[str] = []
        with self._txn() as cur:
            cur.execute(
                "INSERT OR IGNORE INTO campaigns (id, name, spec) VALUES (?, ?, ?)",
                (campaign_id, name, json.dumps(spec_doc, sort_keys=True)),
            )
            for position, row in enumerate(rows):
                existing = cur.execute(
                    "SELECT state FROM jobs WHERE key=?", (row["key"],)
                ).fetchone()
                if existing is not None:
                    dispositions.append("dedup")
                else:
                    state = row.get("state", "queued")
                    if state not in JOB_STATES:
                        raise StoreError(f"bad submit state {state!r}")
                    cur.execute(
                        "INSERT INTO jobs (key, job_id, experiment, params, "
                        "state, source, digest, artifact) "
                        "VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
                        (
                            row["key"],
                            row["job_id"],
                            row["experiment"],
                            json.dumps(row["params"], sort_keys=True),
                            state,
                            row.get("source", ""),
                            row.get("digest", ""),
                            row.get("artifact", ""),
                        ),
                    )
                    dispositions.append("cache" if state == "done" else "accepted")
                cur.execute(
                    "INSERT OR IGNORE INTO campaign_jobs "
                    "(campaign_id, key, position) VALUES (?, ?, ?)",
                    (campaign_id, row["key"], position),
                )
        return dispositions

    # -- leases -------------------------------------------------------------
    def acquire(self, worker: int, lease_ttl: float) -> Optional[JobRow]:
        """Lease the oldest eligible queued job, or ``None``.

        The SELECT and the UPDATE share one immediate transaction, so
        two dispatchers (or a dispatcher racing its own tick) can never
        lease the same row.  The fencing token is unique per grant.
        """
        now = self.clock()
        self._token_seq += 1
        token = f"{os.getpid()}:{self._token_seq}"
        with self._txn() as cur:
            row = cur.execute(
                "SELECT * FROM jobs WHERE state='queued' AND not_before<=? "
                "ORDER BY seq LIMIT 1",
                (now,),
            ).fetchone()
            if row is None:
                return None
            cur.execute(
                "UPDATE jobs SET state='leased', lease_token=?, lease_worker=?, "
                "lease_deadline=? WHERE key=?",
                (token, worker, now + lease_ttl, row["key"]),
            )
        job = JobRow._from_sql(row)
        job.state = "leased"
        job.lease_token = token
        job.lease_worker = worker
        job.lease_deadline = now + lease_ttl
        return job

    def mark_running(self, key: str, token: str) -> bool:
        with self._txn() as cur:
            cur.execute(
                "UPDATE jobs SET state='running' "
                "WHERE key=? AND lease_token=? AND state='leased'",
                (key, token),
            )
            return cur.rowcount == 1

    def heartbeat(self, keys_tokens: List[tuple], lease_ttl: float) -> int:
        """Extend the lease deadline of live (key, token) pairs."""
        if not keys_tokens:
            return 0
        deadline = self.clock() + lease_ttl
        extended = 0
        with self._txn() as cur:
            for key, token in keys_tokens:
                cur.execute(
                    "UPDATE jobs SET lease_deadline=? "
                    "WHERE key=? AND lease_token=? AND state IN "
                    "('leased', 'running')",
                    (deadline, key, token),
                )
                extended += cur.rowcount
        return extended

    def expired_leases(self) -> List[JobRow]:
        """Leases whose deadline passed without a heartbeat (read-only)."""
        now = self.clock()
        rows = self._conn.execute(
            "SELECT * FROM jobs WHERE state IN ('leased', 'running') "
            "AND lease_deadline < ? ORDER BY seq",
            (now,),
        ).fetchall()
        return [JobRow._from_sql(r) for r in rows]

    # -- transitions out of a lease -----------------------------------------
    def _fenced_update(
        self,
        cur: sqlite3.Cursor,
        key: str,
        token: str,
        sets: str,
        values: tuple,
    ) -> bool:
        """Token-fenced transition out of leased/running."""
        cur.execute(
            f"UPDATE jobs SET {sets}, lease_token='', lease_worker=-1, "
            "lease_deadline=0 "
            "WHERE key=? AND lease_token=? AND state IN ('leased', 'running')",
            values + (key, token),
        )
        return cur.rowcount == 1

    def complete(self, key: str, token: str, digest: str, artifact: str) -> bool:
        """Commit a successful result; False when the lease went stale.

        A stale commit (expired lease, job already requeued or finished
        by another grant) is *not* an error — the computation was
        deterministic, the artifact bytes are identical, the ledger
        simply keeps the earlier owner's word.
        """
        with self._txn() as cur:
            return self._fenced_update(
                cur,
                key,
                token,
                "state='done', source='computed', digest=?, artifact=?, "
                "attempts=attempts+1, error='', error_type='', classification=''",
                (digest, artifact),
            )

    def requeue_failure(
        self,
        key: str,
        token: str,
        classification: str,
        error: str,
        error_type: str,
        delay_s: float,
        add_kill: bool = False,
    ) -> bool:
        """One failed attempt, retried: back to queued with backoff."""
        with self._txn() as cur:
            row = cur.execute(
                "SELECT backoff_s FROM jobs WHERE key=? AND lease_token=?",
                (key, token),
            ).fetchone()
            if row is None:
                return False
            backoff = json.loads(row["backoff_s"]) + [delay_s]
            return self._fenced_update(
                cur,
                key,
                token,
                "state='queued', attempts=attempts+1, "
                f"kills=kills+{1 if add_kill else 0}, not_before=?, "
                "classification=?, error=?, error_type=?, backoff_s=?",
                (
                    self.clock() + delay_s,
                    classification,
                    error,
                    error_type,
                    json.dumps(backoff),
                ),
            )

    def finalize_failure(
        self,
        key: str,
        token: str,
        status: str,
        classification: str,
        error: str,
        error_type: str,
        add_kill: bool = False,
    ) -> bool:
        """One failed attempt, final: ``failed`` or ``quarantined``."""
        if status not in ("failed", "quarantined"):
            raise StoreError(f"finalize_failure: bad status {status!r}")
        with self._txn() as cur:
            return self._fenced_update(
                cur,
                key,
                token,
                "state=?, attempts=attempts+1, "
                f"kills=kills+{1 if add_kill else 0}, "
                "classification=?, error=?, error_type=?",
                (status, classification, error, error_type),
            )

    def release_innocent(self, key: str, token: str) -> bool:
        """Requeue a lease whose *host* failed (server restart, pool
        death not attributable to the job): no attempt consumed, no
        backoff — the job did nothing wrong."""
        with self._txn() as cur:
            return self._fenced_update(cur, key, token, "state='queued'", ())

    # -- restart recovery ---------------------------------------------------
    def recover(self) -> int:
        """Requeue every lease held when the previous process died.

        Called once at open: any ``leased``/``running`` row belongs to a
        dispatcher that no longer exists (the store is single-server by
        design), so the jobs go back to the queue with no attempt
        consumed — a server crash is never the job's fault.  Returns how
        many accepted jobs were recovered; none are ever lost.
        """
        with self._txn() as cur:
            cur.execute(
                "UPDATE jobs SET state='queued', lease_token='', "
                "lease_worker=-1, lease_deadline=0, not_before=0 "
                "WHERE state IN ('leased', 'running')"
            )
            return cur.rowcount

    # -- chaos persistence --------------------------------------------------
    def note_chaos_fired(self, key: str) -> None:
        """Durably record one fired injection (before it takes effect —
        a ``server_kill`` must not re-fire after the restart)."""
        with self._txn() as cur:
            cur.execute("INSERT OR IGNORE INTO chaos_fired (key) VALUES (?)", (key,))

    def chaos_fired_keys(self) -> List[str]:
        rows = self._conn.execute("SELECT key FROM chaos_fired ORDER BY key")
        return [r["key"] for r in rows.fetchall()]

    # -- meta ---------------------------------------------------------------
    def get_meta(self, key: str) -> Optional[str]:
        row = self._conn.execute(
            "SELECT value FROM meta WHERE key=?", (key,)
        ).fetchone()
        return None if row is None else row["value"]

    def set_meta(self, key: str, value: str) -> None:
        with self._txn() as cur:
            cur.execute(
                "INSERT INTO meta (key, value) VALUES (?, ?) "
                "ON CONFLICT(key) DO UPDATE SET value=excluded.value",
                (key, value),
            )

    # -- queries ------------------------------------------------------------
    def job(self, key: str) -> Optional[JobRow]:
        row = self._conn.execute("SELECT * FROM jobs WHERE key=?", (key,)).fetchone()
        return None if row is None else JobRow._from_sql(row)

    def jobs(self, campaign_id: Optional[str] = None) -> List[JobRow]:
        """All jobs in submission order, or one campaign's in plan order."""
        if campaign_id is None:
            rows = self._conn.execute("SELECT * FROM jobs ORDER BY seq").fetchall()
        else:
            rows = self._conn.execute(
                "SELECT jobs.* FROM jobs JOIN campaign_jobs "
                "ON jobs.key = campaign_jobs.key "
                "WHERE campaign_jobs.campaign_id=? ORDER BY campaign_jobs.position",
                (campaign_id,),
            ).fetchall()
        return [JobRow._from_sql(r) for r in rows]

    def campaign(self, campaign_id: str) -> Optional[Dict[str, Any]]:
        row = self._conn.execute(
            "SELECT * FROM campaigns WHERE id=?", (campaign_id,)
        ).fetchone()
        if row is None:
            return None
        return {
            "id": row["id"],
            "name": row["name"],
            "spec": json.loads(row["spec"]),
        }

    def campaign_ids(self) -> List[str]:
        rows = self._conn.execute("SELECT id FROM campaigns ORDER BY id").fetchall()
        return [r["id"] for r in rows]

    def counts(self) -> Dict[str, int]:
        """Jobs per state (every state present, zero or not)."""
        out = {state: 0 for state in JOB_STATES}
        for row in self._conn.execute(
            "SELECT state, COUNT(*) AS n FROM jobs GROUP BY state"
        ).fetchall():
            out[row["state"]] = row["n"]
        return out

    def backlog(self) -> int:
        """Jobs not yet terminal — the shedding bound reads this."""
        row = self._conn.execute(
            "SELECT COUNT(*) AS n FROM jobs WHERE state NOT IN (?, ?, ?)",
            TERMINAL_STATES,
        ).fetchone()
        return row["n"]
