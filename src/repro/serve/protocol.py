"""The campaign service wire protocol: HTTP/1.1 over asyncio streams.

The server is stdlib-only by design (no ``aiohttp``, and ``http.server``
is thread-per-request, not asyncio), so the small slice of HTTP/1.1 the
service needs is implemented here once and shared: request parsing off
an :class:`asyncio.StreamReader`, response rendering to bytes, and the
JSON body conventions both :mod:`repro.serve.server` and
:mod:`repro.serve.client` speak.

Deliberate simplifications (each one is a robustness feature for a
service that must be SIGKILL-able at any instant):

* every response carries ``Connection: close`` — no keep-alive state to
  lose, one socket per request;
* bodies require ``Content-Length`` (no chunked encoding) and are
  capped at :data:`MAX_BODY_BYTES` — a malicious or confused client
  cannot balloon server memory;
* only the request shapes the API uses parse; everything else is a
  clean 400, never an exception escaping into the accept loop.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

__all__ = [
    "API_VERSION",
    "JOB_STATES",
    "TERMINAL_STATES",
    "MAX_BODY_BYTES",
    "ProtocolError",
    "ServeError",
    "Request",
    "read_request",
    "render_response",
    "json_body",
]

#: Version tag clients can check against ``GET /v1/health``.
API_VERSION = "repro.serve/1"

#: Every state a job row in the durable queue can be in.  ``queued``
#: jobs wait for a lease (``not_before`` gates backoff); ``leased`` jobs
#: are owned by a worker slot but not yet dispatched; ``running`` jobs
#: are executing; the rest are terminal.
JOB_STATES = ("queued", "leased", "running", "done", "failed", "quarantined")
#: States that will never transition again (short of a resubmit).
TERMINAL_STATES = ("done", "failed", "quarantined")

#: Request-body cap: campaign specs are small; anything bigger is abuse.
MAX_BODY_BYTES = 1 << 20

_REASONS = {
    200: "OK",
    201: "Created",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class ProtocolError(Exception):
    """A request that cannot be parsed (maps to a 4xx response)."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


class ServeError(Exception):
    """A service-level error carried across the wire.

    Raised by the client on any non-2xx response; ``retry_after``
    carries the server's shedding hint (seconds) when it sent one.
    """

    def __init__(
        self, status: int, message: str, retry_after: Optional[float] = None
    ) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message
        self.retry_after = retry_after


@dataclass
class Request:
    """One parsed HTTP request."""

    method: str
    path: str
    query: Dict[str, str] = field(default_factory=dict)
    headers: Dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    def json(self) -> Any:
        """The JSON body, or a 400 :class:`ProtocolError`."""
        if not self.body:
            raise ProtocolError(400, "request body required (JSON)")
        try:
            return json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ProtocolError(400, f"request body is not valid JSON: {exc}") from None


def _parse_query(raw: str) -> Dict[str, str]:
    out: Dict[str, str] = {}
    for part in filter(None, raw.split("&")):
        key, _, value = part.partition("=")
        out[key] = value
    return out


async def read_request(
    reader: asyncio.StreamReader, max_body: int = MAX_BODY_BYTES
) -> Optional[Request]:
    """Parse one request off the stream; ``None`` on clean EOF.

    Anything malformed raises :class:`ProtocolError` with the 4xx the
    server should answer before closing the connection.
    """
    try:
        line = await reader.readline()
    except (ConnectionError, asyncio.LimitOverrunError):
        return None
    if not line.strip():
        return None
    parts = line.decode("latin-1").split()
    if len(parts) != 3 or not parts[2].startswith("HTTP/"):
        raise ProtocolError(400, f"malformed request line: {line!r}")
    method, target, _version = parts
    headers: Dict[str, str] = {}
    while True:
        raw = await reader.readline()
        if raw in (b"\r\n", b"\n", b""):
            break
        name, sep, value = raw.decode("latin-1").partition(":")
        if not sep:
            raise ProtocolError(400, f"malformed header line: {raw!r}")
        headers[name.strip().lower()] = value.strip()
    length_text = headers.get("content-length", "0") or "0"
    try:
        length = int(length_text)
    except ValueError:
        raise ProtocolError(400, f"bad Content-Length: {length_text!r}") from None
    if length < 0:
        raise ProtocolError(400, f"bad Content-Length: {length_text!r}")
    if length > max_body:
        raise ProtocolError(413, f"request body over {max_body} bytes")
    body = b""
    if length:
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError:
            raise ProtocolError(400, "request body shorter than Content-Length")
    path, _, query = target.partition("?")
    return Request(
        method=method.upper(),
        path=path,
        query=_parse_query(query),
        headers=headers,
        body=body,
    )


def render_response(
    status: int,
    payload: Any = None,
    headers: Optional[Dict[str, str]] = None,
    content_type: str = "application/json",
) -> bytes:
    """Render a full one-shot HTTP response (always ``Connection: close``).

    ``payload`` may be ``bytes`` (sent verbatim), ``str`` (UTF-8,
    ``text/plain`` unless overridden), or any JSON-serializable object
    (compact, sorted keys — responses are deterministic artifacts).
    """
    if payload is None:
        body = b""
    elif isinstance(payload, bytes):
        body = payload
    elif isinstance(payload, str):
        body = payload.encode("utf-8")
        if content_type == "application/json":
            content_type = "text/plain; charset=utf-8"
    else:
        body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
    reason = _REASONS.get(status, "Unknown")
    lines = [
        f"HTTP/1.1 {status} {reason}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
        "Connection: close",
    ]
    for name, value in sorted((headers or {}).items()):
        lines.append(f"{name}: {value}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body


def json_body(
    status: int, headers: Dict[str, str], body: bytes
) -> Tuple[int, Any, Dict[str, str]]:
    """Client-side decode of one response; errors become ``ServeError``."""
    content_type = headers.get("content-type", "")
    doc: Any = None
    if body and content_type.startswith("application/json"):
        try:
            doc = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ServeError(status, f"undecodable JSON response: {exc}") from None
    if status >= 400:
        retry_after: Optional[float] = None
        raw = headers.get("retry-after")
        if raw is not None:
            try:
                retry_after = float(raw)
            except ValueError:
                retry_after = None
        message = ""
        if isinstance(doc, dict):
            message = str(doc.get("error", ""))
        raise ServeError(status, message or f"request failed ({status})", retry_after)
    return status, doc, headers
