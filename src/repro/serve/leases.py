"""Lease lifecycle: the shared failure policy applied to the ledger.

:class:`~repro.serve.store.JobStore` records transitions but holds no
opinions; :class:`~repro.campaign.policy.FailurePolicy` holds opinions
but touches no state.  :class:`LeaseManager` is the glue: it turns
"this lease expired" or "this attempt failed with classification X"
into the exact transition the batch runner would have made — retry with
seeded backoff, quarantine after repeated kills, or a final failure —
so the service and ``repro campaign run`` are provably one system with
two front doors.

Every method returns a :class:`Settled` record describing what was done
(or that the lease was stale and nothing was), which the server uses
for journaling, counters, and spans.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..campaign.policy import FailurePolicy
from ..campaign.worker import NEVER_RETRY
from .store import JobRow, JobStore

__all__ = ["Settled", "LeaseManager"]


@dataclass
class Settled:
    """One applied (or rejected-as-stale) lease settlement."""

    key: str
    job_id: str
    #: the policy action taken: retry / quarantine / final / done /
    #: innocent (host's fault, free requeue) / stale (token lost; noop)
    action: str
    #: terminal manifest status when the transition was terminal
    status: str = ""
    classification: str = ""
    error: str = ""
    delay_s: float = 0.0
    #: attempts *after* this settlement (0 when stale)
    attempts: int = 0

    @property
    def applied(self) -> bool:
        return self.action != "stale"


class LeaseManager:
    """Applies :class:`FailurePolicy` to lease outcomes against the store."""

    def __init__(
        self, store: JobStore, policy: FailurePolicy, lease_ttl: float
    ) -> None:
        self.store = store
        self.policy = policy
        self.lease_ttl = lease_ttl

    # -- grants -------------------------------------------------------------
    def acquire(self, worker: int) -> Optional[JobRow]:
        return self.store.acquire(worker, self.lease_ttl)

    def heartbeat(self, keys_tokens: List[Tuple[str, str]]) -> int:
        return self.store.heartbeat(keys_tokens, self.lease_ttl)

    # -- settlements --------------------------------------------------------
    def settle_success(
        self, job: JobRow, token: str, digest: str, artifact: str
    ) -> Settled:
        ok = self.store.complete(job.key, token, digest, artifact)
        if not ok:
            return Settled(key=job.key, job_id=job.job_id, action="stale")
        return Settled(
            key=job.key,
            job_id=job.job_id,
            action="done",
            status="done",
            attempts=job.attempts + 1,
        )

    def settle_failure(
        self,
        job: JobRow,
        token: str,
        classification: str,
        error: str,
        error_type: str,
        add_kill: bool = False,
    ) -> Settled:
        """Apply the policy to one failed attempt and record the result.

        ``job`` is the row *as leased* (attempts = completed executions
        before this one); the attempt that just failed is therefore
        ``job.attempts + 1``, matching the batch runner's bookkeeping
        exactly — same decide() inputs, same backoff stream.
        """
        attempts = job.attempts + 1
        kills = job.kills + (1 if add_kill else 0)
        action = self.policy.decide(classification, attempts, kills=kills)
        if action == "degrade":
            # Service submissions carry no fallback params (documented
            # limitation), so decide() cannot return degrade here; keep
            # the guard in case a future schema adds them.
            action = "final"
        if classification in NEVER_RETRY and action == "retry":
            action = "final"
        if action == "retry":
            delay_s = self.policy.delay(job.job_id, attempts)
            ok = self.store.requeue_failure(
                job.key,
                token,
                classification,
                error,
                error_type,
                delay_s,
                add_kill=add_kill,
            )
            if not ok:
                return Settled(key=job.key, job_id=job.job_id, action="stale")
            return Settled(
                key=job.key,
                job_id=job.job_id,
                action="retry",
                classification=classification,
                error=error,
                delay_s=delay_s,
                attempts=attempts,
            )
        status = "quarantined" if action == "quarantine" else "failed"
        cls = "poison" if action == "quarantine" else classification
        ok = self.store.finalize_failure(
            job.key, token, status, cls, error, error_type, add_kill=add_kill
        )
        if not ok:
            return Settled(key=job.key, job_id=job.job_id, action="stale")
        return Settled(
            key=job.key,
            job_id=job.job_id,
            action=action,
            status=status,
            classification=cls,
            error=error,
            attempts=attempts,
        )

    def settle_innocent(self, job: JobRow, token: str) -> Settled:
        """Requeue a lease whose host died under it — free of charge."""
        ok = self.store.release_innocent(job.key, token)
        action = "innocent" if ok else "stale"
        return Settled(
            key=job.key, job_id=job.job_id, action=action, attempts=job.attempts
        )

    # -- expiry sweep -------------------------------------------------------
    def expire(self) -> List[Settled]:
        """Sweep leases that missed their heartbeats.

        An expired lease is the service-mode analogue of a watchdog
        deadline: the worker stopped talking, so the attempt failed with
        classification ``timeout`` and the shared policy decides what
        happens next (retry with backoff, or final failure once retries
        are exhausted).  The fencing token means a worker that was
        merely slow — and later tries to commit — is discarded as stale
        rather than double-recorded.
        """
        settled: List[Settled] = []
        for job in self.store.expired_leases():
            result = self.settle_failure(
                job,
                job.lease_token,
                "timeout",
                (
                    f"lease expired: no heartbeat within "
                    f"{self.lease_ttl:g}s (worker slot {job.lease_worker})"
                ),
                "JobTimeoutError",
            )
            if result.applied:
                settled.append(result)
        return settled
