"""Blocking stdlib client for the campaign service.

Built on :mod:`http.client` (one connection per request, mirroring the
server's ``Connection: close``).  The client is deliberately thin: it
speaks the JSON API, raises :class:`~repro.serve.protocol.ServeError`
on any non-2xx answer (with the server's ``Retry-After`` hint attached
for 429/503), and offers two conveniences the CLI and drills need —
:meth:`ServeClient.submit_with_retry` honours shedding backpressure,
and :meth:`ServeClient.wait` polls a campaign to completion.
"""

from __future__ import annotations

import http.client
import json
import pathlib
from typing import Any, Dict, Optional, Union

from ..perf.hostclock import HostClock, host_sleep
from .protocol import ServeError, json_body
from .server import SERVER_FILE

__all__ = ["ServeClient", "discover"]


def discover(directory: Union[str, pathlib.Path]) -> "ServeClient":
    """A client for the server advertised in ``<directory>/server.json``."""
    path = pathlib.Path(directory) / SERVER_FILE
    try:
        doc = json.loads(path.read_text(encoding="utf-8"))
        host, port = str(doc["host"]), int(doc["port"])
    except (OSError, json.JSONDecodeError, KeyError, TypeError, ValueError):
        raise ServeError(
            503, f"no running server advertised at {path} (start one first?)"
        ) from None
    return ServeClient(host, port)


class ServeClient:
    """One server address; every call opens, speaks, and closes."""

    def __init__(self, host: str, port: int, timeout: float = 10.0) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout

    def _request(
        self, method: str, path: str, payload: Optional[Dict[str, Any]] = None
    ) -> Any:
        body = None
        headers = {}
        if payload is not None:
            body = json.dumps(payload, sort_keys=True).encode("utf-8")
            headers["Content-Type"] = "application/json"
        conn = http.client.HTTPConnection(self.host, self.port, timeout=self.timeout)
        try:
            try:
                conn.request(method, path, body=body, headers=headers)
                response = conn.getresponse()
                raw = response.read()
            except (ConnectionError, OSError, http.client.HTTPException) as exc:
                raise ServeError(
                    503, f"campaign server unreachable at {self.host}:{self.port}: {exc}"
                ) from None
            resp_headers = {k.lower(): v for k, v in response.getheaders()}
            _, doc, _ = json_body(response.status, resp_headers, raw)
            return doc
        finally:
            conn.close()

    def _request_bytes(self, path: str) -> bytes:
        conn = http.client.HTTPConnection(self.host, self.port, timeout=self.timeout)
        try:
            try:
                conn.request("GET", path)
                response = conn.getresponse()
                raw = response.read()
            except (ConnectionError, OSError, http.client.HTTPException) as exc:
                raise ServeError(
                    503, f"campaign server unreachable at {self.host}:{self.port}: {exc}"
                ) from None
            if response.status >= 400:
                raise ServeError(response.status, raw.decode("utf-8", "replace"))
            return raw
        finally:
            conn.close()

    # -- API ----------------------------------------------------------------
    def health(self) -> Dict[str, Any]:
        return self._request("GET", "/v1/health")

    def stats(self) -> Dict[str, Any]:
        return self._request("GET", "/v1/stats")

    def submit(self, spec_doc: Dict[str, Any]) -> Dict[str, Any]:
        """POST one campaign spec; raises :class:`ServeError` on 429/503."""
        return self._request("POST", "/v1/campaigns", payload=spec_doc)

    def submit_with_retry(
        self,
        spec_doc: Dict[str, Any],
        timeout: float = 60.0,
        default_backoff: float = 0.2,
    ) -> Dict[str, Any]:
        """Submit, honouring 429/503 shedding until ``timeout``.

        Sleeps the server's ``Retry-After`` hint (falling back to
        ``default_backoff``) between tries.  Because admission is
        idempotent by content key, retrying a submission that actually
        landed is harmless — it dedupes.
        """
        clock = HostClock()
        while True:
            try:
                return self.submit(spec_doc)
            except ServeError as exc:
                if exc.status not in (429, 503):
                    raise
                if clock.elapsed() >= timeout:
                    raise
                host_sleep(
                    min(
                        exc.retry_after or default_backoff,
                        max(0.0, timeout - clock.elapsed()),
                    )
                )

    def campaigns(self) -> Dict[str, Any]:
        return self._request("GET", "/v1/campaigns")

    def campaign(self, cid: str) -> Dict[str, Any]:
        return self._request("GET", f"/v1/campaigns/{cid}")

    def job(self, key: str) -> Dict[str, Any]:
        return self._request("GET", f"/v1/jobs/{key}")

    def artifact(self, key: str) -> bytes:
        return self._request_bytes(f"/v1/jobs/{key}/artifact")

    def drain(self) -> Dict[str, Any]:
        return self._request("POST", "/v1/drain")

    def wait(
        self, cid: str, timeout: float = 120.0, poll_s: float = 0.1
    ) -> Dict[str, Any]:
        """Poll until every job in ``cid`` is terminal; returns the
        final campaign document.  Raises :class:`ServeError` (504-ish
        status 503) if the campaign is still moving at ``timeout``."""
        clock = HostClock()
        while True:
            doc = self.campaign(cid)
            if doc.get("done"):
                return doc
            if clock.elapsed() >= timeout:
                raise ServeError(
                    503, f"campaign {cid} still running after {timeout:g}s"
                )
            host_sleep(poll_s)
