"""The campaign server: durable simulation-as-a-service over asyncio.

One process, three cooperating loops:

* the **accept loop** (``asyncio.start_server``) parses one request per
  connection via :mod:`repro.serve.protocol` and answers from the
  durable store — submissions, status, artifacts, drain;
* the **dispatch loop** (a single asyncio task, ticking every
  ``tick_s``) sweeps expired leases, heartbeats live ones, leases
  eligible jobs into a worker pool, and settles completions through the
  shared :class:`~repro.campaign.policy.FailurePolicy`;
* the **worker pool** (:class:`~concurrent.futures.ProcessPoolExecutor`)
  runs the exact :func:`~repro.campaign.worker.execute_job` the batch
  runner uses — same seeding, same chaos hooks, same classification —
  so a served artifact is byte-identical to a batch one.

Crash-safety contract (the chaos drill proves it): the server may be
SIGKILLed at any instant.  Every accepted job lives in a single-
transaction SQLite row (:class:`~repro.serve.store.JobStore`) before
the 201 is sent; artifacts are written temp + ``os.replace``; terminal
outcomes append to the same fsync'd, torn-tolerant journal the batch
runner keeps.  On restart the store requeues every lease the dead
process held, the chaos fired-set reloads from SQLite (a ``server_kill``
never fires twice), and completed work is never recomputed — resubmits
dedupe onto done rows and cache hits.

Side-effect idempotency: results commit under a **fencing token**.  A
worker whose lease expired can finish and try to report — the store
rejects the stale token, the server skips the artifact/cache/journal
writes, and the reclaimed lease's owner (or the result cache) produces
the identical bytes instead.
"""

from __future__ import annotations

import asyncio
import hashlib
import json
import os
import pathlib
import signal
import threading
from concurrent.futures import ProcessPoolExecutor
from contextlib import suppress
from dataclasses import asdict, dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

from ..campaign.cache import ResultCache, cache_key, code_fingerprint, text_digest
from ..campaign.manifest import (
    JOURNAL_FILE,
    MANIFEST_FILE,
    JobRecord,
    append_journal,
    write_manifest,
)
from ..campaign.policy import FailurePolicy
from ..campaign.pool import fresh_pool, is_broken_pool, teardown_pool
from ..campaign.spec import CampaignSpec, SpecError
from ..campaign.worker import JobOutcome, classify_failure, execute_job
from ..chaos import ChaosEvent, ChaosInjector, ChaosPlan, ChaosSpec
from ..chaos.inject import torn_cache_put, torn_journal_append
from ..perf.hostclock import HostClock, host_sleep
from .leases import LeaseManager
from .protocol import (
    API_VERSION,
    ProtocolError,
    Request,
    read_request,
    render_response,
)
from .store import JobRow, JobStore

__all__ = [
    "SERVE_PID",
    "DB_FILE",
    "SERVER_FILE",
    "ServerConfig",
    "ServerHandle",
    "CampaignServer",
]

#: Synthetic Chrome-trace pid for the service track (campaign=1000002).
SERVE_PID = 1000004

#: The durable queue inside the serve directory.
DB_FILE = "serve.db"
#: Discovery file: where a running server says it listens (host, port,
#: pid).  Written atomically on bind; CLI clients read it to connect.
SERVER_FILE = "server.json"


def _artifact_bytes(text: str) -> str:
    """Identical shaping to the batch runner: text + trailing newline —
    the byte-for-byte contract the chaos drill ``cmp``s against."""
    return text if text.endswith("\n") else text + "\n"


def _atomic_write(path: pathlib.Path, payload: str) -> None:
    tmp = path.with_suffix(f"{path.suffix}.tmp.{os.getpid()}")
    tmp.write_text(payload, encoding="utf-8")
    os.replace(tmp, path)


def campaign_id(spec: CampaignSpec) -> str:
    """Deterministic campaign address: same spec ⇒ same id ⇒ resubmits
    collapse onto the existing campaign instead of duplicating it."""
    payload = json.dumps(spec.to_dict(), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode()).hexdigest()[:12]


@dataclass
class ServerConfig:
    """Everything a :class:`CampaignServer` needs to run.

    ``lease_ttl`` is the heartbeat contract: a lease not refreshed
    within it is presumed dead and requeued (classification
    ``timeout``, shared policy).  ``max_backlog`` bounds accepted but
    unfinished jobs — submissions past it shed with 429 + Retry-After
    instead of growing the queue without bound.
    """

    directory: Union[str, pathlib.Path] = "serve-out"
    host: str = "127.0.0.1"
    port: int = 0
    name: str = "serve"
    jobs: int = 2
    retries: int = 1
    backoff_base: float = 0.05
    backoff_cap: float = 2.0
    quarantine_after: int = 2
    retry_seed: int = 0
    lease_ttl: float = 5.0
    deadline_s: Optional[float] = None
    deadline_grace: float = 2.0
    max_backlog: int = 64
    shed_retry_after: float = 1.0
    tick_s: float = 0.05
    #: >1 runs each job inside an ambient ``pdes.sharding`` context
    #: (eligible DES runs shard; everything else falls back unsharded)
    shards: Optional[int] = None
    cache_dir: Optional[Union[str, pathlib.Path]] = None
    chaos: Optional[Union[ChaosSpec, ChaosPlan]] = None
    tracer: Optional[Any] = None
    #: test seam: what a ``server_kill`` injection does (default: a real
    #: ``SIGKILL`` of this process — the drill runs the server as a
    #: subprocess and watches it die mid-lease)
    on_server_kill: Optional[Callable[[], None]] = None


@dataclass
class _Flight:
    """One dispatched lease: a pool future owned by a fencing token."""

    job: JobRow
    token: str
    future: Any
    start: float
    attempt: int
    #: cleared by a heartbeat_loss injection: the lease is left to die
    heartbeat: bool = True


class ServerHandle:
    """A background (thread-hosted) server, for tests and drills."""

    def __init__(self, server: "CampaignServer", thread: threading.Thread) -> None:
        self.server = server
        self.thread = thread

    @property
    def port(self) -> int:
        return self.server.port

    def stop(self, timeout: float = 10.0) -> None:
        self.server.request_stop()
        self.thread.join(timeout=timeout)


class CampaignServer:
    """See the module docstring; one instance serves one directory."""

    def __init__(self, config: ServerConfig) -> None:
        if config.jobs < 1:
            raise ValueError("jobs must be >= 1")
        self.config = config
        self.directory = pathlib.Path(config.directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.policy = FailurePolicy(
            retries=config.retries,
            backoff_base=config.backoff_base,
            backoff_cap=config.backoff_cap,
            quarantine_after=config.quarantine_after,
            seed=config.retry_seed,
        )
        self.policy.validate()
        self.store = JobStore(self.directory / DB_FILE)
        self.leases = LeaseManager(self.store, self.policy, config.lease_ttl)
        self.cache = ResultCache(config.cache_dir or self.directory / ".cache")
        self.tracer = config.tracer
        self.port = 0
        self.draining = False
        self.counters: Dict[str, int] = {}
        self._fingerprint = code_fingerprint()
        self._clock = HostClock()
        self._flights: Dict[str, _Flight] = {}
        self._pool: Optional[ProcessPoolExecutor] = None
        self._stop: Optional[asyncio.Event] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._manifest_dirty = True
        self._injector: Optional[ChaosInjector] = None
        self._plan: Optional[ChaosPlan] = None
        recovered = self.store.recover()
        if recovered:
            self._count("recovered_leases", recovered)
        self._load_chaos()
        if self.tracer is not None:
            self.tracer.set_process_name(SERVE_PID, f"serve {config.name}")
            for slot in range(config.jobs):
                self.tracer.set_thread_name(SERVE_PID, slot, f"worker {slot}")

    # -- small helpers ------------------------------------------------------
    def _now(self) -> float:
        return self._clock.elapsed()

    def _count(self, name: str, n: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + n
        if self.tracer is not None:
            self.tracer.metrics.counter(f"serve.{name}").inc(n)

    def _span(self, name: str, start: float, args: Dict[str, Any]) -> None:
        if self.tracer is not None:
            self.tracer.complete(
                SERVE_PID, name, start, self._now(), cat="serve.http", args=args
            )

    # -- chaos wiring -------------------------------------------------------
    def _load_chaos(self) -> None:
        """Rebuild the injector: config plan, else the persisted one.

        A compiled plan is persisted to the store the first time one
        exists, and the durable fired-set reloads into the injector —
        one-shot semantics survive the SIGKILLs the plan itself causes.
        """
        if isinstance(self.config.chaos, ChaosPlan):
            # A pre-compiled plan persists immediately so a restarted
            # server (no --chaos argument) keeps running the same drill.
            self._install_plan(self.config.chaos, persist=True)
            return
        stored = self.store.get_meta("chaos_plan")
        if stored is not None:
            doc = json.loads(stored)
            plan = ChaosPlan(
                seed=doc["seed"],
                events=tuple(ChaosEvent(**e) for e in doc["events"]),
            )
            self._install_plan(plan, persist=False)

    def _install_plan(self, plan: ChaosPlan, persist: bool) -> None:
        self._plan = plan
        self._injector = ChaosInjector(plan)
        self._injector.note_fired(self.store.chaos_fired_keys())
        if persist:
            doc = {"seed": plan.seed, "events": [asdict(e) for e in plan.events]}
            self.store.set_meta("chaos_plan", json.dumps(doc, sort_keys=True))

    def _compile_chaos(self, job_ids: List[str]) -> None:
        """First submission compiles a ChaosSpec against real job ids."""
        if self._injector is not None or not isinstance(self.config.chaos, ChaosSpec):
            return
        self._install_plan(self.config.chaos.compile(job_ids), persist=True)

    def _note_chaos_fired(self, event: ChaosEvent) -> None:
        """Persist + count one firing (injector already marked it)."""
        self.store.note_chaos_fired(event.key())
        self._count(f"chaos_{event.kind}")
        if self.tracer is not None:
            self.tracer.instant(
                SERVE_PID,
                f"chaos-{event.kind}",
                self._now(),
                cat="chaos",
                args={"event": event.key()},
            )

    def _note_chaos_keys(self, keys: List[str]) -> None:
        if self._injector is None or not keys:
            return
        for event in self._injector.note_fired(keys):
            self._note_chaos_fired(event)

    # -- durable side effects ----------------------------------------------
    def _ensure_artifact(self, job_id: str, text: str) -> Tuple[str, str]:
        """Write ``<job_id>.txt`` unless it already holds these bytes;
        returns ``(digest, artifact_name)``."""
        payload = _artifact_bytes(text)
        digest = text_digest(payload)
        name = f"{job_id}.txt"
        path = self.directory / name
        try:
            if path.read_text(encoding="utf-8") == payload:
                return digest, name
        except (OSError, UnicodeDecodeError):
            pass
        _atomic_write(path, payload)
        self._count("artifacts_written")
        return digest, name

    def _cache_put(self, job: JobRow, text: str) -> None:
        meta = {"experiment": job.experiment, "params": job.params}
        event = (
            self._injector.write_fault("cache", job.job_id)
            if self._injector is not None
            else None
        )
        try:
            if event is not None:
                self._note_chaos_fired(event)
                if event.kind == "torn":
                    torn_cache_put(self.cache, job.key, text, meta=meta)
                    return
                raise OSError(5, "chaos: injected cache I/O error")
            self.cache.put(job.key, text, meta=meta)
        except OSError:
            self._count("write_errors")

    def _journal(self, record: JobRecord) -> None:
        path = self.directory / JOURNAL_FILE
        event = (
            self._injector.write_fault("journal", record.job_id)
            if self._injector is not None
            else None
        )
        try:
            if event is not None:
                self._note_chaos_fired(event)
                if event.kind == "torn":
                    torn_journal_append(path, record)
                    return
                raise OSError(5, "chaos: injected journal I/O error")
            append_journal(path, record)
        except OSError:
            self._count("write_errors")

    def _manifest_records(self) -> List[JobRecord]:
        out: List[JobRecord] = []
        for row in self.store.jobs():
            out.append(
                JobRecord(
                    job_id=row.job_id,
                    experiment=row.experiment,
                    params=row.params,
                    status=row.state,
                    source=row.source,
                    digest=row.digest,
                    artifact=row.artifact,
                    attempts=row.attempts,
                    error=row.error,
                    error_type=row.error_type,
                    classification=row.classification,
                    backoff_s=row.backoff_s,
                )
            )
        return out

    def _write_manifest(self) -> None:
        """Snapshot the whole ledger as a manifest.json — including the
        in-flight ``queued``/``leased``/``running`` states, so ``repro
        campaign status`` works live against a serve directory."""
        try:
            write_manifest(
                self.directory / MANIFEST_FILE,
                self._manifest_records(),
                name=self.config.name,
                code_fingerprint=self._fingerprint,
            )
        except OSError:
            self._count("write_errors")
        self._manifest_dirty = False

    # -- settlement plumbing ------------------------------------------------
    def _settle_success(self, job: JobRow, token: str, text: str, source: str) -> None:
        payload = _artifact_bytes(text)
        digest = text_digest(payload)
        settled = self.leases.settle_success(job, token, digest, f"{job.job_id}.txt")
        if not settled.applied:
            # A stale token lost the race: the ledger already moved on,
            # so this result causes zero side effects — no artifact, no
            # cache write, no journal line.  Idempotency by fencing.
            self._count("stale_discards")
            return
        self._ensure_artifact(job.job_id, text)
        if source == "computed":
            self._cache_put(job, text)
        self._count("completed")
        record = JobRecord(
            job_id=job.job_id,
            experiment=job.experiment,
            params=job.params,
            status="done",
            source=source,
            digest=digest,
            artifact=f"{job.job_id}.txt",
            attempts=settled.attempts,
            backoff_s=job.backoff_s,
        )
        self._journal(record)
        self._manifest_dirty = True

    def _settle_failure(
        self,
        job: JobRow,
        token: str,
        classification: str,
        error: str,
        error_type: str,
        add_kill: bool = False,
    ) -> None:
        settled = self.leases.settle_failure(
            job, token, classification, error, error_type, add_kill=add_kill
        )
        if not settled.applied:
            self._count("stale_discards")
            return
        self._manifest_dirty = True
        if settled.action == "retry":
            self._count("retries")
            return
        self._count(settled.status)
        self._journal(
            JobRecord(
                job_id=job.job_id,
                experiment=job.experiment,
                params=job.params,
                status=settled.status,
                source="computed",
                attempts=settled.attempts,
                error=settled.error,
                error_type=error_type,
                classification=settled.classification,
                backoff_s=job.backoff_s,
            )
        )

    # -- the dispatch loop --------------------------------------------------
    async def _dispatch_loop(self) -> None:
        while True:
            try:
                self._tick()
            except Exception:  # noqa: BLE001 - the loop must survive
                self._count("tick_errors")
            if self._manifest_dirty:
                self._write_manifest()
            if (
                self.draining
                and not self._flights
                and self.store.backlog() == 0
                and self._stop is not None
            ):
                self._stop.set()
                return
            await asyncio.sleep(self.config.tick_s)

    def _tick(self) -> None:
        self._expire_leases()
        self._heartbeat()
        self._reap_completions()
        self._watchdog()
        self._claim()

    def _expire_leases(self) -> None:
        for settled in self.leases.expire():
            self._count("lease_expiries")
            self._manifest_dirty = True
            if settled.action == "retry":
                self._count("retries")
            else:
                self._count(settled.status)
                row = self.store.job(settled.key)
                if row is not None:
                    self._journal(
                        JobRecord(
                            job_id=row.job_id,
                            experiment=row.experiment,
                            params=row.params,
                            status=settled.status,
                            source="computed",
                            attempts=row.attempts,
                            error=settled.error,
                            error_type=row.error_type,
                            classification=settled.classification,
                            backoff_s=row.backoff_s,
                        )
                    )

    def _heartbeat(self) -> None:
        pairs = [
            (flight.job.key, flight.token)
            for flight in self._flights.values()
            if flight.heartbeat and not flight.future.done()
        ]
        self.leases.heartbeat(pairs)

    def _reap_completions(self) -> None:
        finished = [
            (token, flight)
            for token, flight in self._flights.items()
            if flight.future.done()
        ]
        broken: List[_Flight] = []
        for token, flight in finished:
            del self._flights[token]
            try:
                outcome: JobOutcome = flight.future.result()
            except (KeyboardInterrupt, SystemExit):
                raise
            except BaseException as exc:  # noqa: BLE001
                if is_broken_pool(exc):
                    broken.append(flight)
                    continue
                outcome = JobOutcome(
                    job_id=flight.job.job_id,
                    ok=False,
                    error=str(exc),
                    error_type=type(exc).__name__,
                    classification=classify_failure(exc),
                )
            self._handle_outcome(flight, outcome)
        if broken:
            # A worker death poisons every in-flight future: drain them
            # all now, attribute the kill, and rebuild the pool.
            broken.extend(self._flights.values())
            self._flights.clear()
            self._rebuild_pool(broken, reason="broken")

    def _handle_outcome(self, flight: _Flight, outcome: JobOutcome) -> None:
        self._note_chaos_keys(outcome.chaos)
        if self.tracer is not None:
            self.tracer.complete(
                SERVE_PID,
                flight.job.job_id,
                flight.start,
                self._now(),
                cat="serve.job",
                args={
                    "experiment": flight.job.experiment,
                    "ok": outcome.ok,
                    "attempt": flight.attempt,
                },
            )
        if outcome.ok:
            self._settle_success(flight.job, flight.token, outcome.text, "computed")
        else:
            self._settle_failure(
                flight.job,
                flight.token,
                outcome.classification or "transient",
                outcome.error,
                outcome.error_type,
            )

    def _rebuild_pool(self, casualties: List[_Flight], reason: str) -> None:
        """Casualty triage + fresh pool — mirrors the batch runner:
        chaos-attributed victims consume an attempt (and a kill),
        innocents requeue free of charge."""
        self._count("pool_rebuilds")
        victims: List[_Flight] = []
        innocents: List[_Flight] = []
        if reason == "broken" and self._injector is not None:
            for flight in casualties:
                event = self._injector.kill_event(flight.job.job_id, flight.attempt)
                if event is not None:
                    self._injector.fire(event)
                    self._note_chaos_fired(event)
                    victims.append(flight)
                else:
                    innocents.append(flight)
        if not victims:
            victims, innocents = casualties, []
        for flight in victims:
            if reason == "stuck":
                deadline = self.config.deadline_s or 0.0
                error = (
                    f"job exceeded its {deadline:g}s deadline "
                    f"(+{self.config.deadline_grace:g}s grace); worker killed"
                )
                self._settle_failure(
                    flight.job, flight.token, "timeout", error, "JobTimeoutError"
                )
            else:
                self._settle_failure(
                    flight.job,
                    flight.token,
                    "crash",
                    "worker process died mid-job (pool broken)",
                    "WorkerKilledError",
                    add_kill=True,
                )
        for flight in innocents:
            settled = self.leases.settle_innocent(flight.job, flight.token)
            if settled.applied:
                self._count("innocent_requeues")
                self._manifest_dirty = True
        if self._pool is not None:
            self._pool = fresh_pool(self._pool, self.config.jobs)

    def _watchdog(self) -> None:
        if self.config.deadline_s is None or not self._flights:
            return
        limit = self.config.deadline_s + self.config.deadline_grace
        now = self._now()
        stuck = [
            token
            for token, flight in self._flights.items()
            if now - flight.start > limit
        ]
        if not stuck:
            return
        casualties = [self._flights.pop(token) for token in stuck]
        for flight in casualties:
            if self._injector is not None:
                event = self._injector.hang_event(flight.job.job_id, flight.attempt)
                if event is not None:
                    self._injector.fire(event)
                    self._note_chaos_fired(event)
        # The only way to kill a stuck worker is to tear the pool down,
        # which takes the innocents' processes with it.
        survivors = list(self._flights.values())
        self._flights.clear()
        self._rebuild_pool(casualties, reason="stuck")
        for flight in survivors:
            settled = self.leases.settle_innocent(flight.job, flight.token)
            if settled.applied:
                self._count("innocent_requeues")
                self._manifest_dirty = True

    def _claim(self) -> None:
        if self._pool is None or self._loop is None:
            return
        while len(self._flights) < self.config.jobs:
            slot = min(
                set(range(self.config.jobs))
                - {f.job.lease_worker for f in self._flights.values()},
                default=0,
            )
            job = self.leases.acquire(slot)
            if job is None:
                return
            self._manifest_dirty = True
            attempt = job.attempts + 1
            if self._injector is not None:
                event = self._injector.server_kill_event(job.job_id, attempt)
                if event is not None:
                    # The drill moment: the lease is durable, the fired
                    # key is durable, and *then* the server dies.  The
                    # restarted server must requeue this exact job and
                    # never re-fire this event.
                    self._injector.fire(event)
                    self._note_chaos_fired(event)
                    self._server_kill()
                    return
            text = self.cache.get(job.key)
            if text is not None:
                self._count("cache_hits")
                self._settle_success(job, job.lease_token, text, "cache")
                continue
            heartbeat = True
            if self._injector is not None:
                event = self._injector.heartbeat_loss_event(job.job_id, attempt)
                if event is not None:
                    self._injector.fire(event)
                    self._note_chaos_fired(event)
                    heartbeat = False
            self.store.mark_running(job.key, job.lease_token)
            future = self._loop.run_in_executor(
                self._pool,
                execute_job,
                job.job_id,
                job.experiment,
                job.params,
                self._plan,
                attempt,
                self.config.deadline_s,
                True,
                self.config.shards,
            )
            self._flights[job.lease_token] = _Flight(
                job=job,
                token=job.lease_token,
                future=future,
                start=self._now(),
                attempt=attempt,
                heartbeat=heartbeat,
            )
            self._count("dispatched")

    def _server_kill(self) -> None:
        self._count("server_kills")
        if self.config.on_server_kill is not None:
            self.config.on_server_kill()
            return
        os.kill(os.getpid(), signal.SIGKILL)

    # -- HTTP surface -------------------------------------------------------
    async def _handle_conn(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        start = self._now()
        status, payload, headers = 500, {"error": "internal error"}, {}
        request: Optional[Request] = None
        try:
            request = await read_request(reader)
            if request is None:
                writer.close()
                return
            status, payload, headers = self._route(request)
        except ProtocolError as exc:
            status, payload, headers = exc.status, {"error": exc.message}, {}
        except SpecError as exc:
            status, payload, headers = 400, {"error": str(exc)}, {}
        except Exception as exc:  # noqa: BLE001 - never kill the accept loop
            status, payload, headers = 500, {"error": str(exc)}, {}
            self._count("request_errors")
        self._count("requests")
        if request is not None:
            self._span(
                f"{request.method} {request.path}", start, {"status": status}
            )
        try:
            writer.write(render_response(status, payload, headers))
            await writer.drain()
        except (ConnectionError, OSError):
            pass
        finally:
            with suppress(Exception):
                writer.close()

    def _route(self, req: Request) -> Tuple[int, Any, Dict[str, str]]:
        parts = [p for p in req.path.split("/") if p]
        if len(parts) < 2 or parts[0] != "v1":
            raise ProtocolError(404, f"no route for {req.method} {req.path}")
        rest = parts[1:]
        if rest == ["health"] and req.method == "GET":
            return 200, self._health_doc(), {}
        if rest == ["stats"] and req.method == "GET":
            return 200, self._stats_doc(), {}
        if rest == ["drain"] and req.method == "POST":
            self.draining = True
            self._count("drain_requests")
            return 200, {"draining": True, "backlog": self.store.backlog()}, {}
        if rest == ["campaigns"]:
            if req.method == "POST":
                return self._submit(req)
            if req.method == "GET":
                return 200, {"campaigns": self.store.campaign_ids()}, {}
            raise ProtocolError(405, f"{req.method} not allowed on {req.path}")
        if len(rest) == 2 and rest[0] == "campaigns" and req.method == "GET":
            return self._campaign_doc(rest[1])
        if len(rest) == 2 and rest[0] == "jobs" and req.method == "GET":
            row = self.store.job(rest[1])
            if row is None:
                raise ProtocolError(404, f"no job {rest[1]!r}")
            return 200, self._job_doc(row), {}
        if (
            len(rest) == 3
            and rest[0] == "jobs"
            and rest[2] == "artifact"
            and req.method == "GET"
        ):
            return self._artifact(rest[1])
        raise ProtocolError(404, f"no route for {req.method} {req.path}")

    def _health_doc(self) -> Dict[str, Any]:
        return {
            "api": API_VERSION,
            "name": self.config.name,
            "pid": os.getpid(),
            "jobs": self.config.jobs,
            "backlog": self.store.backlog(),
            "counts": self.store.counts(),
            "draining": self.draining,
        }

    def _stats_doc(self) -> Dict[str, Any]:
        return {
            "counters": dict(sorted(self.counters.items())),
            "counts": self.store.counts(),
            "backlog": self.store.backlog(),
            "draining": self.draining,
            "chaos_fired": (
                self._injector.fired_keys() if self._injector is not None else []
            ),
        }

    def _job_doc(self, row: JobRow) -> Dict[str, Any]:
        return {
            "key": row.key,
            "job_id": row.job_id,
            "experiment": row.experiment,
            "params": row.params,
            "state": row.state,
            "attempts": row.attempts,
            "kills": row.kills,
            "source": row.source,
            "digest": row.digest,
            "artifact": row.artifact,
            "error": row.error,
            "error_type": row.error_type,
            "classification": row.classification,
            "backoff_s": row.backoff_s,
        }

    def _campaign_doc(self, cid: str) -> Tuple[int, Any, Dict[str, str]]:
        meta = self.store.campaign(cid)
        if meta is None:
            raise ProtocolError(404, f"no campaign {cid!r}")
        rows = self.store.jobs(cid)
        counts: Dict[str, int] = {}
        for row in rows:
            counts[row.state] = counts.get(row.state, 0) + 1
        doc = {
            "id": cid,
            "name": meta["name"],
            "counts": counts,
            "total": len(rows),
            "done": all(row.state in ("done", "failed", "quarantined") for row in rows),
            "jobs": [self._job_doc(row) for row in rows],
        }
        return 200, doc, {}

    def _artifact(self, key: str) -> Tuple[int, Any, Dict[str, str]]:
        row = self.store.job(key)
        if row is None or row.state != "done" or not row.artifact:
            raise ProtocolError(404, f"no artifact for job {key!r}")
        try:
            payload = (self.directory / row.artifact).read_bytes()
        except OSError:
            raise ProtocolError(404, f"artifact missing for job {key!r}") from None
        return 200, payload, {"Content-Type": "text/plain; charset=utf-8"}

    def _submit(self, req: Request) -> Tuple[int, Any, Dict[str, str]]:
        if self.draining:
            return (
                503,
                {"error": "server is draining; not accepting submissions"},
                {"Retry-After": f"{self.config.shed_retry_after:g}"},
            )
        spec = CampaignSpec.from_dict(req.json())
        jobs = spec.expand()
        keys = {
            job.job_id: cache_key(job.experiment, job.params, self._fingerprint)
            for job in jobs
        }
        new = sum(1 for job in jobs if self.store.job(keys[job.job_id]) is None)
        if new and self.store.backlog() + new > self.config.max_backlog:
            # Bounded queue: accepted-but-unfinished work may never grow
            # past max_backlog.  Shedding is the *durability* choice: a
            # 429'd spec was never admitted, so nothing can be lost.
            self._count("shed")
            return (
                429,
                {
                    "error": (
                        f"backlog full ({self.store.backlog()} + {new} new "
                        f"> {self.config.max_backlog}); retry later"
                    )
                },
                {"Retry-After": f"{self.config.shed_retry_after:g}"},
            )
        self._compile_chaos([job.job_id for job in jobs])
        rows: List[Dict[str, Any]] = []
        for job in jobs:
            key = keys[job.job_id]
            text = self.cache.get(key)
            if text is not None:
                digest, artifact = self._ensure_artifact(job.job_id, text)
                rows.append(
                    {
                        "key": key,
                        "job_id": job.job_id,
                        "experiment": job.experiment,
                        "params": job.params,
                        "state": "done",
                        "source": "cache",
                        "digest": digest,
                        "artifact": artifact,
                    }
                )
            else:
                rows.append(
                    {
                        "key": key,
                        "job_id": job.job_id,
                        "experiment": job.experiment,
                        "params": job.params,
                    }
                )
        cid = campaign_id(spec)
        dispositions = self.store.submit(cid, spec.name, spec.to_dict(), rows)
        accepted = dispositions.count("accepted")
        cached = dispositions.count("cache")
        dedup = dispositions.count("dedup")
        self._count("submitted", len(jobs))
        self._count("accepted", accepted)
        self._count("dedup", dedup)
        self._count("cache_hits", cached)
        self._manifest_dirty = True
        return (
            201,
            {
                "campaign": cid,
                "name": spec.name,
                "total": len(jobs),
                "accepted": accepted,
                "cache": cached,
                "dedup": dedup,
            },
            {},
        )

    # -- lifecycle ----------------------------------------------------------
    async def serve(self) -> None:
        """Run until :meth:`request_stop` (or a drain empties the queue)."""
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        self._pool = ProcessPoolExecutor(max_workers=self.config.jobs)
        server = await asyncio.start_server(
            self._handle_conn, self.config.host, self.config.port
        )
        self.port = server.sockets[0].getsockname()[1]
        _atomic_write(
            self.directory / SERVER_FILE,
            json.dumps(
                {
                    "api": API_VERSION,
                    "host": self.config.host,
                    "port": self.port,
                    "pid": os.getpid(),
                    "name": self.config.name,
                },
                sort_keys=True,
            )
            + "\n",
        )
        self._write_manifest()
        dispatcher = asyncio.create_task(self._dispatch_loop())
        try:
            async with server:
                await self._stop.wait()
        finally:
            dispatcher.cancel()
            with suppress(asyncio.CancelledError):
                await dispatcher
            pool, self._pool = self._pool, None
            if pool is not None:
                teardown_pool(pool)
            self._write_manifest()
            self.store.close()

    def run(self) -> None:
        """Blocking entry point (the CLI's ``repro serve start``)."""
        asyncio.run(self.serve())

    def request_stop(self) -> None:
        """Thread-safe shutdown request (a no-op once the loop is gone)."""
        if self._loop is None or self._stop is None:
            return
        try:
            self._loop.call_soon_threadsafe(self._stop.set)
        except RuntimeError:
            pass  # the loop already exited — e.g. after a completed drain

    def start_background(self, timeout: float = 10.0) -> ServerHandle:
        """Start in a daemon thread; returns once the port is bound."""
        thread = threading.Thread(target=self.run, daemon=True)
        thread.start()
        deadline = HostClock()
        while self.port == 0 and thread.is_alive():
            if deadline.elapsed() > timeout:
                raise RuntimeError("campaign server failed to bind in time")
            host_sleep(0.01)
        return ServerHandle(self, thread)
