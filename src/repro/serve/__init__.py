"""repro.serve: durable simulation-as-a-service.

The campaign layer (:mod:`repro.campaign`) runs batch passes; this
package wraps the same execution engine — the same
:func:`~repro.campaign.worker.execute_job`, the same content-addressed
:class:`~repro.campaign.cache.ResultCache`, the same
:class:`~repro.campaign.policy.FailurePolicy` — in a long-running,
crash-safe HTTP service:

* :mod:`~repro.serve.store` — the SQLite (WAL) durable job queue;
  every state transition a single transaction, schema-versioned,
  fencing-token leases;
* :mod:`~repro.serve.leases` — lease lifecycle: heartbeats, expiry as
  a shared-policy timeout, stale-result discard;
* :mod:`~repro.serve.server` — the asyncio server: bounded admission
  (429 + Retry-After), idempotent submission by cache key, dispatch to
  a worker pool, chaos-drillable SIGKILL recovery;
* :mod:`~repro.serve.client` — the blocking stdlib client the CLI and
  drills use;
* :mod:`~repro.serve.protocol` — the shared HTTP/1.1 + JSON wire layer.

Quick start::

    from repro.serve import CampaignServer, ServerConfig, ServeClient

    handle = CampaignServer(ServerConfig(directory="out/serve")).start_background()
    client = ServeClient("127.0.0.1", handle.port)
    receipt = client.submit({"name": "demo", "jobs": ["table1", "top500"]})
    final = client.wait(receipt["campaign"])
    handle.stop()

CLI: ``repro serve start|submit|status|drain``.  See ``docs/service.md``.
"""

from .client import ServeClient, discover
from .leases import LeaseManager, Settled
from .protocol import (
    API_VERSION,
    JOB_STATES,
    MAX_BODY_BYTES,
    TERMINAL_STATES,
    ProtocolError,
    Request,
    ServeError,
    json_body,
    read_request,
    render_response,
)
from .server import (
    DB_FILE,
    SERVE_PID,
    SERVER_FILE,
    CampaignServer,
    ServerConfig,
    ServerHandle,
    campaign_id,
)
from .store import SCHEMA_VERSION, JobRow, JobStore, StoreError

__all__ = [
    "API_VERSION",
    "CampaignServer",
    "DB_FILE",
    "JOB_STATES",
    "JobRow",
    "JobStore",
    "LeaseManager",
    "MAX_BODY_BYTES",
    "ProtocolError",
    "Request",
    "SCHEMA_VERSION",
    "SERVER_FILE",
    "SERVE_PID",
    "ServeClient",
    "ServeError",
    "ServerConfig",
    "ServerHandle",
    "Settled",
    "StoreError",
    "TERMINAL_STATES",
    "campaign_id",
    "discover",
    "json_body",
    "read_request",
    "render_response",
]
