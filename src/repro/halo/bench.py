"""HALO benchmark harness: DES runs + static-congestion analytic model.

The paper's Figure 2 sweeps halo sizes from a few words to ~10^5 words
on up to 8192 cores and eight process-to-processor mappings.  Message-
level simulation of every point would be needlessly slow, so the
harness offers two evaluators sharing the machine model:

* :meth:`HaloBenchmark.run_des` — message-level simulation (used at
  small scale and by the validation tests);
* :meth:`HaloBenchmark.time_analytic` — static congestion analysis:
  route every message of a phase over the torus once, find the
  most-loaded link, and combine the bandwidth term with the per-message
  overhead/latency terms.  Link loads scale linearly with the halo
  width, so the routing work is done once per (grid, mapping) and
  reused across the sweep.

The mapping sensitivity of Fig. 2c/d emerges from the congestion
analysis: mappings that fold the virtual process grid badly onto the
torus concentrate halo traffic onto few links.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..machines.modes import Mode, resolve_mode
from ..machines.specs import MachineSpec
from ..simmpi import Cluster
from ..simmpi.cost import CostModel
from ..topology.mapping import Mapping
from ..topology.partition import allocate
from ..topology.torus import Torus3D
from .exchange import halo_program, HaloSpec, neighbors2d, WORD_BYTES
from .protocols import get_protocol

__all__ = ["HaloBenchmark", "HaloPoint", "best_mapping"]


@dataclass(frozen=True)
class HaloPoint:
    """One point of a HALO curve."""

    machine: str
    grid: Tuple[int, int]
    mapping: str
    words: int
    protocol: str
    seconds: float


@dataclass(frozen=True)
class _PhaseShape:
    """Mapping-dependent structure of one exchange phase (unit halo)."""

    #: most-loaded directed link, in units of N words
    max_link_units: float
    #: longest route among the phase's messages, in hops
    max_hops: int
    #: number of network (inter-node) messages the busiest rank sends
    net_msgs: int
    #: number of shared-memory messages the busiest rank sends
    shm_msgs: int


class HaloBenchmark:
    """HALO on one machine/mode/grid/mapping configuration."""

    def __init__(
        self,
        machine: MachineSpec,
        grid: Tuple[int, int],
        mode: Mode | str = "VN",
        mapping: str = "TXYZ",
    ) -> None:
        self.machine = machine
        self.grid = grid
        self.mode = resolve_mode(machine, mode)
        self.mapping_name = mapping.upper()
        ranks = grid[0] * grid[1]
        nodes = self.mode.nodes_for_ranks(ranks)
        self.partition = allocate(machine, nodes)
        self.mapping = Mapping(
            self.mapping_name, self.partition.torus_shape, self.mode.tasks_per_node
        )
        if self.mapping.size < ranks:
            raise ValueError(
                f"grid {grid} needs {ranks} ranks; mapping offers {self.mapping.size}"
            )
        self.ranks = ranks
        self.cost = CostModel(machine, self.mode.mode, ranks, partition=self.partition)
        self._torus = Torus3D(self.partition.torus_shape, machine.torus)
        self._phases: Optional[List[_PhaseShape]] = None

    # ------------------------------------------------------------------
    # analytic path
    # ------------------------------------------------------------------
    def _analyze_phases(self) -> List[_PhaseShape]:
        """Route all messages of both phases once (unit halo width)."""
        if self._phases is not None:
            return self._phases
        phases = []
        for phase in (0, 1):
            loads: Dict[tuple, float] = {}
            max_hops = 0
            worst_net, worst_shm = 0, 0
            per_rank_counts: Dict[int, Tuple[int, int]] = {}
            for rank in range(self.ranks):
                nb = neighbors2d(rank, self.grid)
                if phase == 0:
                    msgs = [(nb["north"], 1.0), (nb["south"], 2.0)]
                else:
                    msgs = [(nb["west"], 1.0), (nb["east"], 2.0)]
                net = shm = 0
                src_node = self.mapping.node_of(rank)
                for peer, units in msgs:
                    dst_node = self.mapping.node_of(peer)
                    if src_node == dst_node:
                        shm += 1
                        continue
                    net += 1
                    route = self._torus.route(src_node, dst_node)
                    max_hops = max(max_hops, len(route))
                    for key in route:
                        loads[key] = loads.get(key, 0.0) + units
                worst_net = max(worst_net, net)
                worst_shm = max(worst_shm, shm)
            phases.append(
                _PhaseShape(
                    max_link_units=max(loads.values()) if loads else 0.0,
                    max_hops=max_hops,
                    net_msgs=worst_net,
                    shm_msgs=worst_shm,
                )
            )
        self._phases = phases
        return phases

    def time_analytic(self, words: int, protocol: str = "ISEND_IRECV") -> float:
        """Predicted seconds for one full (two-phase) exchange."""
        if words < 1:
            raise ValueError("words must be >= 1")
        proto = get_protocol(protocol)
        mpi = self.machine.mpi
        link_bw = (
            self.machine.torus.link_bandwidth
            / self.partition.contention_multiplier
        )
        total = 0.0
        for shape in self._analyze_phases():
            n_bytes = words * WORD_BYTES  # north/west message
            s_bytes = 2 * words * WORD_BYTES  # south/east message
            biggest = s_bytes
            msgs = shape.net_msgs + shape.shm_msgs
            overhead = msgs * (mpi.send_overhead + mpi.recv_overhead)
            overhead += msgs * 2 * proto.setup_overhead
            if biggest > mpi.eager_threshold:
                overhead += shape.net_msgs * mpi.rendezvous_overhead
            latency = mpi.latency + shape.max_hops * self.machine.torus.hop_latency
            # Bandwidth terms: contended links, own injection, shm copies.
            t_link = shape.max_link_units * words * WORD_BYTES / link_bw
            own_bytes = (n_bytes + s_bytes) * (shape.net_msgs / 2.0)
            t_inject = own_bytes / self.cost.p2p_bandwidth
            t_shm = (
                shape.shm_msgs * (n_bytes + s_bytes) / 2.0
            ) / self.cost.shm_bandwidth()
            transfer = max(t_link, t_inject) + t_shm
            if proto.serializes:
                # Sendrecv pairs run back to back: two latency charges
                # and no overlap between the two directions.
                total += overhead + 2 * latency + transfer * 1.15
            else:
                total += overhead + latency + transfer
        return total

    # ------------------------------------------------------------------
    # message-level path
    # ------------------------------------------------------------------
    def run_des(
        self, words: int, protocol: str = "ISEND_IRECV", iterations: int = 1
    ) -> float:
        """Simulate the exchange at message level; mean seconds/iteration."""
        spec = HaloSpec(grid=self.grid, words=words)
        proto = get_protocol(protocol)
        cluster = Cluster(
            self.machine,
            ranks=self.ranks,
            mode=self.mode.mode,
            mapping=self.mapping_name,
            partition=self.partition,
        )
        res = cluster.run(halo_program, spec, proto, iterations)
        return max(res.returns) / iterations

    # ------------------------------------------------------------------
    def sweep(
        self,
        words_list: List[int],
        protocol: str = "ISEND_IRECV",
    ) -> List[HaloPoint]:
        """Analytic sweep over halo widths (one Fig. 2 curve)."""
        return [
            HaloPoint(
                machine=self.machine.name,
                grid=self.grid,
                mapping=self.mapping_name,
                words=w,
                protocol=protocol,
                seconds=self.time_analytic(w, protocol),
            )
            for w in words_list
        ]


def best_mapping(
    machine: MachineSpec,
    grid: Tuple[int, int],
    words: int,
    mappings: List[str],
    mode: Mode | str = "VN",
) -> Tuple[str, float]:
    """The cheapest mapping for a configuration (Fig. 2e/f uses this)."""
    best: Tuple[str, float] | None = None
    for name in mappings:
        t = HaloBenchmark(machine, grid, mode=mode, mapping=name).time_analytic(words)
        if best is None or t < best[1]:
            best = (name, t)
    assert best is not None
    return best
