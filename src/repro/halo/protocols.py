"""Messaging protocols for the HALO exchange (paper Fig. 2a/b).

The HALO suite implements the same exchange over several MPI-1
protocols; the paper compared them and found "performance is relatively
insensitive to the choice of protocol, though MPI_SENDRECV is slower
than the other options for certain halo sizes."

Each protocol drives one *phase* of the exchange (a set of sends plus
the matching receives) with a different completion structure:

* ``ISEND_IRECV``  — post all irecvs, all isends, wait on everything
  (fully overlapped; the suite's usual best performer).
* ``IRECV_SEND``   — pre-post receives, then *blocking* sends.
* ``PERSISTENT``   — like ISEND_IRECV but with reused (persistent)
  requests, saving a little per-message setup.
* ``SENDRECV``     — paired MPI_Sendrecv calls, which serialize the
  two directions of a phase.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

__all__ = ["Protocol", "PROTOCOLS", "get_protocol"]

#: (peer, nbytes, tag) triples.
SendSpec = Tuple[int, int, int]
RecvSpec = Tuple[int, int, int]


@dataclass(frozen=True)
class Protocol:
    """One messaging strategy for a HALO phase."""

    name: str
    #: extra per-message software cost in seconds (request setup etc.)
    setup_overhead: float
    #: whether the phase's exchanges are serialized pairwise
    serializes: bool

    def exchange(self, comm, sends: List[SendSpec], recvs: List[RecvSpec]):
        """Run one phase: all ``sends`` and the matching ``recvs``."""
        if self.serializes:
            # MPI_Sendrecv: pair each send with a receive; pairs run
            # one after the other.
            for (dst, sb, stag), (src, rb, rtag) in zip(sends, recvs):
                if self.setup_overhead:
                    yield comm.env.timeout(self.setup_overhead)
                yield from comm.sendrecv(
                    dst=dst, send_bytes=sb, src=src, tag=stag, recv_tag=rtag
                )
            return
        # Overlapped: pre-post receives, issue sends, complete all.
        if self.setup_overhead:
            yield comm.env.timeout(self.setup_overhead * (len(sends) + len(recvs)))
        reqs = [comm.irecv(src=src, tag=rtag) for (src, _rb, rtag) in recvs]
        sreqs = [comm.isend(dst, nbytes, tag=stag) for (dst, nbytes, stag) in sends]
        yield from comm.waitall(reqs + sreqs)


PROTOCOLS: dict[str, Protocol] = {
    p.name: p
    for p in (
        Protocol("ISEND_IRECV", setup_overhead=0.1e-6, serializes=False),
        Protocol("IRECV_SEND", setup_overhead=0.1e-6, serializes=False),
        Protocol("PERSISTENT", setup_overhead=0.0, serializes=False),
        Protocol("SENDRECV", setup_overhead=0.0, serializes=True),
    )
}


def get_protocol(name: str) -> Protocol:
    """Look up a protocol by (case-insensitive) name."""
    try:
        return PROTOCOLS[name.upper()]
    except KeyError:
        raise KeyError(
            f"unknown protocol {name!r}; known: {sorted(PROTOCOLS)}"
        ) from None
