"""The HALO benchmark's exchange operator (paper Section II.B.1).

"The HALO benchmark simulates the nearest neighbor exchange of a 1-2
row/column 'halo' from a two-dimensional array.  In particular, if
there are 'N' words on each row/column of the halo, the benchmark
begins by exchanging 'N' words with the logically north process and
'2N' words with the logically south process.  Once these have arrived,
it then exchanges 'N' words with the logically west process and '2N'
words with the logically east process."

Words are 32-bit.  This module provides:

* :func:`halo_exchange_numpy` — a real 2-D domain-decomposed halo
  exchange over numpy arrays, verified cell-by-cell (tests).
* :func:`halo_program` — the DES rank program implementing the same
  schedule with a configurable messaging protocol.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from ..simmpi.comm import RankComm
from .protocols import Protocol

__all__ = ["WORD_BYTES", "HaloSpec", "halo_exchange_numpy", "halo_program", "neighbors2d"]

#: HALO words are 32-bit.
WORD_BYTES = 4


@dataclass(frozen=True)
class HaloSpec:
    """One HALO configuration: process grid and halo width."""

    grid: Tuple[int, int]  # (PX, PY) virtual process grid
    words: int  # N: words per row/column of the halo

    def __post_init__(self) -> None:
        px, py = self.grid
        if px < 1 or py < 1:
            raise ValueError(f"invalid process grid {self.grid}")
        if self.words < 1:
            raise ValueError("halo words must be >= 1")

    @property
    def ranks(self) -> int:
        return self.grid[0] * self.grid[1]

    @property
    def north_bytes(self) -> int:
        """N words north/west."""
        return self.words * WORD_BYTES

    @property
    def south_bytes(self) -> int:
        """2N words south/east."""
        return 2 * self.words * WORD_BYTES

    @property
    def total_bytes_per_rank(self) -> int:
        """All payload a rank sends in one full exchange (both phases)."""
        return 2 * (self.north_bytes + self.south_bytes)


def neighbors2d(rank: int, grid: Tuple[int, int]) -> Dict[str, int]:
    """Periodic 2-D grid neighbours of ``rank`` (row-major layout)."""
    px, py = grid
    if not 0 <= rank < px * py:
        raise ValueError(f"rank {rank} outside grid {grid}")
    i, j = rank % px, rank // px
    return {
        "north": i + ((j - 1) % py) * px,
        "south": i + ((j + 1) % py) * px,
        "west": (i - 1) % px + j * px,
        "east": (i + 1) % px + j * px,
    }


def halo_exchange_numpy(
    grid: Tuple[int, int] = (4, 4), local: int = 8, rng_seed: int = 2
) -> float:
    """Execute a real halo exchange over numpy subdomains.

    Builds a periodic global field, splits it row-major across the
    grid, performs the copy-based exchange, and returns the maximum
    absolute error of every rank's halo against the global field —
    exactly 0.0 when the exchange is correct.
    """
    px, py = grid
    n_ranks = px * py
    rng = np.random.default_rng(rng_seed)
    gx, gy = px * local, py * local
    world = rng.random((gy, gx))

    def interior(rank: int) -> np.ndarray:
        i, j = rank % px, rank // px
        return world[j * local : (j + 1) * local, i * local : (i + 1) * local]

    # Each rank's padded array with 1-cell halo.
    fields = {}
    for r in range(n_ranks):
        f = np.zeros((local + 2, local + 2))
        f[1:-1, 1:-1] = interior(r)
        fields[r] = f

    # Exchange: copy edges to neighbours' halos (the "message").
    for r in range(n_ranks):
        nb = neighbors2d(r, grid)
        fields[nb["north"]][-1, 1:-1] = fields[r][1, 1:-1]
        fields[nb["south"]][0, 1:-1] = fields[r][-2, 1:-1]
        fields[nb["west"]][1:-1, -1] = fields[r][1:-1, 1]
        fields[nb["east"]][1:-1, 0] = fields[r][1:-1, -2]

    # Verify against the periodic global field.
    err = 0.0
    for r in range(n_ranks):
        i, j = r % px, r // px
        f = fields[r]
        up = world[(j * local - 1) % gy, i * local : (i + 1) * local]
        down = world[((j + 1) * local) % gy, i * local : (i + 1) * local]
        left = world[j * local : (j + 1) * local, (i * local - 1) % gx]
        right = world[j * local : (j + 1) * local, ((i + 1) * local) % gx]
        err = max(
            err,
            float(np.max(np.abs(f[0, 1:-1] - up))),
            float(np.max(np.abs(f[-1, 1:-1] - down))),
            float(np.max(np.abs(f[1:-1, 0] - left))),
            float(np.max(np.abs(f[1:-1, -1] - right))),
        )
    return err


def halo_program(comm: RankComm, spec: HaloSpec, protocol: Protocol, iterations: int = 1):
    """DES rank program: the two-phase HALO exchange, timed.

    Phase 1 (north/south) completes before phase 2 (east/west) begins,
    matching the benchmark's description.  A rank sends N words to its
    north neighbour and 2N to its south neighbour; consequently it
    receives 2N *from* the north (its north's south-send) and N from
    the south.  Returns elapsed seconds.
    """
    nb = neighbors2d(comm.rank, spec.grid)
    n_b, s_b = spec.north_bytes, spec.south_bytes
    t0 = comm.now
    for it in range(iterations):
        base = 100 * it
        # Phase 1: north/south.  Tag 0 marks northbound, 1 southbound.
        yield from protocol.exchange(
            comm,
            sends=[(nb["north"], n_b, base + 0), (nb["south"], s_b, base + 1)],
            recvs=[(nb["south"], n_b, base + 0), (nb["north"], s_b, base + 1)],
        )
        # Phase 2: west/east (tags 2 westbound, 3 eastbound).
        yield from protocol.exchange(
            comm,
            sends=[(nb["west"], n_b, base + 2), (nb["east"], s_b, base + 3)],
            recvs=[(nb["east"], n_b, base + 2), (nb["west"], s_b, base + 3)],
        )
    return comm.now - t0
