"""The Wallcraft HALO benchmark (paper Section II.B.1, Figure 2)."""

from .bench import best_mapping, HaloBenchmark, HaloPoint
from .exchange import halo_exchange_numpy, halo_program, HaloSpec, neighbors2d, WORD_BYTES
from .protocols import get_protocol, Protocol, PROTOCOLS

__all__ = [
    "WORD_BYTES",
    "HaloSpec",
    "halo_exchange_numpy",
    "halo_program",
    "neighbors2d",
    "Protocol",
    "PROTOCOLS",
    "get_protocol",
    "HaloBenchmark",
    "HaloPoint",
    "best_mapping",
]
