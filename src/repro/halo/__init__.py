"""The Wallcraft HALO benchmark (paper Section II.B.1, Figure 2)."""

from .exchange import (
    WORD_BYTES,
    HaloSpec,
    halo_exchange_numpy,
    halo_program,
    neighbors2d,
)
from .protocols import Protocol, PROTOCOLS, get_protocol
from .bench import HaloBenchmark, HaloPoint, best_mapping

__all__ = [
    "WORD_BYTES",
    "HaloSpec",
    "halo_exchange_numpy",
    "halo_program",
    "neighbors2d",
    "Protocol",
    "PROTOCOLS",
    "get_protocol",
    "HaloBenchmark",
    "HaloPoint",
    "best_mapping",
]
