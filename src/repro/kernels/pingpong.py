"""Ping-pong latency/bandwidth (the HPCC communication rows of Table 2).

Runs both as a DES program (real message-level simulation) and as an
analytic query, for any pair of ranks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..machines.modes import Mode
from ..machines.specs import MachineSpec
from ..simmpi import Cluster, CostModel

__all__ = ["PingPongResult", "run_pingpong_des", "pingpong_analytic"]


@dataclass(frozen=True)
class PingPongResult:
    machine: str
    nbytes: int
    latency_us: float  # one-way latency for this size
    bandwidth_gbs: float  # payload bandwidth at this size


def run_pingpong_des(
    machine: MachineSpec,
    nbytes: int = 8,
    repeats: int = 10,
    mode: Mode | str = "SMP",
) -> PingPongResult:
    """Message-level ping-pong between two nodes, averaged over repeats."""
    if repeats < 1:
        raise ValueError("repeats must be >= 1")

    def program(comm):
        for _ in range(repeats):
            if comm.rank == 0:
                yield from comm.send(1, nbytes=nbytes)
                yield from comm.recv(src=1)
            else:
                yield from comm.recv(src=0)
                yield from comm.send(0, nbytes=nbytes)
        return comm.now

    cluster = Cluster(machine, ranks=2, mode=mode)
    res = cluster.run(program)
    rtt = res.elapsed / repeats
    one_way = rtt / 2.0
    return PingPongResult(
        machine=machine.name,
        nbytes=nbytes,
        latency_us=one_way * 1e6,
        bandwidth_gbs=(nbytes / one_way) / 1e9 if one_way > 0 else 0.0,
    )


def pingpong_analytic(
    machine: MachineSpec,
    nbytes: int = 8,
    mode: Mode | str = "SMP",
    hops: Optional[float] = 1.0,
) -> PingPongResult:
    """Closed-form ping-pong between adjacent nodes."""
    cost = CostModel(machine, mode, ranks=2)
    one_way = cost.p2p_time(nbytes, hops=hops)
    return PingPongResult(
        machine=machine.name,
        nbytes=nbytes,
        latency_us=one_way * 1e6,
        bandwidth_gbs=(nbytes / one_way) / 1e9 if one_way > 0 else 0.0,
    )
