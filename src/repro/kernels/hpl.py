"""High Performance Linpack (HPCC HPL, Fig. 1a; TOP500 run, Section II.C).

* :func:`run_lu_numpy` — a real right-looking blocked LU factorization
  with partial pivoting, verified by reconstruction (tests).
* :class:`HplModel` — scalable performance model.  HPL time is modeled
  as ``max(compute, panel-communication)`` plus pivot-search latency:
  compute at the tuned-DGEMM rate, communication as the O(N^2/sqrt(P))
  panel broadcast volume at point-to-point bandwidth.  At the paper's
  configurations the model lands within a few percent of the published
  Rmax values (see tests/kernels/test_hpl.py).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..machines.modes import Mode, resolve_mode
from ..machines.specs import MachineSpec
from ..memmodel.workingset import hpcc_problem_size
from ..simmpi.cost import CostModel

__all__ = ["hpl_flops", "run_lu_numpy", "HplModel", "HplResult", "block_size_for"]


def hpl_flops(n: int) -> float:
    """The standard HPL flop count: 2/3 n^3 + 3/2 n^2."""
    if n < 1:
        raise ValueError("n must be >= 1")
    return (2.0 / 3.0) * n**3 + 1.5 * n**2


def block_size_for(machine: MachineSpec) -> int:
    """The HPL blocking factor NB the paper used per machine.

    Section II.A: "we used 144 and 168 on the BG/P and XT,
    respectively" (the BG/L value follows BG/P; NB=96 was the TOP500
    run's choice, passed explicitly by that bench).
    """
    return 144 if machine.name.startswith("BG") else 168


@dataclass(frozen=True)
class LuRun:
    """Result of a real LU factorization."""

    n: int
    residual: float  # ||PA - LU|| / (||A|| n eps)
    pivot_growth: float


def run_lu_numpy(n: int = 128, block: int = 32, rng_seed: int = 5) -> LuRun:
    """Blocked right-looking LU with partial pivoting, then verify.

    This is the computational heart of HPL, executed for real at
    laptop scale: factor A into P, L, U and measure the scaled residual
    (HPL's own correctness figure of merit).
    """
    if n < 1 or block < 1:
        raise ValueError("n and block must be >= 1")
    rng = np.random.default_rng(rng_seed)
    a0 = rng.random((n, n)) - 0.5
    a = a0.copy()
    piv = np.arange(n)

    for k0 in range(0, n, block):
        k1 = min(k0 + block, n)
        # Panel factorization with partial pivoting.
        for k in range(k0, k1):
            p = k + int(np.argmax(np.abs(a[k:, k])))
            if p != k:
                a[[k, p], :] = a[[p, k], :]
                piv[[k, p]] = piv[[p, k]]
            if a[k, k] != 0.0:
                a[k + 1 :, k] /= a[k, k]
                if k + 1 < k1:
                    a[k + 1 :, k + 1 : k1] -= np.outer(
                        a[k + 1 :, k], a[k, k + 1 : k1]
                    )
        # Update the trailing matrix (the DGEMM that dominates HPL).
        if k1 < n:
            l_panel = a[k1:, k0:k1]
            lu_block = a[k0:k1, k0:k1]
            # Solve the row block: U12 = L11^-1 A12 (unit lower tri).
            for k in range(k0, k1):
                a[k + 1 : k1, k1:] -= np.outer(a[k + 1 : k1, k], a[k, k1:])
            a[k1:, k1:] -= l_panel @ a[k0:k1, k1:]

    lower = np.tril(a, -1) + np.eye(n)
    upper = np.triu(a)
    pa = a0[piv, :]
    resid = np.linalg.norm(pa - lower @ upper, ord=np.inf)
    scale = np.linalg.norm(a0, ord=np.inf) * n * np.finfo(float).eps
    return LuRun(n=n, residual=resid / scale, pivot_growth=float(np.abs(upper).max()))


@dataclass(frozen=True)
class HplResult:
    """One modeled HPL run."""

    machine: str
    processes: int
    n: int
    gflops: float
    efficiency: float  # fraction of aggregate peak
    seconds: float


class HplModel:
    """Scalable HPL performance model for a machine + mode."""

    #: headroom above the Table-3 sustained efficiency that the
    #: communication terms consume at the calibration scale
    _EFF_HEADROOM = 1.025

    def __init__(self, machine: MachineSpec, mode: Mode | str = "VN") -> None:
        self.machine = machine
        self.mode = resolve_mode(machine, mode)

    def problem_size(self, processes: int, fill_fraction: float = 0.80) -> int:
        """The HPCC-guideline N for ``processes`` ranks (80% of memory)."""
        return hpcc_problem_size(
            self.mode.memory_per_task,
            processes,
            fill_fraction=fill_fraction,
            block=block_size_for(self.machine),
        )

    def run(
        self,
        processes: int,
        n: Optional[int] = None,
        nb: Optional[int] = None,
        fill_fraction: float = 0.80,
    ) -> HplResult:
        """Model one HPL execution and return rate/efficiency."""
        if processes < 1:
            raise ValueError("processes must be >= 1")
        n = self.problem_size(processes, fill_fraction) if n is None else n
        nb = block_size_for(self.machine) if nb is None else nb
        cost = CostModel(self.machine, self.mode.mode, processes)

        flops = hpl_flops(n)
        # Smaller blocking factors sustain a little less of peak (more
        # panel work per DGEMM flop); the paper's TOP500 run (NB=96)
        # sustained 76.7% vs the HPCC run's (NB=144) 78.5%.
        nb_factor = 1.0 - 3.5 / nb
        eff = min(1.0, self.machine.hpl_efficiency * self._EFF_HEADROOM * nb_factor)
        agg_rate = processes * self.mode.peak_flops_per_task * eff
        t_compute = flops / agg_rate

        # Panel broadcasts/row swaps: each process touches O(N^2/sqrt(P))
        # bytes of panel traffic over the run.
        comm_bytes = 8.0 * n * n / math.sqrt(processes)
        t_comm = comm_bytes / cost.p2p_bandwidth if processes > 1 else 0.0

        # Pivot search: one small allreduce per column block per sqrt(P)
        # column of the process grid.
        steps = max(1, n // nb)
        t_pivot = steps * cost.allreduce_time(16, dtype="float64") if processes > 1 else 0.0

        seconds = max(t_compute, t_comm) + t_pivot
        gflops = flops / seconds / 1e9
        peak = processes * self.mode.peak_flops_per_task / 1e9
        return HplResult(
            machine=self.machine.name,
            processes=processes,
            n=n,
            gflops=gflops,
            efficiency=gflops / peak,
            seconds=seconds,
        )

    def top500_run(self) -> HplResult:
        """The paper's Section II.C configuration on the ORNL BG/P.

        "one problem of size 614399, block size 96, process grid size
        64x128" on 8192 cores, filling ~70% of memory; the measured
        score was 2.140e4 GFlop/s.
        """
        return self.run(processes=64 * 128, n=614399, nb=96)
