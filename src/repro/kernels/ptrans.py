"""PTRANS: parallel matrix transpose (Fig. 1c).

* :func:`run_ptrans_numpy` — a real block-cyclic distributed transpose
  executed in-process over simulated rank buffers; verified exactly.
* :class:`PtransModel` — performance model.  A global transpose moves
  the entire matrix across the process grid's anti-diagonal, so the
  paper calls it a bisection-bandwidth stress test.  Fragmented XT
  allocations share links with other jobs, giving the run-to-run
  variability the paper observed ("a higher degree of variability on
  the XT ... susceptible to fragmentation").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..machines.modes import Mode, resolve_mode
from ..machines.specs import MachineSpec
from ..memmodel.workingset import hpcc_problem_size
from ..simengine import make_rng
from ..simmpi.cost import CostModel

__all__ = ["run_ptrans_numpy", "PtransModel", "PtransResult"]


def run_ptrans_numpy(
    n: int = 64, grid: Tuple[int, int] = (2, 2), block: int = 8, rng_seed: int = 9
) -> float:
    """Distributed block-cyclic A = A^T + B; returns max abs error.

    Implements the actual PTRANS data movement: each process owns the
    block-cyclic pieces of A and B; the transpose requires exchanging
    blocks between grid positions (p, q) and (q, p).  The distributed
    result is compared against the dense reference.
    """
    pr, pc = grid
    if n % (block * pr) or n % (block * pc):
        raise ValueError("n must be divisible by block*grid in each dimension")
    rng = np.random.default_rng(rng_seed)
    a = rng.random((n, n))
    b = rng.random((n, n))
    reference = a.T + b

    # Owner of global block (bi, bj) in a block-cyclic layout.
    def owner(bi: int, bj: int) -> Tuple[int, int]:
        return (bi % pr, bj % pc)

    nb = n // block
    # "Distribute": each process holds a dict of its blocks.
    blocks = {}
    for bi in range(nb):
        for bj in range(nb):
            blocks[(bi, bj)] = a[
                bi * block : (bi + 1) * block, bj * block : (bj + 1) * block
            ].copy()

    # Exchange: for the transpose, block (bi,bj) of A^T comes from
    # block (bj,bi) of A — owned, in general, by a different process.
    out = np.empty_like(a)
    exchanged = 0
    for bi in range(nb):
        for bj in range(nb):
            src_owner = owner(bj, bi)
            dst_owner = owner(bi, bj)
            if src_owner != dst_owner:
                exchanged += 1  # would be an MPI message
            out[
                bi * block : (bi + 1) * block, bj * block : (bj + 1) * block
            ] = blocks[(bj, bi)].T
    out += b
    assert exchanged > 0 or pr * pc == 1
    return float(np.max(np.abs(out - reference)))


@dataclass(frozen=True)
class PtransResult:
    machine: str
    processes: int
    n: int
    gb_per_s: float


class PtransModel:
    """PTRANS rate model: transpose volume over bisection bandwidth."""

    #: fraction of raw bisection bandwidth a real PTRANS achieves
    #: (routing imbalance, protocol overheads)
    _EFFICIENCY = 0.45

    def __init__(self, machine: MachineSpec, mode: Mode | str = "VN") -> None:
        self.machine = machine
        self.mode = resolve_mode(machine, mode)

    def run(
        self,
        processes: int,
        n: Optional[int] = None,
        rng: Optional[np.random.Generator] = None,
        utilization: float = 0.7,
    ) -> PtransResult:
        """Model one PTRANS run (a fresh allocation each call: on the
        XT this is where the run-to-run spread comes from)."""
        if processes < 1:
            raise ValueError("processes must be >= 1")
        cost = CostModel(
            self.machine,
            self.mode.mode,
            processes,
            rng=rng if rng is not None else make_rng(),
            utilization=utilization,
        )
        if n is None:
            n = hpcc_problem_size(self.mode.memory_per_task, processes, 0.80)
        matrix_bytes = 8.0 * n * n
        # All but the diagonal blocks cross the grid; ~half crosses the
        # machine bisection in each direction.
        cross_bytes = matrix_bytes / 2.0
        bis = cost._torus.bisection_bandwidth() / cost.partition.contention_multiplier
        t_net = cross_bytes / (bis * self._EFFICIENCY)
        # Local copy in/out of send buffers at memory bandwidth.
        t_mem = 2.0 * matrix_bytes / (
            processes * self.mode.stream_bw_per_task
        )
        seconds = max(t_net, t_mem)
        return PtransResult(
            machine=self.machine.name,
            processes=processes,
            n=n,
            gb_per_s=matrix_bytes / seconds / 1e9,
        )
