"""DGEMM: dense matrix-matrix multiply (HPCC single/EP test, Table 2).

Two faces, like every kernel in this package:

* :func:`run_dgemm_numpy` — actually multiplies matrices (numpy/BLAS)
  and verifies the result; used for correctness tests.
* :class:`DgemmModel` — predicts the 2008 machines' rates from the
  machine model.  DGEMM is compute-bound at any reasonable size, so the
  rate is ``peak x dgemm_efficiency`` per core; the paper's Table 2
  commentary ("the BG/P's lower clock rate ... likely reason for its
  smaller processing rate on the DGEMM") is then immediate.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..machines.modes import Mode
from ..machines.specs import MachineSpec
from ..memmodel.roofline import KernelWork, Roofline

__all__ = ["dgemm_flops", "run_dgemm_numpy", "DgemmModel"]


def dgemm_flops(n: int, m: int | None = None, k: int | None = None) -> float:
    """Flop count of C += A(n x k) * B(k x m): 2 n m k."""
    m = n if m is None else m
    k = n if k is None else k
    if min(n, m, k) < 1:
        raise ValueError("matrix dimensions must be >= 1")
    return 2.0 * n * m * k


@dataclass(frozen=True)
class DgemmRun:
    """Result of an actual DGEMM execution."""

    n: int
    seconds: float
    gflops: float
    max_error: float


def run_dgemm_numpy(n: int = 256, rng_seed: int = 11) -> DgemmRun:
    """Execute C = A @ B + C and verify against a reference computation."""
    import time

    if n < 1:
        raise ValueError("n must be >= 1")
    rng = np.random.default_rng(rng_seed)
    a = rng.random((n, n))
    b = rng.random((n, n))
    c = rng.random((n, n))
    c0 = c.copy()
    t0 = time.perf_counter()  # simlint: ignore[determinism-hazard]
    c += a @ b
    dt = time.perf_counter() - t0  # simlint: ignore[determinism-hazard]
    # Spot-check a few entries against explicit dot products.
    idx = rng.integers(0, n, size=(8, 2))
    err = max(
        abs(c[i, j] - (c0[i, j] + float(a[i, :] @ b[:, j]))) for i, j in idx
    )
    return DgemmRun(
        n=n,
        seconds=dt,
        gflops=dgemm_flops(n) / dt / 1e9 if dt > 0 else 0.0,
        max_error=err,
    )


class DgemmModel:
    """Predicted DGEMM rate on a modeled machine (HPCC Table 2 rows)."""

    def __init__(self, machine: MachineSpec, mode: Mode | str = "VN") -> None:
        self.machine = machine
        self.roofline = Roofline(machine, mode)

    def rate_per_process_gflops(self, n: int = 4096) -> float:
        """Sustained GFlop/s of one process running a local DGEMM.

        ``n`` barely matters once the kernel is blocked for cache; the
        blocked kernel streams each matrix panel once per block pass.
        """
        eff = self.machine.node.core.dgemm_efficiency
        # A cache-blocked DGEMM moves roughly 3 matrices x n^2 doubles
        # from DRAM per n/nb passes; at typical nb this is far below
        # the compute time, so the roofline resolves compute-bound.
        work = KernelWork(
            flops=dgemm_flops(n),
            dram_bytes=3.0 * 8.0 * n * n,
            flop_efficiency=eff,
        )
        return self.roofline.rate_gflops(work)

    def single_equals_ep(self) -> bool:
        """DGEMM is compute-bound: EP rate equals single-process rate
        (unlike STREAM, Table 2)."""
        return True
