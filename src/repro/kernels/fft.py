"""FFT kernel (HPCC single/EP/MPI FFT; Fig. 1b).

* :func:`run_fft_numpy` — a real radix-2 iterative Cooley-Tukey FFT,
  verified against ``numpy.fft`` (tests exercise it).
* :class:`FftModel` — performance model.  A large 1-D FFT makes
  O(log n / log(cache factor)) passes through memory, so it is
  memory-bandwidth bound on both 2008 machines; the parallel (MPI)
  version adds the global transposes (alltoall) of the six-step
  algorithm.  Table 2 commentary: "the XT's larger problem size and
  comparable memory bandwidth account at least partially for the
  difference in performance".
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..machines.modes import Mode, resolve_mode
from ..machines.specs import MachineSpec
from ..simmpi.cost import CostModel

__all__ = ["fft_flops", "run_fft_numpy", "FftModel"]


def fft_flops(n: int) -> float:
    """HPCC's FFT flop count: 5 n log2(n)."""
    if n < 2 or n & (n - 1):
        raise ValueError("n must be a power of two >= 2")
    return 5.0 * n * math.log2(n)


def run_fft_numpy(n: int = 1024, rng_seed: int = 3) -> float:
    """Iterative radix-2 FFT; returns max abs error vs numpy.fft.fft."""
    if n < 2 or n & (n - 1):
        raise ValueError("n must be a power of two >= 2")
    rng = np.random.default_rng(rng_seed)
    x = rng.random(n) + 1j * rng.random(n)

    # Bit-reversal permutation.
    levels = n.bit_length() - 1
    idx = np.arange(n)
    rev = np.zeros(n, dtype=int)
    for b in range(levels):
        rev |= ((idx >> b) & 1) << (levels - 1 - b)
    y = x[rev].astype(complex)

    # Iterative butterflies.
    size = 2
    while size <= n:
        half = size // 2
        w = np.exp(-2j * np.pi * np.arange(half) / size)
        y2 = y.reshape(-1, size)
        even = y2[:, :half].copy()
        odd = y2[:, half:] * w
        y2[:, :half] = even + odd
        y2[:, half:] = even - odd
        size *= 2

    return float(np.max(np.abs(y - np.fft.fft(x))))


@dataclass(frozen=True)
class FftResult:
    machine: str
    processes: int
    n_global: int
    gflops_total: float
    gflops_per_process: float


class FftModel:
    """HPCC FFT performance model (single-process and MPI variants)."""

    #: fraction of a pass's data that stays in cache between passes for
    #: a tuned (four-step cache-blocked) FFT — it makes ~3 full sweeps
    #: of memory instead of log2(n).
    _MEMORY_PASSES = 3.0
    #: flops fraction of peak the butterfly inner loop sustains when
    #: compute-bound (complex arithmetic maps poorly to FMA pipes)
    _FLOP_EFF = 0.35

    def __init__(self, machine: MachineSpec, mode: Mode | str = "VN") -> None:
        self.machine = machine
        self.mode = resolve_mode(machine, mode)

    def local_problem_size(self, fill_fraction: float = 0.40) -> int:
        """Per-process FFT length: HPCC sizes the (complex) vector plus
        workspace to a fraction of memory; rounded down to a power of 2."""
        elems = int(self.mode.memory_per_task * fill_fraction / 16)
        return 1 << max(1, elems.bit_length() - 1)

    def single_process_gflops(self, n: Optional[int] = None) -> float:
        """One process transforming its local vector (Table 2 rows)."""
        n = self.local_problem_size() if n is None else n
        flops = fft_flops(n)
        t_flop = flops / (self.mode.peak_flops_per_task * self._FLOP_EFF)
        bytes_moved = self._MEMORY_PASSES * 16.0 * n * 2  # read + write
        t_mem = bytes_moved / self.mode.stream_bw_per_task
        return flops / max(t_flop, t_mem) / 1e9

    def mpi_run(self, processes: int, fill_fraction: float = 0.40) -> FftResult:
        """The MPI FFT: local work + two alltoall transposes (Fig. 1b)."""
        if processes < 1:
            raise ValueError("processes must be >= 1")
        n_local = self.local_problem_size(fill_fraction)
        n_global = n_local * processes
        flops_local = fft_flops(n_local) + 5.0 * n_local * math.log2(max(2, processes))
        t_flop = flops_local / (self.mode.peak_flops_per_task * self._FLOP_EFF)
        t_mem = self._MEMORY_PASSES * 32.0 * n_local / self.mode.stream_bw_per_task
        t_local = max(t_flop, t_mem)
        t_comm = 0.0
        if processes > 1:
            cost = CostModel(self.machine, self.mode.mode, processes)
            per_pair = 16.0 * n_local / processes
            t_comm = 2.0 * cost.alltoall_time(per_pair)
        total_flops = processes * flops_local
        seconds = t_local + t_comm
        g_total = total_flops / seconds / 1e9
        return FftResult(
            machine=self.machine.name,
            processes=processes,
            n_global=n_global,
            gflops_total=g_total,
            gflops_per_process=g_total / processes,
        )
