"""HPCC kernels: real small-scale implementations + scalable models."""

from .dgemm import DgemmModel, dgemm_flops, run_dgemm_numpy
from .hpl import HplModel, HplResult, hpl_flops, run_lu_numpy, block_size_for
from .fft import FftModel, fft_flops, run_fft_numpy
from .ptrans import PtransModel, PtransResult, run_ptrans_numpy
from .randomaccess import RandomAccessModel, GupsResult, run_randomaccess_numpy
from .pingpong import PingPongResult, pingpong_analytic, run_pingpong_des
from .ring import RingResult, random_ring_analytic, run_random_ring_des

__all__ = [
    "DgemmModel",
    "dgemm_flops",
    "run_dgemm_numpy",
    "HplModel",
    "HplResult",
    "hpl_flops",
    "run_lu_numpy",
    "block_size_for",
    "FftModel",
    "fft_flops",
    "run_fft_numpy",
    "PtransModel",
    "PtransResult",
    "run_ptrans_numpy",
    "RandomAccessModel",
    "GupsResult",
    "run_randomaccess_numpy",
    "PingPongResult",
    "pingpong_analytic",
    "run_pingpong_des",
    "RingResult",
    "random_ring_analytic",
    "run_random_ring_des",
]
