"""HPCC kernels: real small-scale implementations + scalable models."""

from .dgemm import dgemm_flops, DgemmModel, run_dgemm_numpy
from .fft import fft_flops, FftModel, run_fft_numpy
from .hpl import block_size_for, hpl_flops, HplModel, HplResult, run_lu_numpy
from .pingpong import pingpong_analytic, PingPongResult, run_pingpong_des
from .ptrans import PtransModel, PtransResult, run_ptrans_numpy
from .randomaccess import GupsResult, RandomAccessModel, run_randomaccess_numpy
from .ring import random_ring_analytic, RingResult, run_random_ring_des

__all__ = [
    "DgemmModel",
    "dgemm_flops",
    "run_dgemm_numpy",
    "HplModel",
    "HplResult",
    "hpl_flops",
    "run_lu_numpy",
    "block_size_for",
    "FftModel",
    "fft_flops",
    "run_fft_numpy",
    "PtransModel",
    "PtransResult",
    "run_ptrans_numpy",
    "RandomAccessModel",
    "GupsResult",
    "run_randomaccess_numpy",
    "PingPongResult",
    "pingpong_analytic",
    "run_pingpong_des",
    "RingResult",
    "random_ring_analytic",
    "run_random_ring_des",
]
