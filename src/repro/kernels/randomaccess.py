"""RandomAccess (GUPS) — HPCC's network-latency stress test (Fig. 1d).

* :func:`run_randomaccess_numpy` — the real HPCC update kernel
  (xor-shift address stream, table xor-updates), self-verifying the
  way HPCC does: running the stream twice restores the table.
* :class:`RandomAccessModel` — performance model for the stock
  algorithm and the ``RA_SANDIA_OPT2`` bucketed variant the paper also
  measured.  Remote updates dominate: the stock code sends tiny
  messages (latency-bound); the Sandia variant aggregates updates into
  buckets routed software-hypercube-style (bandwidth-bound), which is
  why it wins at scale.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..machines.modes import Mode, resolve_mode
from ..machines.specs import MachineSpec
from ..memmodel.cache import CacheModel
from ..simmpi.cost import CostModel

__all__ = ["run_randomaccess_numpy", "RandomAccessModel", "GupsResult"]

#: The HPCC polynomial for the pseudo-random address stream.
_POLY = 0x0000000000000007


def _ra_stream(count: int, seed: int = 1) -> np.ndarray:
    """HPCC-style pseudo-random 64-bit stream (simplified LFSR)."""
    out = np.empty(count, dtype=np.uint64)
    x = np.uint64(seed if seed != 0 else 1)
    for i in range(count):
        hi = bool(x & np.uint64(1 << 63))
        x = np.uint64((int(x) << 1) & 0xFFFFFFFFFFFFFFFF)
        if hi:
            x ^= np.uint64(_POLY)
        out[i] = x
    return out


def run_randomaccess_numpy(log2_table: int = 10, updates_factor: int = 4) -> bool:
    """Run the real update kernel and self-verify.

    Each update does ``table[addr & (size-1)] ^= addr``.  Replaying the
    identical stream undoes every xor, so the table must return to its
    initial state — HPCC's own verification idea.
    """
    size = 1 << log2_table
    table = np.arange(size, dtype=np.uint64)
    initial = table.copy()
    stream = _ra_stream(size * updates_factor)
    idx = (stream & np.uint64(size - 1)).astype(np.int64)
    for _ in range(2):  # apply twice: xor is an involution
        # note: np.bitwise_xor.at handles repeated indices correctly
        np.bitwise_xor.at(table, idx, stream)
    return bool(np.array_equal(table, initial))


@dataclass(frozen=True)
class GupsResult:
    machine: str
    processes: int
    gups_total: float
    gups_per_process: float
    variant: str


class RandomAccessModel:
    """GUPS prediction for the stock and SANDIA_OPT2 variants."""

    #: stock HPCC look-ahead window (updates batched per send)
    _STOCK_BATCH = 1024
    #: Sandia bucket size in updates
    _SANDIA_BUCKET = 4096

    def __init__(self, machine: MachineSpec, mode: Mode | str = "VN") -> None:
        self.machine = machine
        self.mode = resolve_mode(machine, mode)
        self.cache = CacheModel(machine)

    def local_update_rate(self) -> float:
        """Updates/s one process achieves on its own table share.

        The table fills half of memory, so every access misses cache
        and pays DRAM latency; a few misses overlap on the XT's
        out-of-order Opteron, none on the BG/P's in-order PPC450.
        """
        table_bytes = int(self.mode.memory_per_task // 2)
        lat = self.cache.random_access_latency(
            table_bytes, cores_sharing=self.mode.tasks_per_node
        )
        overlap = 1.0 if self.machine.name.startswith("BG") else 2.5
        return overlap / lat

    def run(self, processes: int, variant: str = "stock") -> GupsResult:
        """Model a ``processes``-rank MPI RandomAccess run."""
        if processes < 1:
            raise ValueError("processes must be >= 1")
        if variant not in ("stock", "sandia"):
            raise ValueError("variant must be 'stock' or 'sandia'")
        local = self.local_update_rate()
        if processes == 1:
            per = local
        else:
            cost = CostModel(self.machine, self.mode.mode, processes)
            remote_frac = (processes - 1) / processes
            if variant == "stock":
                # Updates travel in small batched messages; each batch
                # pays a p2p latency and carries _STOCK_BATCH/P updates
                # for each destination on average — latency dominated.
                batch = max(1.0, self._STOCK_BATCH / processes)
                t_per_update = cost.p2p_time(8.0 * batch) / batch
            else:
                # Sandia OPT2: hypercube-routed buckets; each update is
                # forwarded log2(P) times but in big aggregated messages.
                hops = math.log2(processes)
                t_per_update = hops * (8.0 / cost.random_ring_bandwidth())
            net_rate = 1.0 / t_per_update
            per = 1.0 / (remote_frac / net_rate + (1 - remote_frac) / local)
        return GupsResult(
            machine=self.machine.name,
            processes=processes,
            gups_total=per * processes / 1e9,
            gups_per_process=per / 1e9,
            variant=variant,
        )
