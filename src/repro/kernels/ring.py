"""Random-ring latency/bandwidth (HPCC communication rows of Table 2).

Every rank sends to a randomly chosen ring neighbour, so messages take
average-distance routes and share links — the metric that separates a
low-latency torus (BG/P) from a high-bandwidth one (XT).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..machines.modes import Mode
from ..machines.specs import MachineSpec
from ..simengine import make_rng
from ..simmpi import Cluster, CostModel

__all__ = ["RingResult", "random_ring_analytic", "run_random_ring_des"]


@dataclass(frozen=True)
class RingResult:
    machine: str
    processes: int
    latency_us: float
    bandwidth_gbs_per_process: float


def random_ring_analytic(
    machine: MachineSpec, processes: int, mode: Mode | str = "VN"
) -> RingResult:
    """Closed-form random-ring figures for Table 2."""
    cost = CostModel(machine, mode, processes)
    return RingResult(
        machine=machine.name,
        processes=processes,
        latency_us=cost.random_ring_latency() * 1e6,
        bandwidth_gbs_per_process=cost.random_ring_bandwidth() / 1e9,
    )


def run_random_ring_des(
    machine: MachineSpec,
    processes: int = 32,
    nbytes: int = 1 << 17,
    mode: Mode | str = "VN",
    rng: Optional[np.random.Generator] = None,
) -> RingResult:
    """Message-level random ring: a random permutation defines the ring;
    each rank exchanges ``nbytes`` with both ring neighbours."""
    if processes < 2:
        raise ValueError("need at least 2 processes for a ring")
    rng = rng if rng is not None else make_rng()
    perm = rng.permutation(processes)
    position = {int(r): i for i, r in enumerate(perm)}

    def program(comm):
        i = position[comm.rank]
        right = int(perm[(i + 1) % processes])
        left = int(perm[(i - 1) % processes])
        t0 = comm.now
        req_l = comm.irecv(src=left, tag=1)
        req_r = comm.irecv(src=right, tag=2)
        yield from comm.send(right, nbytes, tag=1)
        yield from comm.send(left, nbytes, tag=2)
        yield from comm.waitall([req_l, req_r])
        return comm.now - t0

    cluster = Cluster(machine, ranks=processes, mode=mode)
    res = cluster.run(program)
    mean_t = float(np.mean(res.returns))
    return RingResult(
        machine=machine.name,
        processes=processes,
        latency_us=mean_t * 1e6,
        bandwidth_gbs_per_process=(2.0 * nbytes / mean_t) / 1e9,
    )
