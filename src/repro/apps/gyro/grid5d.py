"""GYRO's five-dimensional grid and decomposition rules.

"GYRO uses a five-dimensional grid and propagates the system forward
in time using a fourth-order, explicit, Eulerian algorithm" (paper
Section III.D).  The two benchmark problems:

* **B1-std**: 16 toroidal modes, electrostatic, kinetic electrons —
  grid 16 x 140 x 8 x 8 x 20, runs on multiples of 16 processes,
  "smaller but requires more work per grid point".
* **B3-gtc**: 64 toroidal modes, adiabatic ions — grid
  64 x 400 x 8 x 8 x 20, runs on multiples of 64, FFT-based field
  solve with large timesteps.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["GyroProblem", "B1_STD", "B3_GTC", "B3_GTC_MODIFIED"]


@dataclass(frozen=True)
class GyroProblem:
    """One GYRO benchmark configuration."""

    name: str
    n_toroidal: int  # also the process-count granularity
    n_radial: int
    n_theta: int
    n_lambda: int  # pitch angle
    n_energy: int
    timesteps: int
    #: flops per 5-D grid point per step (B1 does more per point)
    flops_per_point: float
    #: resident bytes per 5-D grid point per rank share
    bytes_per_point: float
    #: uses the FFT (alltoall-transpose) field solve?
    fft_field_solve: bool
    #: bytes of *replicated* state every rank holds regardless of the
    #: process count (geometry, field arrays, FFT workspaces) — what
    #: actually forces B3-gtc into DUAL mode on BG/P
    base_memory: float = 200e6
    #: distributed-array transposes (MPI_ALLTOALL) per timestep
    transposes_per_step: int = 8
    #: small global reductions per timestep (collision operator,
    #: implicit electron advance, diagnostics)
    reductions_per_step: int = 20
    #: payload of each small reduction, bytes
    reduction_bytes: int = 256

    def __post_init__(self) -> None:
        if min(
            self.n_toroidal, self.n_radial, self.n_theta, self.n_lambda, self.n_energy
        ) < 1:
            raise ValueError("all grid extents must be >= 1")

    @property
    def points(self) -> int:
        return (
            self.n_toroidal
            * self.n_radial
            * self.n_theta
            * self.n_lambda
            * self.n_energy
        )

    def valid_process_count(self, processes: int) -> bool:
        """GYRO runs on multiples of the toroidal mode count."""
        return processes >= 1 and processes % self.n_toroidal == 0

    def memory_per_rank(self, processes: int) -> float:
        """Resident bytes per rank (distribution + field arrays)."""
        if processes < 1:
            raise ValueError("processes must be >= 1")
        return self.points * self.bytes_per_point / processes + self.base_memory


#: "a 16 toroidal-mode electrostatic (electrons and ions, 1 field) case
#: on a 16x140x8x8x20 grid ... 500 timesteps"
B1_STD = GyroProblem(
    name="B1-std",
    n_toroidal=16,
    n_radial=140,
    n_theta=8,
    n_lambda=8,
    n_energy=20,
    timesteps=500,
    flops_per_point=4000.0,  # kinetic electrons + collisions
    bytes_per_point=640.0,
    fft_field_solve=False,
    base_memory=200e6,
    transposes_per_step=8,
    reductions_per_step=60,  # kinetic electrons: collision + implicit solves
)

#: "a 64 toroidal-mode adiabatic (ions only, 1 field) case on a
#: 64x400x8x8x20 grid ... 100 timesteps"
B3_GTC = GyroProblem(
    name="B3-gtc",
    n_toroidal=64,
    n_radial=400,
    n_theta=8,
    n_lambda=8,
    n_energy=20,
    timesteps=100,
    flops_per_point=1500.0,  # adiabatic: "simple field solves"
    bytes_per_point=880.0,
    fft_field_solve=True,
    base_memory=700e6,  # replicated arrays force DUAL mode on BG/P
    transposes_per_step=4,
    reductions_per_step=20,
)

#: "The problem was modified to fit the memory of a BG/P" — the weak-
#: scaling base problem whose ENERGY GRID stays constant as processes
#: increase (Fig. 7c).
B3_GTC_MODIFIED = GyroProblem(
    name="B3-gtc-modified",
    n_toroidal=64,
    n_radial=400,
    n_theta=8,
    n_lambda=8,
    n_energy=8,
    timesteps=100,
    flops_per_point=1500.0,
    bytes_per_point=400.0,
    fft_field_solve=True,
    base_memory=350e6,  # "modified to fit the memory of a BG/P"
    transposes_per_step=4,
    reductions_per_step=20,
)
