"""GYRO: gyrokinetic tokamak microturbulence (paper Section III.D, Fig. 7)."""

from .grid5d import GyroProblem, B1_STD, B3_GTC, B3_GTC_MODIFIED
from .fieldsolve import poisson_solve_fft, fieldsolve_flops
from .model import (
    GyroModel,
    GyroResult,
    GYRO_SUSTAINED_GFLOPS,
    UNOPTIMIZED_ALLTOALL_PENALTY,
)

__all__ = [
    "GyroProblem",
    "B1_STD",
    "B3_GTC",
    "B3_GTC_MODIFIED",
    "poisson_solve_fft",
    "fieldsolve_flops",
    "GyroModel",
    "GyroResult",
    "GYRO_SUSTAINED_GFLOPS",
    "UNOPTIMIZED_ALLTOALL_PENALTY",
]
