"""GYRO: gyrokinetic tokamak microturbulence (paper Section III.D, Fig. 7)."""

from .fieldsolve import fieldsolve_flops, poisson_solve_fft
from .grid5d import B1_STD, B3_GTC, B3_GTC_MODIFIED, GyroProblem
from .model import GYRO_SUSTAINED_GFLOPS, GyroModel, GyroResult, UNOPTIMIZED_ALLTOALL_PENALTY

__all__ = [
    "GyroProblem",
    "B1_STD",
    "B3_GTC",
    "B3_GTC_MODIFIED",
    "poisson_solve_fft",
    "fieldsolve_flops",
    "GyroModel",
    "GyroResult",
    "GYRO_SUSTAINED_GFLOPS",
    "UNOPTIMIZED_ALLTOALL_PENALTY",
]
