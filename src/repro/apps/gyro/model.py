"""GYRO performance model (paper Fig. 7).

Mechanisms encoded:

* **Strong scaling** (Fig. 7a/b): per-rank compute shrinks as 1/P
  while transpose (MPI_ALLTOALL) costs grow — "it is clear that the
  XT4 quickly runs out of work per process as the process count
  increases, while the BG/P system continues to scale.  This is a
  direct consequence of the difference in processor speed."
* **DUAL mode** (Fig. 7b): B3-gtc does not fit VN-mode memory on BG/P
  ("the code had to be run in 'DUAL' mode due to memory requirements");
  :meth:`GyroModel.pick_mode` reproduces the decision.
* **Weak scaling** (Fig. 7c): the modified B3-gtc keeps the energy
  grid constant as processes grow.  The BG/P build did not use the
  optimized collectives ("this may be due to the lack of use of
  optimized collectives"), modeled by an alltoall penalty that is
  visible exactly where transpose cost is a mid-size fraction of the
  step (the paper's 128–1024 range).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ...machines.modes import Mode, ModeConfig, resolve_mode
from ...machines.specs import MachineSpec
from ...simmpi.cost import CostModel
from .fieldsolve import fieldsolve_flops
from .grid5d import B1_STD, GyroProblem

__all__ = ["GyroModel", "GyroResult", "GYRO_SUSTAINED_GFLOPS", "UNOPTIMIZED_ALLTOALL_PENALTY"]

#: Sustained per-core GFlop/s on GYRO (calibrated: the XT4 is ~2.5x
#: faster per process, "a direct consequence of ... processor speed").
GYRO_SUSTAINED_GFLOPS: Dict[str, float] = {
    "BG/P": 0.38,
    "BG/L": 0.36,  # same core family as BG/P: "almost the same" (Fig. 7c)
    "XT3": 0.75,
    "XT4/DC": 0.85,
    "XT4/QC": 0.95,
}

#: The paper's BG/P runs did not enable the optimized alltoall.
UNOPTIMIZED_ALLTOALL_PENALTY = 1.6


@dataclass(frozen=True)
class GyroResult:
    machine: str
    problem: str
    processes: int
    mode: str
    seconds_total: float
    seconds_per_step: float

    def speedup_vs(self, base: "GyroResult") -> float:
        """Strong-scaling speedup relative to a baseline run."""
        return base.seconds_total / self.seconds_total


class GyroModel:
    """GYRO on one machine."""

    def __init__(
        self,
        machine: MachineSpec,
        problem: GyroProblem = B1_STD,
        optimized_collectives: Optional[bool] = None,
    ) -> None:
        self.machine = machine
        self.problem = problem
        try:
            self.sustained = GYRO_SUSTAINED_GFLOPS[machine.name] * 1e9
        except KeyError:
            raise KeyError(f"no GYRO calibration for {machine.name!r}") from None
        # Default: the BG/P experiments of the paper lacked the
        # optimized collectives; everything else had tuned MPI.
        if optimized_collectives is None:
            optimized_collectives = machine.name != "BG/P"
        self.optimized_collectives = optimized_collectives

    # ------------------------------------------------------------------
    def pick_mode(self, processes: int) -> ModeConfig:
        """Densest mode whose per-task memory fits the problem.

        Reproduces the paper's B3-gtc DUAL-mode requirement on BG/P.
        """
        need = self.problem.memory_per_rank(processes)
        from ...machines.modes import available_modes

        for mode in reversed(available_modes(self.machine)):  # densest first
            cfg = resolve_mode(self.machine, mode)
            if cfg.memory_per_task >= need:
                return cfg
        raise MemoryError(
            f"{self.problem.name} does not fit any execution mode of "
            f"{self.machine.name} at {processes} processes "
            f"({need / 2**30:.2f} GiB/rank needed)"
        )

    def run(self, processes: int, mode: Mode | str | None = None) -> GyroResult:
        """Model one run (``problem.timesteps`` steps)."""
        prob = self.problem
        if not prob.valid_process_count(processes):
            raise ValueError(
                f"{prob.name} runs on multiples of {prob.n_toroidal} processes"
            )
        cfg = self.pick_mode(processes) if mode is None else resolve_mode(self.machine, mode)
        cost = CostModel(self.machine, cfg.mode, processes)

        pts_per_rank = prob.points / processes
        t_compute = pts_per_rank * prob.flops_per_point / self.sustained
        t_compute += fieldsolve_flops(prob.n_radial, prob.n_toroidal) / (
            processes * self.sustained
        )

        # Transposes: the distribution function crosses the machine
        # between the toroidal- and velocity-space decompositions
        # several times per step (RK stages x fields).
        trans_bytes = prob.points * 8.0
        per_pair = trans_bytes / processes**2
        t_trans = prob.transposes_per_step * cost.alltoall_time(per_pair)
        if not self.optimized_collectives:
            t_trans *= UNOPTIMIZED_ALLTOALL_PENALTY
        # Small reductions (collisions, implicit solves, diagnostics):
        # latency-bound — where the BG/P tree network pays off.
        t_red = prob.reductions_per_step * cost.allreduce_time(
            prob.reduction_bytes, dtype="float64"
        )

        per_step = t_compute + t_trans + t_red
        return GyroResult(
            machine=self.machine.name,
            problem=prob.name,
            processes=processes,
            mode=cfg.mode.value,
            seconds_total=per_step * prob.timesteps,
            seconds_per_step=per_step,
        )

    def strong_scaling(self, process_counts: List[int]) -> List[GyroResult]:
        """A Fig. 7a/b curve; invalid/oversized points are skipped."""
        out = []
        for p in process_counts:
            try:
                out.append(self.run(p))
            except (ValueError, MemoryError):
                continue
        return out

    def weak_scaling(
        self, process_counts: List[int], base_processes: int = 64
    ) -> List[GyroResult]:
        """Fig. 7c: grow the problem with the process count, keeping the
        energy grid fixed ("weakly scaled by keeping the 'ENERGY GRID'
        size constant as the number of processes increases")."""
        from dataclasses import replace

        out = []
        for p in process_counts:
            scale = p / base_processes
            prob = replace(
                self.problem,
                n_radial=max(4, int(self.problem.n_radial * scale)),
            )
            model = GyroModel(
                self.machine, prob, optimized_collectives=self.optimized_collectives
            )
            try:
                out.append(model.run(p))
            except (ValueError, MemoryError):
                continue
        return out
