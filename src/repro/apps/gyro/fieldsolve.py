"""GYRO's FFT-based field solve, implemented for real.

"The B3-gtc problem can use an FFT-based approach ... The primary
communication costs result from calls to MPI_ALLTOALL to transpose
distributed arrays" (paper Section III.D).

The real kernel: solve the gyrokinetic Poisson equation
``(-d^2/dx^2 + a) phi = rho`` spectrally on a periodic radial grid —
the tests verify it against the operator applied back.  In the
distributed code each transform needs a transpose (alltoall), which is
what the performance model charges.
"""

from __future__ import annotations

import numpy as np

__all__ = ["poisson_solve_fft", "fieldsolve_flops"]


def poisson_solve_fft(rho: np.ndarray, alpha: float = 1.0, length: float = 1.0) -> np.ndarray:
    """Solve (-d2/dx2 + alpha) phi = rho, periodic, via FFT."""
    if alpha <= 0:
        raise ValueError("alpha must be positive for invertibility")
    n = rho.shape[-1]
    k = 2.0 * np.pi * np.fft.fftfreq(n, d=length / n)
    denom = k**2 + alpha
    return np.real(np.fft.ifft(np.fft.fft(rho, axis=-1) / denom, axis=-1))


def fieldsolve_flops(n_radial: int, n_toroidal: int) -> float:
    """Per-step flop cost of the spectral field solve."""
    if n_radial < 2 or n_toroidal < 1:
        raise ValueError("invalid grid")
    per_mode = 5.0 * n_radial * max(1.0, np.log2(n_radial))
    return 2.0 * per_mode * n_toroidal  # forward + inverse
