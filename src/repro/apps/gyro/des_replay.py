"""Replay GYRO's per-step schedule on the message-level simulator.

Per step: distribution-function compute, ``transposes_per_step``
MPI_ALLTOALLs (the FFT field-solve transposes of Section III.D), and
the small collision/diagnostic reductions.  Cross-validates the Fig. 7
model, in particular the mechanism tests care about: the alltoall and
allreduce costs that separate the machines at scale.
"""

from __future__ import annotations

from dataclasses import dataclass

from ...machines.specs import MachineSpec
from ...simmpi import Cluster
from .fieldsolve import fieldsolve_flops
from .grid5d import B1_STD, GyroProblem
from .model import GYRO_SUSTAINED_GFLOPS, UNOPTIMIZED_ALLTOALL_PENALTY

__all__ = ["replay_steps", "GyroReplayResult"]


@dataclass(frozen=True)
class GyroReplayResult:
    machine: str
    problem: str
    processes: int
    seconds_per_step: float
    messages: int


def replay_steps(
    machine: MachineSpec,
    processes: int,
    problem: GyroProblem = B1_STD,
    steps: int = 1,
    mode: str = "VN",
) -> GyroReplayResult:
    """Run ``steps`` GYRO timesteps at message level."""
    if steps < 1:
        raise ValueError("steps must be >= 1")
    if not problem.valid_process_count(processes):
        raise ValueError(
            f"{problem.name} runs on multiples of {problem.n_toroidal}"
        )
    sustained = GYRO_SUSTAINED_GFLOPS[machine.name] * 1e9
    t_compute = (
        problem.points * problem.flops_per_point / processes
        + fieldsolve_flops(problem.n_radial, problem.n_toroidal) / processes
    ) / sustained
    per_pair = max(1, int(problem.points * 8.0 / processes**2))
    # The paper's BG/P runs lacked the optimized alltoall; replay the
    # penalty as extra payload so the DES carries it too.
    if machine.name == "BG/P":
        per_pair = int(per_pair * UNOPTIMIZED_ALLTOALL_PENALTY)

    def program(comm):
        t0 = comm.now
        for _ in range(steps):
            yield from comm.compute(seconds=t_compute)
            for _t in range(problem.transposes_per_step):
                yield from comm.alltoall(per_pair)
            for _r in range(problem.reductions_per_step):
                yield from comm.allreduce(problem.reduction_bytes, dtype="float64")
        return comm.now - t0

    cluster = Cluster(machine, ranks=processes, mode=mode)
    res = cluster.run(program)
    return GyroReplayResult(
        machine=machine.name,
        problem=problem.name,
        processes=processes,
        seconds_per_step=max(res.returns) / steps,
        messages=res.messages,
    )
