"""POP's displaced-pole grid and block decomposition.

The tenth-degree benchmark (paper Section III.A): "a displaced-pole
longitude-latitude horizontal grid with the pole of the grid shifted
into Greenland ... 0.1 degree in longitude (10km) around the equator,
utilizing a 3600 x 2400 horizontal grid and 40 vertical levels."

The land mask matters for performance: ocean-only points do work, so
blocks with more land are cheaper, and the imbalance between blocks
grows as blocks shrink (more ranks) — the baroclinic load imbalance the
paper measured with its timing barrier (Fig. 4b).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Tuple

import numpy as np

__all__ = ["PopGrid", "TENTH_DEGREE", "decompose", "Imbalance"]


@dataclass(frozen=True)
class PopGrid:
    """A POP horizontal grid with vertical levels."""

    nx: int
    ny: int
    levels: int
    #: fraction of horizontal points that are ocean
    ocean_fraction: float = 0.71

    def __post_init__(self) -> None:
        if min(self.nx, self.ny, self.levels) < 1:
            raise ValueError("grid extents must be >= 1")
        if not 0 < self.ocean_fraction <= 1:
            raise ValueError("ocean_fraction must be in (0, 1]")

    @property
    def horizontal_points(self) -> int:
        return self.nx * self.ny

    @property
    def points3d(self) -> int:
        return self.horizontal_points * self.levels

    def land_mask(self, seed: int = 101) -> np.ndarray:
        """A synthetic continental land mask (True = land).

        Continents are built from a few smoothed random blobs so that
        land is *spatially coherent* — which is what creates block-level
        load imbalance (random scatter would average out).
        """
        rng = np.random.default_rng(seed)
        field = rng.standard_normal((self.ny // 8 + 2, self.nx // 8 + 2))
        # Smooth by repeated neighbour averaging, then upsample.
        for _ in range(6):
            field = 0.25 * (
                np.roll(field, 1, 0)
                + np.roll(field, -1, 0)
                + np.roll(field, 1, 1)
                + np.roll(field, -1, 1)
            )
        big = np.kron(field, np.ones((8, 8)))[: self.ny, : self.nx]
        # Threshold at the requested land fraction.
        cut = np.quantile(big, self.ocean_fraction)
        return big > cut


#: The paper's tenth-degree benchmark grid.
TENTH_DEGREE = PopGrid(nx=3600, ny=2400, levels=40)


@dataclass(frozen=True)
class Imbalance:
    """Block-level work imbalance for one decomposition."""

    processes: int
    mean_points: float
    max_points: float

    @property
    def factor(self) -> float:
        """max/mean work ratio (1.0 = perfectly balanced)."""
        return self.max_points / self.mean_points if self.mean_points > 0 else 1.0


def decompose(processes: int, nx: int, ny: int) -> Tuple[int, int]:
    """2-D block decomposition: the most-square process grid."""
    if processes < 1:
        raise ValueError("processes must be >= 1")
    best = (processes, 1)
    best_score = float("inf")
    p = 1
    while p * p <= processes:
        if processes % p == 0:
            q = processes // p
            # Prefer the split whose block aspect matches the grid's.
            for cand in ((p, q), (q, p)):
                bx, by = nx / cand[0], ny / cand[1]
                score = max(bx, by) / max(1e-9, min(bx, by))
                if score < best_score:
                    best_score = score
                    best = cand
        p += 1
    return best


@lru_cache(maxsize=64)
def _block_ocean_counts(
    nx: int, ny: int, px: int, py: int, ocean_fraction: float, seed: int
) -> Tuple[float, float]:
    grid = PopGrid(nx=nx, ny=ny, levels=1, ocean_fraction=ocean_fraction)
    ocean = ~grid.land_mask(seed)
    # Sum ocean points per block with integral arithmetic on the edges.
    ys = np.linspace(0, ny, py + 1, dtype=int)
    xs = np.linspace(0, nx, px + 1, dtype=int)
    counts = np.array(
        [
            ocean[ys[j] : ys[j + 1], xs[i] : xs[i + 1]].sum()
            for j in range(py)
            for i in range(px)
        ],
        dtype=float,
    )
    return float(counts.mean()), float(counts.max())


def imbalance(grid: PopGrid, processes: int, seed: int = 101) -> Imbalance:
    """Baroclinic load imbalance of a ``processes``-rank decomposition.

    Computed from the actual per-block ocean point counts of the
    synthetic mask; grows as blocks shrink, exactly the effect the
    paper isolated with its pre-barotropic timing barrier.
    """
    px, py = decompose(processes, grid.nx, grid.ny)
    if px > grid.nx or py > grid.ny:
        raise ValueError(
            f"{processes} ranks cannot tile a {grid.nx}x{grid.ny} grid"
        )
    mean_pts, max_pts = _block_ocean_counts(
        grid.nx, grid.ny, px, py, grid.ocean_fraction, seed
    )
    return Imbalance(processes=processes, mean_points=mean_pts, max_points=max_pts)
