"""The POP tenth-degree performance model (paper Fig. 4, Table 3).

Combines the baroclinic work signature, the land-mask load imbalance,
the barotropic solver signature, and the machine communication model
into per-phase times and the climate community's throughput metric,
Simulation Years per Day (SYD).

Calibration: the single per-machine constant is the sustained per-core
flop rate for POP-like irregular Fortran (:data:`POP_SUSTAINED_GFLOPS`),
set so the 8000-process points match the paper (BG/P 3.6 SYD; XT4
~3.6x faster — Fig. 4c / Table 3).  Everything else — the scaling
curves, the barotropic saturation on the XT, the BG/P's continued
scaling to 40k — is *derived* from the communication and imbalance
models.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional

from ...machines.modes import Mode, resolve_mode
from ...machines.specs import MachineSpec
from ...simmpi.cost import CostModel
from .baroclinic import BAROCLINIC_WORK, BaroclinicWork
from .barotropic import BarotropicConfig, TENTH_DEGREE_BAROTROPIC
from .grid import decompose, imbalance, PopGrid, TENTH_DEGREE
from .solvers import CHRONGEAR_SIGNATURE, SolverSignature

__all__ = ["PopModel", "PopResult", "POP_SUSTAINED_GFLOPS", "seconds_per_simday_to_syd"]

#: Sustained per-core GFlop/s running POP (calibrated to Fig. 4c/Table 3:
#: the XT4 is ~3.6x faster per process at 8000 processes; BG/P delivers
#: 3.6 SYD on 8192 cores).  POP 1.4.3 sustains ~10% of peak on the
#: in-order PPC450 and ~14% on the out-of-order Opteron.
POP_SUSTAINED_GFLOPS: Dict[str, float] = {
    "BG/P": 0.34,
    "BG/L": 0.26,
    "XT3": 1.30,
    "XT4/DC": 1.51,
    "XT4/QC": 1.45,
}

#: Baroclinic timesteps per simulated day at tenth-degree resolution.
STEPS_PER_SIMDAY = 216

#: The paper's observed failure point: "Experiments with more than
#: 40000 processes failed due to lack of memory for the large number of
#: MPI derived data types that the POP code generates."
MAX_BGP_PROCESSES = 40000


def seconds_per_simday_to_syd(seconds: float) -> float:
    """Convert wall seconds per simulated day to Simulation Years/Day."""
    if seconds <= 0:
        raise ValueError("seconds per simulated day must be positive")
    return 86400.0 / (seconds * 365.0)


@dataclass(frozen=True)
class PopResult:
    """One modeled POP configuration."""

    machine: str
    mode: str
    solver: str
    processes: int
    baroclinic_s_per_day: float
    barotropic_s_per_day: float
    imbalance_s_per_day: float  # process-0 barrier time (Fig. 4b)
    syd: float
    #: the halo-exchange share inside the baroclinic time (used by the
    #: mapping-sensitivity analysis)
    halo_s_per_day: float = 0.0

    @property
    def seconds_per_simday(self) -> float:
        return (
            self.baroclinic_s_per_day
            + self.barotropic_s_per_day
            + self.imbalance_s_per_day
        )


class PopModel:
    """POP on one machine; evaluate any process count / mode / solver."""

    def __init__(
        self,
        machine: MachineSpec,
        grid: PopGrid = TENTH_DEGREE,
        baroclinic: BaroclinicWork = BAROCLINIC_WORK,
        barotropic: BarotropicConfig = TENTH_DEGREE_BAROTROPIC,
    ) -> None:
        self.machine = machine
        self.grid = grid
        self.baroclinic = baroclinic
        self.barotropic = barotropic
        try:
            self.sustained = POP_SUSTAINED_GFLOPS[machine.name] * 1e9
        except KeyError:
            raise KeyError(
                f"no POP calibration for {machine.name!r}; add it to "
                "POP_SUSTAINED_GFLOPS"
            ) from None

    # ------------------------------------------------------------------
    def run(
        self,
        processes: int,
        mode: Mode | str = "VN",
        solver: SolverSignature = CHRONGEAR_SIGNATURE,
        enforce_memory_limit: bool = True,
    ) -> PopResult:
        """Model one configuration; returns per-phase times and SYD."""
        if processes < 1:
            raise ValueError("processes must be >= 1")
        if (
            enforce_memory_limit
            and self.machine.name == "BG/P"
            and processes > MAX_BGP_PROCESSES
        ):
            raise MemoryError(
                f"POP runs with more than {MAX_BGP_PROCESSES} processes fail "
                "on BG/P: the MPI derived datatypes POP generates exhaust "
                "node memory (paper Section III.A)"
            )
        modecfg = resolve_mode(self.machine, mode)
        cost = CostModel(self.machine, modecfg.mode, processes)

        px, py = decompose(processes, self.grid.nx, self.grid.ny)
        block_x = self.grid.nx / px
        block_y = self.grid.ny / py
        imb = imbalance(self.grid, processes)
        mean_pts3d = imb.mean_points * self.grid.levels

        # Small blocks lose efficiency to their boundary work (shorter
        # vector loops, ghost-cell arithmetic): a surface-to-volume
        # penalty that grows as blocks shrink.
        s2v = 2.0 * (block_x + block_y) / (block_x * block_y)
        block_eff = 1.0 / (1.0 + 1.2 * s2v)

        # POP's rake algorithm rebalances blocks across ranks, hiding
        # most of the raw land/ocean imbalance at modest scales; the
        # residual grows as blocks shrink toward the continent scale.
        residual = 0.8 * min(1.0, math.sqrt(processes / 40000.0))
        imb_factor = 1.0 + (imb.factor - 1.0) * residual

        # -- baroclinic ------------------------------------------------
        t_bc_compute = (
            mean_pts3d
            * self.baroclinic.flops_per_point
            / (self.sustained * block_eff)
        )
        edge = max(block_x, block_y)
        halo_bytes = int(
            self.baroclinic.halo_width
            * edge
            * self.grid.levels
            * 8
            * self.baroclinic.halo_fields
        )
        t_bc_halo = self.baroclinic.halo_exchanges * (
            2.0 * cost.p2p_time(halo_bytes, hops=1.0)
        )
        t_bc = t_bc_compute + t_bc_halo
        # Process-0 barrier time = the imbalance the paper isolated.
        t_imb = t_bc_compute * (imb_factor - 1.0)

        # -- barotropic --------------------------------------------------
        pts2d = imb.mean_points
        per_iter_compute = (
            pts2d * solver.flops_per_point / self.sustained
        )
        halo2d_bytes = int(self.barotropic.halo_width * edge * 8)
        per_iter_halo = self.barotropic.halos_per_iteration * (
            2.0 * cost.p2p_time(halo2d_bytes, hops=1.0)
        )
        per_iter_reduce = solver.allreduces_per_iter * cost.allreduce_time(
            solver.allreduce_bytes, dtype="float64"
        )
        t_bt = self.barotropic.iterations_per_step * (
            per_iter_compute + per_iter_halo + per_iter_reduce
        )

        per_day = STEPS_PER_SIMDAY
        bc_day = t_bc * per_day
        bt_day = t_bt * per_day
        imb_day = t_imb * per_day
        return PopResult(
            machine=self.machine.name,
            mode=modecfg.mode.value,
            solver=solver.name,
            processes=processes,
            baroclinic_s_per_day=bc_day,
            barotropic_s_per_day=bt_day,
            imbalance_s_per_day=imb_day,
            syd=seconds_per_simday_to_syd(bc_day + bt_day + imb_day),
            halo_s_per_day=t_bc_halo * per_day,
        )

    def sweep(
        self,
        process_counts: List[int],
        mode: Mode | str = "VN",
        solver: SolverSignature = CHRONGEAR_SIGNATURE,
    ) -> List[PopResult]:
        """A scaling curve (one line of Fig. 4)."""
        out = []
        for p in process_counts:
            try:
                out.append(self.run(p, mode=mode, solver=solver))
            except (MemoryError, ValueError):
                break  # the paper's curves end here too (or the machine does)
        return out

    def mapping_sensitivity(
        self,
        processes: int = 8000,
        mode: Mode | str = "VN",
        mappings: Optional[List[str]] = None,
    ) -> Dict[str, float]:
        """SYD per process-to-processor mapping.

        Reproduces the paper's Section III.A observation: "The
        difference in performance between using the TXYZ ordering and
        the best observed among the other predefined mappings was less
        than 1.4% for VN mode and less than 1% for SMP mode" — POP's
        halo traffic is too small a fraction of its runtime for the
        mapping to matter.

        Only BlueGene machines have the mapping concept.
        """
        from ...halo.bench import HaloBenchmark
        from ...topology.mapping import PAPER_FIG2_MAPPINGS

        if self.machine.tree is None:
            raise ValueError("process mappings are a BlueGene concept")
        if mappings is None:
            mappings = list(PAPER_FIG2_MAPPINGS)
        base = self.run(processes, mode=mode)
        other = base.seconds_per_simday - base.halo_s_per_day

        px, py = decompose(processes, self.grid.nx, self.grid.ny)
        # Halo width in 32-bit words, from the baroclinic exchange size.
        edge = max(self.grid.nx / px, self.grid.ny / py)
        words = max(
            1,
            int(
                self.baroclinic.halo_width
                * edge
                * self.grid.levels
                * self.baroclinic.halo_fields
                * 2  # 8-byte reals as 32-bit words
            ),
        )
        halo_times = {
            m: HaloBenchmark(self.machine, (px, py), mode=mode, mapping=m).time_analytic(words)
            for m in mappings
        }
        ref = halo_times.get("TXYZ", next(iter(halo_times.values())))
        out = {}
        for m, t in halo_times.items():
            scaled_halo = base.halo_s_per_day * (t / ref)
            out[m] = seconds_per_simday_to_syd(other + scaled_halo)
        return out

    def cores_for_syd(
        self, target_syd: float, mode: Mode | str = "VN", hi: int = 65536
    ) -> int:
        """Smallest process count reaching ``target_syd`` (Table 3's
        power-normalization question), or raise if unreachable."""
        best: Optional[int] = None
        candidates = []
        p = 64
        while p <= hi:
            candidates.append(p)
            p *= 2
        if self.machine.name == "BG/P" and hi > MAX_BGP_PROCESSES:
            # The ladder must not step over the paper's 40k memory wall.
            candidates = [c for c in candidates if c < MAX_BGP_PROCESSES]
            candidates.append(MAX_BGP_PROCESSES)
        # Walk the ladder, then bisect the bracketing interval.
        prev = None
        for p in candidates:
            try:
                r = self.run(p, mode=mode)
            except (MemoryError, ValueError):
                break
            if r.syd >= target_syd:
                best = p
                break
            prev = p
        if best is None:
            raise ValueError(
                f"{self.machine.name} cannot reach {target_syd} SYD within "
                f"{hi} processes"
            )
        if prev is None:
            return best
        lo, hi2 = prev, best
        while hi2 - lo > max(64, lo // 16):
            mid = (lo + hi2) // 2
            if self.run(mid, mode=mode).syd >= target_syd:
                hi2 = mid
            else:
                lo = mid
        return hi2
