"""The barotropic linear solvers: standard CG and Chronopoulos-Gear.

POP's barotropic phase solves a 2-D implicit system each timestep
(paper Section III.A).  The paper evaluated the standard
conjugate-gradient formulation against the Chronopoulos-Gear s-step
variant [5], whose point is *fewer global reductions per iteration*
(one fused allreduce instead of two dependent ones) at the cost of a
little extra local arithmetic — exactly the trade that matters on a
latency-dominated barotropic solve.

Both solvers are implemented for real (numpy) against the 2-D
five-point operator and verified in the tests; the performance model
reads their per-iteration communication/compute signatures from
:data:`CG_SIGNATURE` / :data:`CHRONGEAR_SIGNATURE`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

__all__ = [
    "laplacian_2d",
    "cg_solve",
    "chrongear_solve",
    "SolverSignature",
    "CG_SIGNATURE",
    "CHRONGEAR_SIGNATURE",
]


def laplacian_2d(x: np.ndarray) -> np.ndarray:
    """The 2-D five-point operator (periodic), shifted to be SPD."""
    return 5.0 * x - (
        np.roll(x, 1, 0) + np.roll(x, -1, 0) + np.roll(x, 1, 1) + np.roll(x, -1, 1)
    )


@dataclass
class SolveResult:
    x: np.ndarray
    iterations: int
    residual: float
    #: global reductions the run would have issued on a parallel machine
    reductions: int


def cg_solve(
    b: np.ndarray,
    operator: Callable[[np.ndarray], np.ndarray] = laplacian_2d,
    tol: float = 1e-10,
    max_iter: int = 1000,
) -> SolveResult:
    """Standard conjugate gradients.

    Two *dependent* global reductions per iteration (r.z and p.Ap): on
    a parallel machine each is an MPI_Allreduce that cannot overlap the
    other.
    """
    x = np.zeros_like(b)
    r = b - operator(x)
    p = r.copy()
    rs = float((r * r).sum())
    reductions = 1
    it = 0
    norm_b = float(np.sqrt((b * b).sum())) or 1.0
    while it < max_iter and np.sqrt(rs) / norm_b > tol:
        ap = operator(p)
        alpha = rs / float((p * ap).sum())
        reductions += 1  # p.Ap
        x += alpha * p
        r -= alpha * ap
        rs_new = float((r * r).sum())
        reductions += 1  # r.r
        p = r + (rs_new / rs) * p
        rs = rs_new
        it += 1
    return SolveResult(x=x, iterations=it, residual=np.sqrt(rs) / norm_b, reductions=reductions)


def chrongear_solve(
    b: np.ndarray,
    operator: Callable[[np.ndarray], np.ndarray] = laplacian_2d,
    tol: float = 1e-10,
    max_iter: int = 1000,
) -> SolveResult:
    """Chronopoulos-Gear single-reduction CG.

    Restructures the recurrences so the two inner products of an
    iteration are computed together — one *fused* allreduce per
    iteration, plus one extra vector operation ("a little slower ...
    for smaller process counts ... a little faster for larger process
    counts", paper Section III.A).
    """
    x = np.zeros_like(b)
    r = b - operator(x)
    norm_b = float(np.sqrt((b * b).sum())) or 1.0

    p = r.copy()
    s = operator(p)
    # Fused reduction: (r.r, p.s) in one allreduce.
    rho = float((r * r).sum())
    sigma = float((p * s).sum())
    reductions = 1
    it = 0
    while it < max_iter and np.sqrt(rho) / norm_b > tol:
        alpha = rho / sigma
        x += alpha * p
        r -= alpha * s
        z = operator(r)
        rho_new = float((r * r).sum())
        delta = float((r * z).sum())
        reductions += 1  # ONE fused allreduce for both dot products
        beta = rho_new / rho
        p = r + beta * p
        s = z + beta * s
        sigma = delta - beta * beta * sigma
        rho = rho_new
        it += 1
    return SolveResult(x=x, iterations=it, residual=np.sqrt(rho) / norm_b, reductions=reductions)


@dataclass(frozen=True)
class SolverSignature:
    """Per-iteration cost signature for the performance model."""

    name: str
    #: dependent allreduces per iteration
    allreduces_per_iter: int
    #: bytes per allreduce (fused reductions carry two scalars)
    allreduce_bytes: int
    #: local flops per grid point per iteration
    flops_per_point: float
    #: local memory traffic per grid point per iteration (bytes)
    bytes_per_point: float


#: Standard CG: 2 dependent 8-byte reductions, ~30 flops/point.
CG_SIGNATURE = SolverSignature(
    name="CG",
    allreduces_per_iter=2,
    allreduce_bytes=8,
    flops_per_point=30.0,
    bytes_per_point=160.0,
)

#: Chronopoulos-Gear: 1 fused 16-byte reduction, ~10% more local work.
CHRONGEAR_SIGNATURE = SolverSignature(
    name="ChronGear",
    allreduces_per_iter=1,
    allreduce_bytes=16,
    flops_per_point=33.0,
    bytes_per_point=176.0,
)
