"""POP's barotropic phase: the 2-D implicit solve.

"the barotropic phase is dominated by the solution of a 2D, implicit
system whose performance is sensitive to network latency and typically
scales poorly on all platforms" (paper Section III.A).

The phase runs a preconditioned CG solver (standard or Chronopoulos-
Gear, see :mod:`.solvers`) to convergence every timestep; its parallel
cost is iterations x (tiny local stencil + 2-D halo + one or two
global 8/16-byte reductions).  The reduction term is what
differentiates machines: the BG/P tree network keeps it flat in
process count; the XT's software allreduce grows with log(p) x
latency — the mechanism behind Fig. 4d's XT4 barotropic saturation.
"""

from __future__ import annotations

from dataclasses import dataclass


__all__ = ["BarotropicConfig", "TENTH_DEGREE_BAROTROPIC"]


@dataclass(frozen=True)
class BarotropicConfig:
    """Per-timestep structure of the barotropic solve."""

    #: CG iterations to convergence each timestep
    iterations_per_step: int
    #: halo exchanges per iteration (one, for the operator apply)
    halos_per_iteration: int
    #: halo width in points
    halo_width: int

    def __post_init__(self) -> None:
        if self.iterations_per_step < 1:
            raise ValueError("need at least one solver iteration per step")


#: Tenth-degree benchmark: the 2-D system converges in ~120 CG
#: iterations per timestep at this resolution.
TENTH_DEGREE_BAROTROPIC = BarotropicConfig(
    iterations_per_step=120,
    halos_per_iteration=1,
    halo_width=1,
)
