"""Replay POP's per-step communication schedule on the message-level
simulator.

The analytic :class:`~repro.apps.pop.model.PopModel` charges closed-form
costs for the baroclinic halo exchanges and the barotropic solver's
reductions.  This module builds the *actual* schedule — compute blocks,
4-neighbour halo isend/irecv, an allreduce per solver iteration — and
runs it as a rank program on a :class:`~repro.simmpi.Cluster`, so the
whole stack (engine -> links -> transport -> collectives -> app) is
exercised together.  Tests assert the replay agrees with the analytic
model at small scale, anchoring the Fig. 4 curves.
"""

from __future__ import annotations

from dataclasses import dataclass

from ...halo.exchange import neighbors2d
from ...machines.specs import MachineSpec
from ...simmpi import Cluster
from .baroclinic import BAROCLINIC_WORK
from .barotropic import TENTH_DEGREE_BAROTROPIC
from .grid import decompose, PopGrid
from .model import POP_SUSTAINED_GFLOPS
from .solvers import CHRONGEAR_SIGNATURE, SolverSignature

__all__ = ["replay_steps", "PopReplayResult"]


@dataclass(frozen=True)
class PopReplayResult:
    """Outcome of a message-level POP replay."""

    machine: str
    processes: int
    steps: int
    seconds_per_step: float
    messages: int

    @property
    def seconds_per_simday(self) -> float:
        from .model import STEPS_PER_SIMDAY

        return self.seconds_per_step * STEPS_PER_SIMDAY


def replay_steps(
    machine: MachineSpec,
    processes: int,
    grid: PopGrid,
    steps: int = 1,
    mode: str = "VN",
    solver: SolverSignature = CHRONGEAR_SIGNATURE,
    solver_iterations: int | None = None,
) -> PopReplayResult:
    """Run ``steps`` POP timesteps at message level.

    The per-rank compute times come from the same sustained rate the
    analytic model uses; communication happens for real on the
    simulated torus/tree.
    """
    if processes < 1 or steps < 1:
        raise ValueError("processes and steps must be >= 1")
    px, py = decompose(processes, grid.nx, grid.ny)
    sustained = POP_SUSTAINED_GFLOPS[machine.name] * 1e9
    pts2d = grid.horizontal_points / processes
    pts3d = pts2d * grid.levels
    edge = max(grid.nx / px, grid.ny / py)
    halo3d_bytes = int(
        BAROCLINIC_WORK.halo_width * edge * grid.levels * 8 * BAROCLINIC_WORK.halo_fields
    )
    halo2d_bytes = int(TENTH_DEGREE_BAROTROPIC.halo_width * edge * 8)
    iters = (
        TENTH_DEGREE_BAROTROPIC.iterations_per_step
        if solver_iterations is None
        else solver_iterations
    )
    t_bc_compute = pts3d * BAROCLINIC_WORK.flops_per_point / sustained
    t_iter_compute = pts2d * solver.flops_per_point / sustained

    def exchange(comm, nbytes: int, tag: int):
        nb = neighbors2d(comm.rank, (px, py))
        reqs = [
            comm.irecv(src=nb[d], tag=tag + i)
            for i, d in enumerate(("north", "south", "west", "east"))
        ]
        sends = []
        for i, d in enumerate(("south", "north", "east", "west")):
            sends.append(comm.isend(nb[d], nbytes, tag=tag + i))
        yield from comm.waitall(reqs + sends)

    def program(comm):
        t0 = comm.now
        for step in range(steps):
            base = 1000 * step
            # Baroclinic: compute + halo exchanges.
            with comm.phase("baroclinic"):
                yield from comm.compute(seconds=t_bc_compute)
                for e in range(BAROCLINIC_WORK.halo_exchanges):
                    yield from exchange(comm, halo3d_bytes, tag=base + 10 * e)
            # Barotropic: solver iterations.
            with comm.phase("barotropic"):
                for it in range(iters):
                    yield from comm.compute(seconds=t_iter_compute)
                    yield from exchange(comm, halo2d_bytes, tag=base + 500 + 4 * it)
                    for _ in range(solver.allreduces_per_iter):
                        yield from comm.allreduce(
                            solver.allreduce_bytes, dtype="float64"
                        )
        return comm.now - t0

    cluster = Cluster(machine, ranks=processes, mode=mode)
    res = cluster.run(program)
    return PopReplayResult(
        machine=machine.name,
        processes=processes,
        steps=steps,
        seconds_per_step=max(res.returns) / steps,
        messages=res.messages,
    )
