"""Replay POP's per-step communication schedule on the message-level
simulator.

The analytic :class:`~repro.apps.pop.model.PopModel` charges closed-form
costs for the baroclinic halo exchanges and the barotropic solver's
reductions.  This module builds the *actual* schedule — compute blocks,
4-neighbour halo isend/irecv, an allreduce per solver iteration — and
runs it as a rank program on a :class:`~repro.simmpi.Cluster`, so the
whole stack (engine -> links -> transport -> collectives -> app) is
exercised together.  Tests assert the replay agrees with the analytic
model at small scale, anchoring the Fig. 4 curves.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional, Tuple

from ...halo.exchange import neighbors2d
from ...machines.specs import MachineSpec
from ...simmpi import Cluster
from .baroclinic import BAROCLINIC_WORK
from .barotropic import TENTH_DEGREE_BAROTROPIC
from .grid import decompose, PopGrid
from .model import POP_SUSTAINED_GFLOPS
from .solvers import CHRONGEAR_SIGNATURE, SolverSignature

__all__ = [
    "replay_steps",
    "checkpointed_walltime",
    "PopReplayResult",
    "PopCheckpointReport",
]


@dataclass(frozen=True)
class PopReplayResult:
    """Outcome of a message-level POP replay."""

    machine: str
    processes: int
    steps: int
    seconds_per_step: float
    messages: int
    #: fault statistics when the replay ran under a fault plan
    faults: Any = None
    #: the :class:`~repro.recovery.RecoveryOutcome` when the replay ran
    #: under a recovery policy (``seconds_per_step`` then averages the
    #: *whole* timeline, overheads included), else ``None``
    recovery: Any = None

    @property
    def seconds_per_simday(self) -> float:
        from .model import STEPS_PER_SIMDAY

        return self.seconds_per_step * STEPS_PER_SIMDAY


@dataclass(frozen=True)
class PopCheckpointReport:
    """Checkpoint-interval-adjusted wall-clock for one POP campaign.

    The useful-work time comes from a message-level replay; the
    resilience overhead from the Young/Daly model over the machine's
    MTBF and its real I/O path (see :mod:`repro.faults.checkpoint`).
    """

    machine: str
    processes: int
    system_nodes: int
    simdays: float
    work_seconds: float
    checkpoint_seconds: float
    interval_seconds: float
    expected_seconds: float

    @property
    def inflation(self) -> float:
        return self.expected_seconds / self.work_seconds

    def format(self) -> str:
        return (
            f"POP {self.simdays:g} simdays on {self.machine} "
            f"({self.system_nodes} nodes): work {self.work_seconds / 3600:.2f} h, "
            f"checkpoint {self.checkpoint_seconds:.0f} s every "
            f"{self.interval_seconds / 60:.1f} min -> expected "
            f"{self.expected_seconds / 3600:.2f} h ({self.inflation:.3f}x)"
        )


def replay_steps(
    machine: MachineSpec,
    processes: int,
    grid: PopGrid,
    steps: int = 1,
    mode: str = "VN",
    solver: SolverSignature = CHRONGEAR_SIGNATURE,
    solver_iterations: int | None = None,
    faults: Any = None,
    reliability: Any = None,
    recovery: Any = None,
    budget: Any = None,
) -> PopReplayResult:
    """Run ``steps`` POP timesteps at message level.

    The per-rank compute times come from the same sustained rate the
    analytic model uses; communication happens for real on the
    simulated torus/tree.

    ``recovery`` (a :class:`~repro.recovery.RecoveryPolicy`) arms
    ULFM-style failure handling for ``faults`` plans that kill nodes:
    under ``mode="shrink"`` the survivors rebuild the domain
    decomposition over the live ranks and continue in place; under
    ``mode="restart"`` the whole job is rewound to the last completed
    checkpoint of the policy's schedule and re-run.  ``budget`` (a
    :class:`~repro.simengine.Budget`) bounds the run either way.
    """
    if processes < 1 or steps < 1:
        raise ValueError("processes and steps must be >= 1")
    sustained = POP_SUSTAINED_GFLOPS[machine.name] * 1e9
    iters = (
        TENTH_DEGREE_BAROTROPIC.iterations_per_step
        if solver_iterations is None
        else solver_iterations
    )

    def geometry(nranks: int) -> Tuple[Tuple[int, int], int, int, float, float]:
        """Domain decomposition over ``nranks`` (recomputed on shrink)."""
        px, py = decompose(nranks, grid.nx, grid.ny)
        pts2d = grid.horizontal_points / nranks
        pts3d = pts2d * grid.levels
        edge = max(grid.nx / px, grid.ny / py)
        halo3d = int(
            BAROCLINIC_WORK.halo_width * edge * grid.levels * 8
            * BAROCLINIC_WORK.halo_fields
        )
        halo2d = int(TENTH_DEGREE_BAROTROPIC.halo_width * edge * 8)
        t_bc = pts3d * BAROCLINIC_WORK.flops_per_point / sustained
        t_iter = pts2d * solver.flops_per_point / sustained
        return (px, py), halo3d, halo2d, t_bc, t_iter

    def exchange(comm, dims: Tuple[int, int], nbytes: int, tag: int):
        nb = neighbors2d(comm.rank, dims)
        reqs = [
            comm.irecv(src=nb[d], tag=tag + i)
            for i, d in enumerate(("north", "south", "west", "east"))
        ]
        sends = []
        for i, d in enumerate(("south", "north", "east", "west")):
            sends.append(comm.isend(nb[d], nbytes, tag=tag + i))
        yield from comm.waitall(reqs + sends)

    def one_step(comm, geom, step: int):
        dims, halo3d, halo2d, t_bc, t_iter = geom
        base = 1000 * step
        # Baroclinic: compute + halo exchanges.
        with comm.phase("baroclinic"):
            yield from comm.compute(seconds=t_bc)
            for e in range(BAROCLINIC_WORK.halo_exchanges):
                yield from exchange(comm, dims, halo3d, tag=base + 10 * e)
        # Barotropic: solver iterations.
        with comm.phase("barotropic"):
            for it in range(iters):
                yield from comm.compute(seconds=t_iter)
                yield from exchange(comm, dims, halo2d, tag=base + 500 + 4 * it)
                for _ in range(solver.allreduces_per_iter):
                    yield from comm.allreduce(
                        solver.allreduce_bytes, dtype="float64"
                    )

    if recovery is None:
        def program(comm):
            geom = geometry(comm.size)
            t0 = comm.now
            for step in range(steps):
                yield from one_step(comm, geom, step)
            return comm.now - t0

        cluster = Cluster(
            machine, ranks=processes, mode=mode, reliability=reliability
        )
        res = cluster.run(program, faults=faults, budget=budget)
        return PopReplayResult(
            machine=machine.name,
            processes=processes,
            steps=steps,
            seconds_per_step=max(res.returns) / steps,
            messages=res.messages,
            faults=res.faults,
        )

    from ...recovery import RankFailedError, run_with_recovery

    def program_factory(runtime, start_step: int):
        def program(world):
            comm = world
            geom = geometry(world.size)
            t0 = world.now
            step = start_step
            while step < steps:
                try:
                    yield from one_step(comm, geom, step)
                    runtime.end_step(comm, step)
                    yield from runtime.maybe_checkpoint(comm, step)
                    step += 1
                except RankFailedError:
                    if runtime.policy.mode != "shrink":
                        raise  # restart mode: the driver rewinds the job
                    while True:
                        if len(runtime.live_ranks()) < runtime.policy.min_ranks:
                            raise
                        try:
                            comm, step = yield from runtime.recover(world, step)
                            break
                        except RankFailedError:
                            continue  # another node died mid-recovery
                    geom = geometry(comm.size)
            return world.now - t0

        return program

    outcome = run_with_recovery(
        recovery,
        lambda env=None: Cluster(
            machine, ranks=processes, mode=mode,
            env=env, reliability=reliability,
        ),
        program_factory,
        faults=faults,
        budget=budget,
    )
    return PopReplayResult(
        machine=machine.name,
        processes=processes,
        steps=steps,
        seconds_per_step=outcome.times.walltime / steps,
        messages=outcome.result.messages,
        faults=outcome.result.faults,
        recovery=outcome,
    )


def checkpointed_walltime(
    machine: MachineSpec,
    processes: int,
    grid: PopGrid,
    simdays: float = 30.0,
    system_nodes: Optional[int] = None,
    memory_fraction: float = 0.5,
    **replay_kwargs: Any,
) -> PopCheckpointReport:
    """Checkpoint-interval-adjusted wall-clock for a POP campaign.

    One timestep is replayed at message level to get the useful-work
    rate; the Young/Daly model then adds the cost of surviving
    ``system_nodes`` nodes' worth of failures (default: the replay's
    own process count), with the checkpoint written through the
    machine's modeled I/O path.
    """
    from ...faults.checkpoint import CheckpointModel

    if simdays <= 0:
        raise ValueError("simdays must be positive")
    r = replay_steps(machine, processes, grid, steps=1, **replay_kwargs)
    work = r.seconds_per_simday * simdays
    nodes = processes if system_nodes is None else system_nodes
    model = CheckpointModel.from_machine(
        machine, nodes, memory_fraction=memory_fraction
    )
    tau = model.optimal_interval()
    return PopCheckpointReport(
        machine=machine.name,
        processes=processes,
        system_nodes=nodes,
        simdays=simdays,
        work_seconds=work,
        checkpoint_seconds=model.checkpoint_seconds,
        interval_seconds=tau,
        expected_seconds=model.expected_runtime(work, tau),
    )
