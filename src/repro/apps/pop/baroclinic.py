"""POP's baroclinic phase: the 3-D explicit part of the timestep.

"The 3D baroclinic phase typically scales well on all platforms due to
its limited nearest-neighbor communication" (paper Section III.A).

* :func:`baroclinic_step_numpy` — a real miniature baroclinic update
  (advection-diffusion of a tracer stack with a vertical implicit
  mix), used to validate conservation properties in the tests.
* :data:`BAROCLINIC_WORK` — the per-3-D-point work signature the
  performance model charges; POP 1.4.3 is a memory-intensive,
  low-arithmetic-intensity Fortran code, reflected in the constants.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["baroclinic_step_numpy", "BaroclinicWork", "BAROCLINIC_WORK"]


def baroclinic_step_numpy(
    field: np.ndarray, dt: float = 0.1, kappa: float = 0.05
) -> np.ndarray:
    """One explicit advection-diffusion step on a (levels, ny, nx) stack.

    Periodic horizontally; a simple vertical mixing couples levels.
    Conserves the tracer integral exactly (pure flux form), which the
    tests assert.
    """
    if field.ndim != 3:
        raise ValueError("field must be (levels, ny, nx)")
    f = field
    # Horizontal diffusion (flux form => conservative).
    lap = (
        np.roll(f, 1, 1) + np.roll(f, -1, 1) + np.roll(f, 1, 2) + np.roll(f, -1, 2)
        - 4.0 * f
    )
    out = f + dt * kappa * lap
    # Vertical mixing: tridiagonal-free conservative exchange.
    if f.shape[0] > 1:
        up = np.empty_like(f)
        up[1:] = f[:-1]
        up[0] = f[0]
        dn = np.empty_like(f)
        dn[:-1] = f[1:]
        dn[-1] = f[-1]
        out += dt * kappa * (up + dn - 2.0 * f)
        # Boundary corrections to keep the column sum exact.
        out[0] -= dt * kappa * (up[0] - f[0])
        out[-1] -= dt * kappa * (dn[-1] - f[-1])
    return out


@dataclass(frozen=True)
class BaroclinicWork:
    """Per-3-D-point per-step work of the full baroclinic phase."""

    flops_per_point: float
    bytes_per_point: float
    #: 2-D halo exchanges per step (momentum, tracers, diagnostics)
    halo_exchanges: int
    #: halo width in points
    halo_width: int
    #: state variables whose halos are exchanged together
    halo_fields: int


#: POP 1.4.3 tenth-degree baroclinic signature.  The flop count per
#: point-step is the standard POP estimate (~2.4 kflop: momentum,
#: two tracers, EOS, vertical mixing); the byte count reflects its
#: many-array, multiple-sweep structure (arithmetic intensity ~0.35).
BAROCLINIC_WORK = BaroclinicWork(
    flops_per_point=2400.0,
    bytes_per_point=6800.0,
    halo_exchanges=8,
    halo_width=2,
    halo_fields=3,
)
