"""POP: the Parallel Ocean Program mini-app (paper Section III.A, Fig. 4)."""

from .grid import PopGrid, TENTH_DEGREE, decompose, imbalance, Imbalance
from .solvers import (
    laplacian_2d,
    cg_solve,
    chrongear_solve,
    SolverSignature,
    CG_SIGNATURE,
    CHRONGEAR_SIGNATURE,
)
from .baroclinic import baroclinic_step_numpy, BaroclinicWork, BAROCLINIC_WORK
from .barotropic import BarotropicConfig, TENTH_DEGREE_BAROTROPIC
from .des_replay import replay_steps, PopReplayResult
from .model import (
    PopModel,
    PopResult,
    POP_SUSTAINED_GFLOPS,
    STEPS_PER_SIMDAY,
    MAX_BGP_PROCESSES,
    seconds_per_simday_to_syd,
)

__all__ = [
    "PopGrid",
    "TENTH_DEGREE",
    "decompose",
    "imbalance",
    "Imbalance",
    "laplacian_2d",
    "cg_solve",
    "chrongear_solve",
    "SolverSignature",
    "CG_SIGNATURE",
    "CHRONGEAR_SIGNATURE",
    "baroclinic_step_numpy",
    "BaroclinicWork",
    "BAROCLINIC_WORK",
    "BarotropicConfig",
    "TENTH_DEGREE_BAROTROPIC",
    "PopModel",
    "PopResult",
    "POP_SUSTAINED_GFLOPS",
    "STEPS_PER_SIMDAY",
    "MAX_BGP_PROCESSES",
    "seconds_per_simday_to_syd",
    "replay_steps",
    "PopReplayResult",
]
