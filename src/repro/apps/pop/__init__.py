"""POP: the Parallel Ocean Program mini-app (paper Section III.A, Fig. 4)."""

from .baroclinic import baroclinic_step_numpy, BAROCLINIC_WORK, BaroclinicWork
from .barotropic import BarotropicConfig, TENTH_DEGREE_BAROTROPIC
from .des_replay import PopReplayResult, replay_steps
from .grid import decompose, Imbalance, imbalance, PopGrid, TENTH_DEGREE
from .model import (
    MAX_BGP_PROCESSES,
    POP_SUSTAINED_GFLOPS,
    PopModel,
    PopResult,
    seconds_per_simday_to_syd,
    STEPS_PER_SIMDAY,
)
from .solvers import (
    CG_SIGNATURE,
    cg_solve,
    CHRONGEAR_SIGNATURE,
    chrongear_solve,
    laplacian_2d,
    SolverSignature,
)

__all__ = [
    "PopGrid",
    "TENTH_DEGREE",
    "decompose",
    "imbalance",
    "Imbalance",
    "laplacian_2d",
    "cg_solve",
    "chrongear_solve",
    "SolverSignature",
    "CG_SIGNATURE",
    "CHRONGEAR_SIGNATURE",
    "baroclinic_step_numpy",
    "BaroclinicWork",
    "BAROCLINIC_WORK",
    "BarotropicConfig",
    "TENTH_DEGREE_BAROTROPIC",
    "PopModel",
    "PopResult",
    "POP_SUSTAINED_GFLOPS",
    "STEPS_PER_SIMDAY",
    "MAX_BGP_PROCESSES",
    "seconds_per_simday_to_syd",
    "replay_steps",
    "PopReplayResult",
]
