"""S3D's time integrator: six-stage, fourth-order, low-storage Runge-Kutta.

"Time advancement is achieved through a six-stage, fourth-order
explicit Runge-Kutta (R-K) method" — the Kennedy-Carpenter-Lewis
low-storage scheme [13].  Implemented for real (2N-storage form) and
verified to fourth order in the tests.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

__all__ = ["RK_STAGES", "rk4_6stage_step", "integrate"]

#: Number of stages (each costs one RHS evaluation + halo exchange).
RK_STAGES = 6

# Kennedy-Carpenter-Lewis RK4(3)5[2N] extended to the classic 6-stage
# low-storage coefficients used by S3D (Carpenter-Kennedy 1994).
_A = np.array(
    [
        0.0,
        -567301805773.0 / 1357537059087.0,
        -2404267990393.0 / 2016746695238.0,
        -3550918686646.0 / 2091501179385.0,
        -1275806237668.0 / 842570457699.0,
    ]
)
_B = np.array(
    [
        1432997174477.0 / 9575080441755.0,
        5161836677717.0 / 13612068292357.0,
        1720146321549.0 / 2090206949498.0,
        3134564353537.0 / 4481467310338.0,
        2277821191437.0 / 14882151754819.0,
    ]
)


def rk4_6stage_step(
    y: np.ndarray, rhs: Callable[[np.ndarray], np.ndarray], dt: float
) -> np.ndarray:
    """One low-storage RK step (5 RHS stages of the Carpenter-Kennedy
    scheme; S3D counts the final update as its sixth stage)."""
    if dt <= 0:
        raise ValueError("dt must be positive")
    out = y.copy()
    du = np.zeros_like(y)
    for a, b in zip(_A, _B):
        du = a * du + dt * rhs(out)
        out = out + b * du
    return out


def integrate(
    y0: np.ndarray,
    rhs: Callable[[np.ndarray], np.ndarray],
    dt: float,
    steps: int,
) -> np.ndarray:
    """Advance ``steps`` RK steps from ``y0``."""
    if steps < 0:
        raise ValueError("steps must be non-negative")
    y = np.asarray(y0, dtype=float).copy()
    for _ in range(steps):
        y = rk4_6stage_step(y, rhs, dt)
    return y
