"""S3D: direct numerical simulation of combustion (paper Section III.C, Fig. 6)."""

from .chemistry import advance_chemistry, CHEM_FLOPS_PER_POINT, N_SPECIES, reaction_rates, SPECIES
from .model import (
    FLOPS_PER_POINT_PER_STAGE,
    N_VARS,
    pressure_wave_demo,
    S3D_SUSTAINED_GFLOPS,
    S3dModel,
    S3dResult,
)
from .rk import integrate, rk4_6stage_step, RK_STAGES
from .stencil import deriv8, deriv8_3d, DERIV_WIDTH, filter10, FILTER_WIDTH

__all__ = [
    "DERIV_WIDTH",
    "FILTER_WIDTH",
    "deriv8",
    "filter10",
    "deriv8_3d",
    "RK_STAGES",
    "rk4_6stage_step",
    "integrate",
    "SPECIES",
    "N_SPECIES",
    "reaction_rates",
    "advance_chemistry",
    "CHEM_FLOPS_PER_POINT",
    "S3dModel",
    "S3dResult",
    "S3D_SUSTAINED_GFLOPS",
    "N_VARS",
    "FLOPS_PER_POINT_PER_STAGE",
    "pressure_wave_demo",
]
