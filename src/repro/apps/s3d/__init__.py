"""S3D: direct numerical simulation of combustion (paper Section III.C, Fig. 6)."""

from .stencil import DERIV_WIDTH, FILTER_WIDTH, deriv8, filter10, deriv8_3d
from .rk import RK_STAGES, rk4_6stage_step, integrate
from .chemistry import (
    SPECIES,
    N_SPECIES,
    reaction_rates,
    advance_chemistry,
    CHEM_FLOPS_PER_POINT,
)
from .model import (
    S3dModel,
    S3dResult,
    S3D_SUSTAINED_GFLOPS,
    N_VARS,
    FLOPS_PER_POINT_PER_STAGE,
    pressure_wave_demo,
)

__all__ = [
    "DERIV_WIDTH",
    "FILTER_WIDTH",
    "deriv8",
    "filter10",
    "deriv8_3d",
    "RK_STAGES",
    "rk4_6stage_step",
    "integrate",
    "SPECIES",
    "N_SPECIES",
    "reaction_rates",
    "advance_chemistry",
    "CHEM_FLOPS_PER_POINT",
    "S3dModel",
    "S3dResult",
    "S3D_SUSTAINED_GFLOPS",
    "N_VARS",
    "FLOPS_PER_POINT_PER_STAGE",
    "pressure_wave_demo",
]
