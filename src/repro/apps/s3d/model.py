"""S3D performance model and the pressure-wave test problem (Fig. 6).

"The problem size is kept at 50^3 grid points per MPI-thread ...  The
code performance is measured by the computational cost (in core-hours)
per grid point per time step."  S3D weak-scales almost perfectly — the
figure's flat lines — because communication is nearest-neighbour only
and the per-rank working set is constant.

* :func:`pressure_wave_demo` — the actual test problem at laptop
  scale: a Gaussian temperature bump launches pressure waves under the
  real stencil + RK integrator (tests assert wave propagation and
  conservation).
* :class:`S3dModel` — the cost model used for the figure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from ...machines.modes import Mode, resolve_mode
from ...machines.specs import MachineSpec
from ...simmpi.cost import CostModel
from .chemistry import CHEM_FLOPS_PER_POINT, N_SPECIES
from .rk import rk4_6stage_step, RK_STAGES
from .stencil import deriv8, DERIV_WIDTH, filter10

__all__ = ["S3dModel", "S3dResult", "S3D_SUSTAINED_GFLOPS", "pressure_wave_demo"]

#: Sustained per-core GFlop/s on S3D's stencil+chemistry mix
#: (calibrated so XT4/QC ≈ 2.3x BG/P per core, the Fig. 6 spread).
S3D_SUSTAINED_GFLOPS: Dict[str, float] = {
    "BG/P": 0.42,
    "BG/L": 0.31,
    "XT3": 0.85,
    "XT4/DC": 0.92,
    "XT4/QC": 0.97,
}

#: Conserved variables: density, momentum (3), energy + species.
N_VARS = 5 + N_SPECIES

#: Flops per grid point per RK stage: three 9-point derivative sweeps
#: per variable, filters, EOS/transport, plus chemistry.
FLOPS_PER_POINT_PER_STAGE = 3 * 2 * 9 * N_VARS + 600.0


@dataclass(frozen=True)
class S3dResult:
    machine: str
    processes: int
    points_per_rank: int
    seconds_per_step: float
    core_hours_per_point_step: float


class S3dModel:
    """S3D weak-scaling cost model."""

    def __init__(self, machine: MachineSpec, mode: Mode | str = "VN") -> None:
        self.machine = machine
        self.mode = resolve_mode(machine, mode)
        try:
            self.sustained = S3D_SUSTAINED_GFLOPS[machine.name] * 1e9
        except KeyError:
            raise KeyError(f"no S3D calibration for {machine.name!r}") from None

    def run(self, processes: int, edge: int = 50) -> S3dResult:
        """Model one weak-scaled run with ``edge``^3 points per rank."""
        if processes < 1 or edge < 2 * DERIV_WIDTH + 1:
            raise ValueError("invalid processes or edge length")
        points = edge**3
        flops_per_step = (
            points * (RK_STAGES * FLOPS_PER_POINT_PER_STAGE + CHEM_FLOPS_PER_POINT)
        )
        t_compute = flops_per_step / self.sustained

        t_comm = 0.0
        if processes > 1:
            cost = CostModel(self.machine, self.mode.mode, processes)
            # Ghost exchange per RK stage: 6 faces x width-4 ghost slab
            # of all conserved variables.
            face_bytes = int(DERIV_WIDTH * edge * edge * 8 * N_VARS)
            per_stage = 6.0 * cost.p2p_time(face_bytes, hops=1.0)
            t_comm = RK_STAGES * per_stage
            # Monitoring: one small allreduce per step (Section III.C:
            # "Global communications are only required for monitoring").
            t_comm += cost.allreduce_time(64, dtype="float64")

        seconds = t_compute + t_comm
        core_hours = seconds / 3600.0 / points
        return S3dResult(
            machine=self.machine.name,
            processes=processes,
            points_per_rank=points,
            seconds_per_step=seconds,
            core_hours_per_point_step=core_hours,
        )

    def weak_scaling(self, process_counts: List[int], edge: int = 50) -> List[S3dResult]:
        """One Fig. 6 curve (points beyond the machine's size are
        omitted, as in the paper's plots)."""
        out = []
        for p in process_counts:
            try:
                out.append(self.run(p, edge))
            except ValueError:
                continue
        return out


def pressure_wave_demo(
    n: int = 32, steps: int = 20, dt: float = 0.02
) -> Dict[str, float]:
    """The paper's pressure-wave test problem, executed for real (1-D
    acoustics with the 8th-order stencil + 6-stage RK + filter).

    "The simulation's initial condition consists of a Gaussian
    temperature profile centered in the domain with periodic boundary
    conditions.  When integrated in time, the initial temperature
    non-uniformity gives rise to pressure waves and spreading of the
    temperature profile."

    Returns diagnostics the tests assert: mass conservation error,
    how far the wave front travelled, and the initial/final pressure
    peak ratio (the bump splits into two half-amplitude waves).
    """
    x = np.linspace(0, 1, n, endpoint=False)
    dx = 1.0 / n
    c = 1.0  # sound speed
    p0 = np.exp(-((x - 0.5) ** 2) / 0.005)  # pressure bump (temperature)
    u0 = np.zeros(n)
    state0 = np.stack([p0, u0])

    def rhs(state: np.ndarray) -> np.ndarray:
        p, u = state
        dp = deriv8(p, dx)
        du = deriv8(u, dx)
        return np.stack([-c * du, -c * dp])

    state = state0.copy()
    for _ in range(steps):
        state = rk4_6stage_step(state, rhs, dt)
        state[0] = filter10(state[0], strength=0.2)
        state[1] = filter10(state[1], strength=0.2)

    p_final = state[0]
    travel = c * steps * dt
    return {
        "mass_error": float(abs(p_final.sum() - p0.sum()) / abs(p0.sum())),
        "expected_travel": travel,
        "peak_ratio": float(p_final.max() / p0.max()),
        "center_drop": float(p_final[n // 2] / p0[n // 2]),
    }
