"""Replay S3D's per-step schedule on the message-level simulator.

Per RK stage: a compute block, then the 6-face ghost exchange of all
conserved variables (non-blocking sends/receives among nearest
neighbours in the 3-D processor topology — Section III.C); per step:
one small monitoring allreduce.  Cross-validates the Fig. 6 weak-
scaling model against the simulated network.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from ...machines.specs import MachineSpec
from ...simmpi import Cluster
from .chemistry import CHEM_FLOPS_PER_POINT
from .model import FLOPS_PER_POINT_PER_STAGE, N_VARS, S3D_SUSTAINED_GFLOPS
from .rk import RK_STAGES
from .stencil import DERIV_WIDTH

__all__ = ["replay_steps", "checkpointed_walltime", "S3dReplayResult"]


@dataclass(frozen=True)
class S3dReplayResult:
    machine: str
    processes: int
    seconds_per_step: float
    messages: int
    #: fault statistics when the replay ran under a fault plan
    faults: Any = None
    #: the :class:`~repro.recovery.RecoveryOutcome` when the replay ran
    #: under a recovery policy (``seconds_per_step`` then averages the
    #: *whole* timeline, overheads included), else ``None``
    recovery: Any = None


def _proc_grid(processes: int) -> Tuple[int, int, int]:
    """The most-cubic 3-D processor decomposition."""
    best = (processes, 1, 1)
    score = float("inf")
    x = 1
    while x <= processes:
        if processes % x == 0:
            rem = processes // x
            y = 1
            while y <= rem:
                if rem % y == 0:
                    dims = (x, y, rem // y)
                    s = max(dims) / min(dims)
                    if s < score:
                        score = s
                        best = dims
                y += 1
        x += 1
    return best


def _neighbors3d(rank: int, dims: Tuple[int, int, int]) -> Dict[str, int]:
    px, py, pz = dims
    i = rank % px
    j = (rank // px) % py
    k = rank // (px * py)

    def at(ii, jj, kk):
        return (ii % px) + (jj % py) * px + (kk % pz) * px * py

    return {
        "xm": at(i - 1, j, k),
        "xp": at(i + 1, j, k),
        "ym": at(i, j - 1, k),
        "yp": at(i, j + 1, k),
        "zm": at(i, j, k - 1),
        "zp": at(i, j, k + 1),
    }


def replay_steps(
    machine: MachineSpec,
    processes: int,
    edge: int = 50,
    steps: int = 1,
    mode: str = "VN",
    faults: Any = None,
    reliability: Any = None,
    recovery: Any = None,
    budget: Any = None,
) -> S3dReplayResult:
    """Run ``steps`` S3D timesteps at message level.

    ``recovery`` (a :class:`~repro.recovery.RecoveryPolicy`) arms
    ULFM-style failure handling: shrink-mode survivors re-decompose the
    3-D processor grid over the live ranks and continue (the grid keeps
    ``edge**3`` points per rank — S3D weak-scales, so losing ranks
    shrinks the domain rather than growing the per-rank block);
    restart-mode jobs rewind to the last completed checkpoint.
    """
    if processes < 1 or steps < 1:
        raise ValueError("processes and steps must be >= 1")
    sustained = S3D_SUSTAINED_GFLOPS[machine.name] * 1e9
    points = edge**3
    t_stage = points * FLOPS_PER_POINT_PER_STAGE / sustained
    t_chem = points * CHEM_FLOPS_PER_POINT / sustained
    face_bytes = int(DERIV_WIDTH * edge * edge * 8 * N_VARS)
    pairs = (("xm", "xp"), ("ym", "yp"), ("zm", "zp"))

    def one_step(comm, dims: Tuple[int, int, int], step: int):
        nb = _neighbors3d(comm.rank, dims)
        for stage in range(RK_STAGES):
            yield from comm.compute(seconds=t_stage)
            tag = 100 * step + 10 * stage
            reqs = []
            for d, (lo, hi) in enumerate(pairs):
                reqs.append(comm.irecv(src=nb[lo], tag=tag + 2 * d))
                reqs.append(comm.irecv(src=nb[hi], tag=tag + 2 * d + 1))
            for d, (lo, hi) in enumerate(pairs):
                reqs.append(comm.isend(nb[hi], face_bytes, tag=tag + 2 * d))
                reqs.append(comm.isend(nb[lo], face_bytes, tag=tag + 2 * d + 1))
            yield from comm.waitall(reqs)
        yield from comm.compute(seconds=t_chem)
        yield from comm.allreduce(64, dtype="float64")  # monitoring

    if recovery is None:
        dims = _proc_grid(processes)

        def program(comm):
            t0 = comm.now
            for step in range(steps):
                yield from one_step(comm, dims, step)
            return comm.now - t0

        cluster = Cluster(
            machine, ranks=processes, mode=mode, reliability=reliability
        )
        res = cluster.run(program, faults=faults, budget=budget)
        return S3dReplayResult(
            machine=machine.name,
            processes=processes,
            seconds_per_step=max(res.returns) / steps,
            messages=res.messages,
            faults=res.faults,
        )

    from ...recovery import RankFailedError, run_with_recovery

    def program_factory(runtime, start_step: int):
        def program(world):
            comm = world
            dims = _proc_grid(world.size)
            t0 = world.now
            step = start_step
            while step < steps:
                try:
                    yield from one_step(comm, dims, step)
                    runtime.end_step(comm, step)
                    yield from runtime.maybe_checkpoint(comm, step)
                    step += 1
                except RankFailedError:
                    if runtime.policy.mode != "shrink":
                        raise  # restart mode: the driver rewinds the job
                    while True:
                        if len(runtime.live_ranks()) < runtime.policy.min_ranks:
                            raise
                        try:
                            comm, step = yield from runtime.recover(world, step)
                            break
                        except RankFailedError:
                            continue  # another node died mid-recovery
                    dims = _proc_grid(comm.size)
            return world.now - t0

        return program

    outcome = run_with_recovery(
        recovery,
        lambda env=None: Cluster(
            machine, ranks=processes, mode=mode,
            env=env, reliability=reliability,
        ),
        program_factory,
        faults=faults,
        budget=budget,
    )
    return S3dReplayResult(
        machine=machine.name,
        processes=processes,
        seconds_per_step=outcome.times.walltime / steps,
        messages=outcome.result.messages,
        faults=outcome.result.faults,
        recovery=outcome,
    )


def checkpointed_walltime(
    machine: MachineSpec,
    processes: int,
    edge: int = 50,
    campaign_steps: int = 100000,
    system_nodes: Optional[int] = None,
    memory_fraction: float = 0.5,
    **replay_kwargs: Any,
) -> Tuple[float, float]:
    """Expected wall-clock for a ``campaign_steps``-step S3D campaign.

    Returns ``(expected_seconds, inflation)`` — the per-step rate comes
    from a one-step message-level replay, the resilience overhead from
    the Young/Daly model over the machine's MTBF and I/O path (default
    partition size: the replay's process count).
    """
    from ...faults.checkpoint import CheckpointModel

    if campaign_steps < 1:
        raise ValueError("campaign_steps must be >= 1")
    r = replay_steps(machine, processes, edge=edge, steps=1, **replay_kwargs)
    work = campaign_steps * r.seconds_per_step
    nodes = processes if system_nodes is None else system_nodes
    model = CheckpointModel.from_machine(
        machine, nodes, memory_fraction=memory_fraction
    )
    expected = model.expected_runtime(work)
    return expected, expected / work
