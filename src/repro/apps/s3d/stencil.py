"""S3D's spatial discretization: 8th-order differences, 10th-order filter.

"Spatial differentiation is achieved through eighth-order finite
differences along with tenth-order filters to damp any spurious
oscillations in the solution.  The differentiation and filtering
require nine and eleven point centered stencils, respectively."
(paper Section III.C)

Real implementations with verified order of accuracy (tests), plus the
stencil-width constants the communication model needs (ghost zones of
width 4 and 5).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "DERIV_WIDTH",
    "FILTER_WIDTH",
    "deriv8",
    "filter10",
    "deriv8_3d",
]

#: Ghost cells needed by the 9-point derivative stencil.
DERIV_WIDTH = 4
#: Ghost cells needed by the 11-point filter stencil.
FILTER_WIDTH = 5

# 8th-order central first-derivative coefficients (unit spacing).
_D8 = np.array([1 / 280, -4 / 105, 1 / 5, -4 / 5, 0.0, 4 / 5, -1 / 5, 4 / 105, -1 / 280])

# 10th-order low-pass filter coefficients (binomial (1 - d^10/2^10)).
_F10 = np.array(
    [-1, 10, -45, 120, -210, 252, -210, 120, -45, 10, -1], dtype=float
) / 1024.0


def deriv8(f: np.ndarray, dx: float = 1.0, axis: int = 0) -> np.ndarray:
    """8th-order accurate first derivative (periodic)."""
    if dx <= 0:
        raise ValueError("dx must be positive")
    out = np.zeros_like(f)
    for k, c in enumerate(_D8):
        shift = k - DERIV_WIDTH
        if c != 0.0:
            out += c * np.roll(f, -shift, axis=axis)
    return out / dx


def filter10(f: np.ndarray, strength: float = 1.0, axis: int = 0) -> np.ndarray:
    """Apply the 10th-order dissipative filter along one axis (periodic).

    Removes grid-scale (Nyquist) oscillations while leaving smooth,
    well-resolved modes essentially untouched.
    """
    if not 0 <= strength <= 1:
        raise ValueError("strength must lie in [0, 1]")
    damp = np.zeros_like(f)
    for k, c in enumerate(_F10):
        shift = k - FILTER_WIDTH
        damp += c * np.roll(f, -shift, axis=axis)
    return f - strength * damp


def deriv8_3d(f: np.ndarray, dx: float = 1.0) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Gradient of a 3-D field with the 8th-order stencil."""
    if f.ndim != 3:
        raise ValueError("f must be 3-D")
    return deriv8(f, dx, 0), deriv8(f, dx, 1), deriv8(f, dx, 2)
