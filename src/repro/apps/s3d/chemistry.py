"""Detailed chemistry surrogate: the CO-H2 (syngas) mechanism shape.

"The test is conducted with detailed CO-H2 chemistry consisting of 11
chemical species and mixture-averaged molecular transport" (paper
Section III.C).  We implement a compact skeletal syngas mechanism with
the same species count and Arrhenius-kinetics structure; the tests
check mass conservation and positivity, and the performance model
charges its per-point flop cost.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = ["SPECIES", "N_SPECIES", "reaction_rates", "advance_chemistry", "CHEM_FLOPS_PER_POINT"]

#: The 11 species of the CO-H2 mechanism.
SPECIES: Tuple[str, ...] = (
    "H2", "O2", "H2O", "CO", "CO2", "H", "O", "OH", "HO2", "H2O2", "N2",
)
N_SPECIES = len(SPECIES)

_I = {s: i for i, s in enumerate(SPECIES)}

#: Approximate flops to evaluate rates + Jacobian-free update per grid
#: point (reaction rates, exponentials, transport mixing rules).
CHEM_FLOPS_PER_POINT = 2500.0


def reaction_rates(mass_frac: np.ndarray, temperature: np.ndarray) -> np.ndarray:
    """Species production rates (mass-fraction tendencies, 1/s).

    A skeletal 4-step syngas mechanism in Arrhenius form:

        R1: H2 + O2   -> 2 OH       (chain initiation)
        R2: CO + OH   -> CO2 + H    (CO oxidation)
        R3: H  + O2   -> OH + O     (branching)
        R4: OH + H2   -> H2O + H    (propagation)

    Stoichiometrically balanced in mass, so the total tendency sums to
    zero — conservation the tests assert.
    """
    if mass_frac.shape[0] != N_SPECIES:
        raise ValueError(f"expected {N_SPECIES} species, got {mass_frac.shape[0]}")
    y = np.clip(mass_frac, 0.0, None)
    t = np.clip(temperature, 300.0, 3000.0)

    def arr(a: float, ea: float) -> np.ndarray:
        return a * np.exp(-ea / t)

    w = np.zeros_like(y)
    r1 = arr(1e4, 8000.0) * y[_I["H2"]] * y[_I["O2"]]
    r2 = arr(5e4, 4000.0) * y[_I["CO"]] * y[_I["OH"]]
    r3 = arr(2e5, 9000.0) * y[_I["H"]] * y[_I["O2"]]
    r4 = arr(8e4, 3000.0) * y[_I["OH"]] * y[_I["H2"]]

    # Mass-weighted stoichiometry (rates are mass-exchange fluxes).
    w[_I["H2"]] += -r1 - r4
    w[_I["O2"]] += -r1 - r3
    w[_I["OH"]] += 2 * r1 - r2 + r3 + r4 - r4  # net: 2r1 - r2 + r3
    w[_I["CO"]] += -r2
    w[_I["CO2"]] += r2 * 44.0 / 45.0
    w[_I["H"]] += r2 * 1.0 / 45.0 - r3 + r4 * 1.0 / 19.0
    w[_I["O"]] += r3 * 16.0 / 33.0
    w[_I["OH"]] += -r3 * 16.0 / 33.0 + r3  # rebalance branching masses
    w[_I["H2O"]] += r4 * 18.0 / 19.0
    # Enforce exact mass conservation: dump the (tiny) imbalance into N2.
    w[_I["N2"]] -= w.sum(axis=0)
    return w


def advance_chemistry(
    mass_frac: np.ndarray, temperature: np.ndarray, dt: float
) -> np.ndarray:
    """Explicit chemistry sub-step with positivity clipping + renorm."""
    if dt <= 0:
        raise ValueError("dt must be positive")
    y = mass_frac + dt * reaction_rates(mass_frac, temperature)
    y = np.clip(y, 0.0, None)
    total = y.sum(axis=0)
    total = np.where(total <= 0, 1.0, total)
    return y / total
