"""Molecular dynamics: LAMMPS/PMEMD mini-apps (paper Section III.E, Fig. 8)."""

from .cells import CellList, lj_forces_celllist
from .forces import kinetic_energy, lj_forces_bruteforce, velocity_verlet
from .models import (
    FLOPS_PER_ATOM,
    FLOPS_PER_PAIR,
    LammpsModel,
    MD_SUSTAINED_GFLOPS,
    MdModel,
    MdResult,
    PmemdModel,
)
from .pme import pme_fft_flops, reciprocal_potential, spread_charges
from .system import make_lattice_system, MdSystem, RUBISCO

__all__ = [
    "MdSystem",
    "RUBISCO",
    "make_lattice_system",
    "lj_forces_bruteforce",
    "velocity_verlet",
    "kinetic_energy",
    "CellList",
    "lj_forces_celllist",
    "spread_charges",
    "reciprocal_potential",
    "pme_fft_flops",
    "MdModel",
    "LammpsModel",
    "PmemdModel",
    "MdResult",
    "MD_SUSTAINED_GFLOPS",
    "FLOPS_PER_PAIR",
    "FLOPS_PER_ATOM",
]
