"""Molecular dynamics: LAMMPS/PMEMD mini-apps (paper Section III.E, Fig. 8)."""

from .system import MdSystem, RUBISCO, make_lattice_system
from .forces import lj_forces_bruteforce, velocity_verlet, kinetic_energy
from .cells import CellList, lj_forces_celllist
from .pme import spread_charges, reciprocal_potential, pme_fft_flops
from .models import (
    MdModel,
    LammpsModel,
    PmemdModel,
    MdResult,
    MD_SUSTAINED_GFLOPS,
    FLOPS_PER_PAIR,
    FLOPS_PER_ATOM,
)

__all__ = [
    "MdSystem",
    "RUBISCO",
    "make_lattice_system",
    "lj_forces_bruteforce",
    "velocity_verlet",
    "kinetic_energy",
    "CellList",
    "lj_forces_celllist",
    "spread_charges",
    "reciprocal_potential",
    "pme_fft_flops",
    "MdModel",
    "LammpsModel",
    "PmemdModel",
    "MdResult",
    "MD_SUSTAINED_GFLOPS",
    "FLOPS_PER_PAIR",
    "FLOPS_PER_ATOM",
]
