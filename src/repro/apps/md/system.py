"""Molecular-dynamics systems: particles, boxes, and the RuBisCO target.

"Our target system is RuBisCO enzyme; this model consists of 290,220
atoms with explicit treatment of solvent.  The dimensions of the
simulation box are 150 x 150 x 135 Angstrom approximately and inner and
outer cut-offs of 10 and 11 Angstrom were used ... the time-step is 1
femto-second" (paper Section III.E).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

__all__ = ["MdSystem", "RUBISCO", "make_lattice_system"]


@dataclass(frozen=True)
class MdSystem:
    """An MD workload description."""

    name: str
    n_atoms: int
    box: Tuple[float, float, float]  # Angstrom
    inner_cutoff: float  # Angstrom
    outer_cutoff: float  # Angstrom
    timestep_fs: float
    #: PME reciprocal-space grid (about 1 point per Angstrom)
    pme_grid: Tuple[int, int, int]

    def __post_init__(self) -> None:
        if self.n_atoms < 1:
            raise ValueError("n_atoms must be >= 1")
        if self.inner_cutoff <= 0 or self.outer_cutoff < self.inner_cutoff:
            raise ValueError("cutoffs must satisfy 0 < inner <= outer")
        if min(self.box) <= 2 * self.outer_cutoff:
            raise ValueError("box must exceed twice the outer cutoff")

    @property
    def volume(self) -> float:
        x, y, z = self.box
        return x * y * z

    @property
    def density(self) -> float:
        """Atoms per cubic Angstrom (~0.1 for solvated biomolecules)."""
        return self.n_atoms / self.volume

    @property
    def neighbors_per_atom(self) -> float:
        """Mean atoms within the outer cutoff of one atom."""
        r = self.outer_cutoff
        return self.density * (4.0 / 3.0) * np.pi * r**3

    @property
    def pairs_per_atom(self) -> float:
        """Half-list pair count per atom."""
        return self.neighbors_per_atom / 2.0


#: The paper's target system.
RUBISCO = MdSystem(
    name="RuBisCO",
    n_atoms=290_220,
    box=(150.0, 150.0, 135.0),
    inner_cutoff=10.0,
    outer_cutoff=11.0,
    timestep_fs=1.0,
    pme_grid=(150, 150, 135),
)


def make_lattice_system(
    n_side: int = 6, spacing: float = 1.2, name: str = "lattice"
) -> Tuple[MdSystem, np.ndarray]:
    """A small cubic-lattice system for real force/integration tests.

    Returns the system descriptor and the (n, 3) positions.  Spacing is
    in units of the LJ sigma; the box is periodic.
    """
    if n_side < 2:
        raise ValueError("n_side must be >= 2")
    coords = np.arange(n_side) * spacing
    pos = np.array([(x, y, z) for x in coords for y in coords for z in coords])
    edge = n_side * spacing
    sys = MdSystem(
        name=name,
        n_atoms=n_side**3,
        box=(edge, edge, edge),
        inner_cutoff=min(2.5, edge / 2.0 - 1e-9),
        outer_cutoff=min(2.5, edge / 2.0 - 1e-9),
        timestep_fs=1.0,
        pme_grid=(8, 8, 8),
    )
    return sys, pos
