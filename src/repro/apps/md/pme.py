"""Particle-Mesh-Ewald-style long-range electrostatics, for real.

PMEMD's defining kernel: spread charges to a grid, solve Poisson in
reciprocal space (3-D FFT), interpolate back.  The tests verify charge
conservation on the grid and the spectral Poisson solve; the
performance models charge its FFT + transpose cost.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = ["spread_charges", "reciprocal_potential", "pme_fft_flops"]


def spread_charges(
    pos: np.ndarray,
    charges: np.ndarray,
    box: Tuple[float, float, float],
    grid: Tuple[int, int, int],
) -> np.ndarray:
    """Nearest-grid-point charge assignment (order-1 PME spreading).

    Total grid charge equals total particle charge exactly.
    """
    if pos.shape[0] != charges.shape[0]:
        raise ValueError("positions and charges disagree in length")
    g = np.zeros(grid)
    boxv = np.asarray(box, dtype=float)
    gv = np.asarray(grid)
    idx = np.floor(pos / boxv * gv).astype(int) % gv
    np.add.at(g, (idx[:, 0], idx[:, 1], idx[:, 2]), charges)
    return g


def reciprocal_potential(
    rho: np.ndarray, box: Tuple[float, float, float]
) -> np.ndarray:
    """Solve the periodic Poisson equation on the grid via FFT.

    The k=0 (net charge) mode is projected out, as in any Ewald method.
    """
    nx, ny, nz = rho.shape
    lx, ly, lz = box
    kx = 2 * np.pi * np.fft.fftfreq(nx, d=lx / nx)
    ky = 2 * np.pi * np.fft.fftfreq(ny, d=ly / ny)
    kz = 2 * np.pi * np.fft.fftfreq(nz, d=lz / nz)
    k2 = (
        kx[:, None, None] ** 2 + ky[None, :, None] ** 2 + kz[None, None, :] ** 2
    )
    rho_k = np.fft.fftn(rho)
    phi_k = np.zeros_like(rho_k)
    nonzero = k2 > 0
    phi_k[nonzero] = 4 * np.pi * rho_k[nonzero] / k2[nonzero]
    return np.real(np.fft.ifftn(phi_k))


def pme_fft_flops(grid: Tuple[int, int, int]) -> float:
    """Flops of the forward+inverse 3-D FFT pair."""
    n = int(np.prod(grid))
    if n < 8:
        raise ValueError("grid too small")
    return 2.0 * 5.0 * n * np.log2(n)
