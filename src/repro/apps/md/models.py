"""LAMMPS- and PMEMD-style performance models (paper Fig. 8).

Shared structure per timestep: short-range pair forces (cell lists,
spatial decomposition), PME long-range (3-D FFT with distributed
transposes), halo/ghost-atom exchange, and a few small reductions
(thermostat, virial).  The two codes differ where the paper says they
differ:

* **LAMMPS** decomposes the FFT in 2-D and keeps per-rank communication
  volume roughly constant — it scales further.
* **PMEMD** uses slab-decomposed FFTs and gathers coordinates for its
  (frequent) output — "PMEMD experiments are setup with a relatively
  higher output frequency as compared to LAMMPS experiments", and
  "PMEMD scaling is limited due to higher rate of increase in
  communication volume per MPI task".

"Our investigation revealed that scaling and runtime for our target
test case is highly sensitive to MPI_Allreduce latencies and exchange
operations in FFT computation ...  The collective network of the BG/P
results in relatively higher parallel efficiencies." — both effects
emerge from the machine models here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from ...machines.modes import Mode, resolve_mode
from ...machines.specs import MachineSpec
from ...simmpi.cost import CostModel
from .pme import pme_fft_flops
from .system import MdSystem, RUBISCO

__all__ = ["MdModel", "LammpsModel", "PmemdModel", "MdResult", "MD_SUSTAINED_GFLOPS"]

#: Sustained per-core GFlop/s on MD force loops (dense, cache-friendly;
#: calibrated so the XT4 is ~2.7x faster per core).
MD_SUSTAINED_GFLOPS: Dict[str, float] = {
    "BG/P": 0.45,
    "BG/L": 0.33,
    "XT3": 1.05,
    "XT4/DC": 1.22,
    "XT4/QC": 1.30,
}

#: Flops per short-range pair interaction (LJ + electrostatic + switch).
FLOPS_PER_PAIR = 55.0
#: Flops per atom for bonded terms + integration per step.
FLOPS_PER_ATOM = 250.0


@dataclass(frozen=True)
class MdResult:
    machine: str
    code: str
    processes: int
    seconds_per_step: float

    @property
    def ns_per_day(self) -> float:
        """Nanoseconds of simulated time per wall-clock day (1 fs steps)."""
        steps_per_day = 86400.0 / self.seconds_per_step
        return steps_per_day * 1e-6  # 1 fs = 1e-6 ns

    def speedup_vs(self, base: "MdResult") -> float:
        return base.seconds_per_step / self.seconds_per_step


class MdModel:
    """Common machinery; subclasses set the code-specific knobs."""

    code = "generic"
    #: small allreduces per step (thermo, virial, constraints)
    reductions_per_step = 4
    #: coordinate-gather output interval in steps (0 = negligible)
    output_interval = 0

    def __init__(
        self,
        machine: MachineSpec,
        system: MdSystem = RUBISCO,
        mode: Mode | str = "VN",
    ) -> None:
        self.machine = machine
        self.system = system
        self.mode = resolve_mode(machine, mode)
        try:
            self.sustained = MD_SUSTAINED_GFLOPS[machine.name] * 1e9
        except KeyError:
            raise KeyError(f"no MD calibration for {machine.name!r}") from None

    # -- code-specific hooks ------------------------------------------------
    def fft_ranks(self, processes: int) -> int:
        """Ranks that can usefully join the distributed FFT."""
        raise NotImplementedError

    # -- the step model ---------------------------------------------------------
    def run(self, processes: int) -> MdResult:
        if processes < 1:
            raise ValueError("processes must be >= 1")
        sysd = self.system
        cost = CostModel(self.machine, self.mode.mode, processes)
        atoms_per_rank = sysd.n_atoms / processes

        # Short-range pairs + bonded/integration.
        flops = (
            atoms_per_rank * sysd.pairs_per_atom * FLOPS_PER_PAIR
            + atoms_per_rank * FLOPS_PER_ATOM
        )
        t_pair = flops / self.sustained

        # Ghost-atom exchange: the skin shell around each rank's domain.
        side = (sysd.volume / processes) ** (1.0 / 3.0)
        shell_fraction = min(
            1.0, (6.0 * sysd.outer_cutoff) / max(side, 1e-9)
        )
        ghost_atoms = atoms_per_rank * shell_fraction
        ghost_bytes = int(ghost_atoms * 24)  # xyz doubles
        t_ghost = 6.0 * cost.p2p_time(max(1, ghost_bytes // 6), hops=1.0)

        # PME reciprocal space: local FFT share + transposes.
        p_fft = min(processes, self.fft_ranks(processes))
        fft_flops = pme_fft_flops(sysd.pme_grid) / p_fft
        t_fft = fft_flops / self.sustained
        grid_bytes = float(np.prod(sysd.pme_grid)) * 8.0
        if p_fft > 1:
            fft_cost = CostModel(self.machine, self.mode.mode, p_fft)
            per_pair = grid_bytes / p_fft**2
            t_fft += 2.0 * fft_cost.alltoall_time(per_pair)

        # Small reductions: where the BG/P tree pays off.
        t_red = self.reductions_per_step * cost.allreduce_time(64, dtype="float64")

        # Output gathers (PMEMD's high output frequency): the master
        # rank collects all coordinates, amortized over the interval.
        t_out = 0.0
        if self.output_interval:
            gather_bytes = sysd.n_atoms * 24.0 / processes
            t_out = cost.gather_time(gather_bytes) / self.output_interval

        seconds = t_pair + t_ghost + t_fft + t_red + t_out
        return MdResult(
            machine=self.machine.name,
            code=self.code,
            processes=processes,
            seconds_per_step=seconds,
        )

    def scaling(self, process_counts: List[int]) -> List[MdResult]:
        """One Fig. 8 curve."""
        out = []
        for p in process_counts:
            try:
                out.append(self.run(p))
            except ValueError:
                continue
        return out


class LammpsModel(MdModel):
    """LAMMPS: 2-D decomposed PPPM FFT, low output frequency."""

    code = "LAMMPS"
    reductions_per_step = 4
    output_interval = 0  # "relatively lower output frequency"

    def fft_ranks(self, processes: int) -> int:
        # 2-D pencil decomposition: up to nx*ny pencils.
        nx, ny, _ = self.system.pme_grid
        return min(processes, nx * ny)


class PmemdModel(MdModel):
    """AMBER/PMEMD: slab-decomposed FFT, frequent output."""

    code = "PMEMD"
    reductions_per_step = 8  # SHAKE constraints add reductions
    output_interval = 100  # "higher output frequency"

    def fft_ranks(self, processes: int) -> int:
        # Slab decomposition: at most nz slabs join the FFT.
        return min(processes, self.system.pme_grid[2])
