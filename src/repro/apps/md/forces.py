"""Short-range forces: Lennard-Jones with minimum-image periodicity.

Real, vectorized kernels used by the correctness tests (Newton's third
law, energy conservation under velocity-Verlet) and by the cell-list
cross-check in :mod:`.cells`.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = ["lj_forces_bruteforce", "velocity_verlet", "kinetic_energy"]


def _minimum_image(d: np.ndarray, box: np.ndarray) -> np.ndarray:
    return d - box * np.round(d / box)


def lj_forces_bruteforce(
    pos: np.ndarray,
    box: Tuple[float, float, float],
    cutoff: float,
    epsilon: float = 1.0,
    sigma: float = 1.0,
) -> Tuple[np.ndarray, float]:
    """All-pairs LJ forces and potential energy (O(n^2) reference).

    The potential is truncated (not shifted) at ``cutoff``.
    """
    n = pos.shape[0]
    boxv = np.asarray(box, dtype=float)
    if cutoff <= 0 or np.any(boxv <= 0):
        raise ValueError("cutoff and box must be positive")
    forces = np.zeros_like(pos)
    energy = 0.0
    for i in range(n - 1):
        d = _minimum_image(pos[i + 1 :] - pos[i], boxv)
        r2 = (d * d).sum(axis=1)
        mask = r2 < cutoff * cutoff
        if not mask.any():
            continue
        r2m = r2[mask]
        inv2 = sigma * sigma / r2m
        inv6 = inv2**3
        inv12 = inv6**2
        # F = 24 eps (2 (s/r)^12 - (s/r)^6) / r^2 * d
        fmag = 24.0 * epsilon * (2.0 * inv12 - inv6) / r2m
        fv = fmag[:, None] * d[mask]
        forces[i] -= fv.sum(axis=0)
        forces[i + 1 :][mask] += fv
        energy += float((4.0 * epsilon * (inv12 - inv6)).sum())
    return forces, energy


def kinetic_energy(vel: np.ndarray, mass: float = 1.0) -> float:
    """Total kinetic energy of the particle set."""
    return 0.5 * mass * float((vel * vel).sum())


def velocity_verlet(
    pos: np.ndarray,
    vel: np.ndarray,
    box: Tuple[float, float, float],
    cutoff: float,
    dt: float,
    steps: int,
    mass: float = 1.0,
) -> Tuple[np.ndarray, np.ndarray, list]:
    """NVE integration with velocity Verlet; returns the energy trace.

    The trace (total energy per step) lets the tests assert energy
    conservation — the canonical MD correctness check.
    """
    if dt <= 0 or steps < 0:
        raise ValueError("dt must be positive, steps non-negative")
    boxv = np.asarray(box, dtype=float)
    p = pos.copy()
    v = vel.copy()
    f, pe = lj_forces_bruteforce(p, box, cutoff)
    trace = []
    for _ in range(steps):
        v += 0.5 * dt * f / mass
        p = (p + dt * v) % boxv
        f, pe = lj_forces_bruteforce(p, box, cutoff)
        v += 0.5 * dt * f / mass
        trace.append(pe + kinetic_energy(v, mass))
    return p, v, trace
