"""Replay an MD timestep schedule on the message-level simulator.

Per step: pair-force compute, 6-face ghost exchange, a PME alltoall
among the FFT ranks (approximated over all ranks at scaled payload),
thermo reductions, and — for PMEMD — the periodic coordinate gather.
Cross-validates the Fig. 8 models.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Type

import numpy as np

from ...machines.specs import MachineSpec
from ...simmpi import Cluster
from .models import FLOPS_PER_ATOM, FLOPS_PER_PAIR, MD_SUSTAINED_GFLOPS, MdModel
from .pme import pme_fft_flops
from .system import MdSystem, RUBISCO

__all__ = ["replay_steps", "MdReplayResult"]


@dataclass(frozen=True)
class MdReplayResult:
    machine: str
    code: str
    processes: int
    seconds_per_step: float
    messages: int


def replay_steps(
    machine: MachineSpec,
    model_cls: Type[MdModel],
    processes: int,
    system: MdSystem = RUBISCO,
    steps: int = 1,
    mode: str = "VN",
) -> MdReplayResult:
    """Run ``steps`` MD timesteps at message level."""
    if processes < 1 or steps < 1:
        raise ValueError("processes and steps must be >= 1")
    model = model_cls(machine, system, mode)
    sustained = MD_SUSTAINED_GFLOPS[machine.name] * 1e9
    atoms = system.n_atoms / processes
    t_pair = (
        atoms * system.pairs_per_atom * FLOPS_PER_PAIR + atoms * FLOPS_PER_ATOM
    ) / sustained
    p_fft = min(processes, model.fft_ranks(processes))
    t_fft = pme_fft_flops(system.pme_grid) / p_fft / sustained
    side = (system.volume / processes) ** (1.0 / 3.0)
    ghost_atoms = atoms * min(1.0, 6.0 * system.outer_cutoff / max(side, 1e-9))
    ghost_bytes = max(1, int(ghost_atoms * 24 / 6))
    grid_bytes = float(np.prod(system.pme_grid)) * 8.0
    pme_per_pair = max(1, int(grid_bytes / processes**2))
    gather_bytes = int(system.n_atoms * 24 / processes)

    def program(comm):
        right = (comm.rank + 1) % comm.size
        left = (comm.rank - 1) % comm.size
        t0 = comm.now
        for step in range(steps):
            yield from comm.compute(seconds=t_pair + t_fft)
            # Ghost exchange: 6 directional messages approximated as a
            # ring exchange repeated 3x (one per dimension).
            for d in range(3):
                tag = 100 * step + 10 * d
                reqs = [
                    comm.irecv(src=left, tag=tag),
                    comm.irecv(src=right, tag=tag + 1),
                    comm.isend(right, ghost_bytes, tag=tag),
                    comm.isend(left, ghost_bytes, tag=tag + 1),
                ]
                yield from comm.waitall(reqs)
            yield from comm.alltoall(pme_per_pair)  # PME transpose
            for _ in range(model.reductions_per_step):
                yield from comm.allreduce(64, dtype="float64")
            if model.output_interval and (step % model.output_interval == 0):
                yield from comm.gather(gather_bytes, root=0)
        return comm.now - t0

    cluster = Cluster(machine, ranks=processes, mode=mode)
    res = cluster.run(program)
    return MdReplayResult(
        machine=machine.name,
        code=model_cls.code,
        processes=processes,
        seconds_per_step=max(res.returns) / steps,
        messages=res.messages,
    )
