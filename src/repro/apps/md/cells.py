"""Cell lists: the O(n) neighbour machinery of LAMMPS-style MD.

Space is binned into cells at least one cutoff wide; each atom only
tests the 27 surrounding cells.  The tests verify the cell-list force
computation matches the brute-force reference exactly.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Tuple

import numpy as np

from .forces import _minimum_image

__all__ = ["CellList", "lj_forces_celllist"]


class CellList:
    """A periodic cell decomposition of the box."""

    def __init__(self, box: Tuple[float, float, float], cutoff: float) -> None:
        if cutoff <= 0:
            raise ValueError("cutoff must be positive")
        self.box = np.asarray(box, dtype=float)
        if np.any(self.box <= 0):
            raise ValueError("box must be positive")
        self.dims = np.maximum(1, (self.box / cutoff).astype(int))
        self.cutoff = cutoff
        self._cells: Dict[Tuple[int, int, int], List[int]] = defaultdict(list)

    def build(self, pos: np.ndarray) -> None:
        """Bin all atoms."""
        self._cells.clear()
        idx = np.floor(pos / self.box * self.dims).astype(int) % self.dims
        for i, key in enumerate(map(tuple, idx)):
            self._cells[key].append(i)

    def cell_of(self, p: np.ndarray) -> Tuple[int, int, int]:
        return tuple((np.floor(p / self.box * self.dims).astype(int) % self.dims))

    def neighbor_candidates(self, p: np.ndarray) -> List[int]:
        """Atoms in the 27 cells around ``p`` (including its own)."""
        cx, cy, cz = self.cell_of(p)
        out: List[int] = []
        seen = set()
        for dx in (-1, 0, 1):
            for dy in (-1, 0, 1):
                for dz in (-1, 0, 1):
                    key = (
                        (cx + dx) % self.dims[0],
                        (cy + dy) % self.dims[1],
                        (cz + dz) % self.dims[2],
                    )
                    if key in seen:
                        continue  # small boxes alias cells
                    seen.add(key)
                    out.extend(self._cells.get(key, ()))
        return out


def lj_forces_celllist(
    pos: np.ndarray,
    box: Tuple[float, float, float],
    cutoff: float,
    epsilon: float = 1.0,
    sigma: float = 1.0,
) -> Tuple[np.ndarray, float]:
    """LJ forces via cell lists; matches the brute-force reference."""
    cl = CellList(box, cutoff)
    cl.build(pos)
    boxv = np.asarray(box, dtype=float)
    forces = np.zeros_like(pos)
    energy = 0.0
    for i in range(pos.shape[0]):
        cands = [j for j in cl.neighbor_candidates(pos[i]) if j > i]
        if not cands:
            continue
        cj = np.array(cands)
        d = _minimum_image(pos[cj] - pos[i], boxv)
        r2 = (d * d).sum(axis=1)
        mask = r2 < cutoff * cutoff
        if not mask.any():
            continue
        r2m = r2[mask]
        inv2 = sigma * sigma / r2m
        inv6 = inv2**3
        inv12 = inv6**2
        fmag = 24.0 * epsilon * (2.0 * inv12 - inv6) / r2m
        fv = fmag[:, None] * d[mask]
        forces[i] -= fv.sum(axis=0)
        np.add.at(forces, cj[mask], fv)
        energy += float((4.0 * epsilon * (inv12 - inv6)).sum())
    return forces, energy
