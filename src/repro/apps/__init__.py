"""Mini-app reimplementations of the paper's five applications
(POP, CAM, S3D, GYRO, LAMMPS/PMEMD) — real numerics at laptop scale
plus calibrated performance models."""

__all__: list = []  # namespace package: import the app subpackages directly
