"""CAM's spectral Eulerian dycore: the transform kernel, for real.

The spectral dycore advances the flow in spherical-harmonic space:
each step does a forward transform (FFT in longitude, Legendre
transform in latitude), operator application, and an inverse
transform.  We implement the actual transform pair on a Gaussian-ish
grid (FFT + matrix-based Legendre) and verify round-trip accuracy in
the tests; the performance model charges its flop/byte/communication
signature.

The parallel decomposition is over latitude bands, which is what caps
the pure-MPI rank count at ``nlat`` — the scalability wall that makes
OpenMP "an important enhancement for the BG/P" (paper Section III.B).
"""

from __future__ import annotations

import numpy as np

__all__ = ["SpectralTransform", "spectral_roundtrip_error"]


class SpectralTransform:
    """Forward/inverse spherical-harmonic-style transform.

    Longitude: FFT.  Latitude: a Legendre-like orthogonal transform
    built from Gauss-Legendre polynomials evaluated on the grid.  The
    pair is exactly invertible for fields band-limited to the
    truncation, which the tests verify.
    """

    def __init__(self, nlat: int, nlon: int, truncation: int | None = None) -> None:
        if nlat < 4 or nlon < 8:
            raise ValueError("grid too small for a spectral transform")
        if nlon % 2:
            raise ValueError("nlon must be even")
        self.nlat = nlat
        self.nlon = nlon
        self.truncation = truncation if truncation is not None else nlat - 1
        if not 0 < self.truncation < nlat + 1:
            raise ValueError("invalid truncation")
        # Gauss-Legendre nodes/weights on [-1, 1] (sin of latitude).
        nodes, weights = np.polynomial.legendre.leggauss(nlat)
        self._mu = nodes
        self._w = weights
        # Legendre basis matrix P[l, j] = P_l(mu_j), orthonormalized.
        self._P = np.zeros((self.truncation + 1, nlat))
        for ell in range(self.truncation + 1):
            c = np.zeros(ell + 1)
            c[ell] = 1.0
            norm = np.sqrt((2 * ell + 1) / 2.0)
            self._P[ell] = norm * np.polynomial.legendre.legval(nodes, c)

    def forward(self, field: np.ndarray) -> np.ndarray:
        """Grid (nlat, nlon) -> spectral (truncation+1, nlon//2+1)."""
        if field.shape != (self.nlat, self.nlon):
            raise ValueError(
                f"field shape {field.shape} != grid ({self.nlat}, {self.nlon})"
            )
        fourier = np.fft.rfft(field, axis=1) / self.nlon
        # Legendre analysis with Gaussian quadrature.
        return self._P @ (fourier * self._w[:, None])

    def inverse(self, spec: np.ndarray) -> np.ndarray:
        """Spectral -> grid, the exact adjoint path."""
        fourier = self._P.T @ spec
        return np.fft.irfft(fourier, n=self.nlon, axis=1) * self.nlon

    def bandlimit(self, field: np.ndarray) -> np.ndarray:
        """Project a field onto the resolvable subspace."""
        return self.inverse(self.forward(field))


def spectral_roundtrip_error(nlat: int = 32, nlon: int = 64, seed: int = 17) -> float:
    """Max abs error of forward+inverse on a band-limited field."""
    t = SpectralTransform(nlat, nlon)
    rng = np.random.default_rng(seed)
    raw = rng.standard_normal((nlat, nlon))
    smooth = t.bandlimit(raw)  # now exactly representable
    return float(np.max(np.abs(t.bandlimit(smooth) - smooth)))
