"""CAM physics columns: a real column kernel + the load-balance model.

"The physics phase approximates subgrid phenomena, including
precipitation processes, clouds, long- and short-wave radiation, and
turbulent mixing" (paper Section III.B).  Physics is embarrassingly
parallel over columns but *load-imbalanced*: daytime columns run the
expensive shortwave radiation, night columns do not.  CAM's runtime
load-balancing option trades an extra transpose for near-perfect
balance — one of the "numerous compile-time and runtime optimization
options" the authors tuned.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["column_physics_step", "PhysicsLoadModel"]


def column_physics_step(
    temperature: np.ndarray, moisture: np.ndarray, daylight: bool, dt: float = 1800.0
) -> tuple[np.ndarray, np.ndarray]:
    """One physics step on a single column (levels,) profile.

    A compact but real column model: radiative relaxation toward a
    height-dependent equilibrium (stronger when the sun is up), plus
    saturation adjustment that conserves moist enthalpy.  The tests
    check conservation and relaxation direction.
    """
    if temperature.shape != moisture.shape:
        raise ValueError("temperature and moisture must share a shape")
    nlev = temperature.shape[0]
    z = np.linspace(0, 1, nlev)
    t_eq = 300.0 - 70.0 * z
    rate = (1.0 / 86400.0) * (2.0 if daylight else 1.0)
    t_new = temperature + dt * rate * (t_eq - temperature)
    # Saturation adjustment: condense super-saturated moisture, heating
    # the column; L/cp folded into a single latent factor.
    latent = 2.5
    q_sat = 0.02 * np.exp((t_new - 300.0) / 15.0)
    excess = np.maximum(moisture - q_sat, 0.0)
    q_new = moisture - excess
    t_new = t_new + latent * excess
    return t_new, q_new


@dataclass(frozen=True)
class PhysicsLoadModel:
    """Day/night physics imbalance and CAM's balancing option."""

    #: ratio of daytime to night column cost (shortwave radiation)
    day_night_ratio: float = 1.8
    #: residual imbalance with CAM's load balancing enabled
    balanced_residual: float = 1.05

    def imbalance(self, load_balanced: bool) -> float:
        """max/mean column-chunk cost across ranks.

        Without balancing, some ranks own mostly-day chunks: worst case
        approaches the day/night cost ratio against the mean.
        """
        if load_balanced:
            return self.balanced_residual
        mean = (1.0 + self.day_night_ratio) / 2.0
        return self.day_night_ratio / mean
