"""Replay CAM's per-step schedule on the message-level simulator.

Spectral dycore: compute + two transform transposes (alltoall) + one
spectral-sum allreduce per step.  FV dycore: compute + six halo sweeps
+ one small allreduce.  Cross-validates the Fig. 5 model.
"""

from __future__ import annotations

from dataclasses import dataclass

from ...halo.exchange import neighbors2d
from ...machines.specs import MachineSpec
from ...simmpi import Cluster
from .model import CAM_SUSTAINED_GFLOPS, CamBenchmark
from .physics import PhysicsLoadModel

__all__ = ["replay_steps", "CamReplayResult"]


@dataclass(frozen=True)
class CamReplayResult:
    machine: str
    benchmark: str
    tasks: int
    seconds_per_step: float
    messages: int


def replay_steps(
    machine: MachineSpec,
    benchmark: CamBenchmark,
    tasks: int,
    steps: int = 1,
    load_balanced: bool = True,
) -> CamReplayResult:
    """Run ``steps`` CAM timesteps at message level (pure MPI, VN)."""
    if tasks < 1 or steps < 1:
        raise ValueError("tasks and steps must be >= 1")
    tasks = min(tasks, benchmark.mpi_rank_limit)
    sustained = CAM_SUSTAINED_GFLOPS[benchmark.dycore][machine.name] * 1e9
    pts = benchmark.points3d / tasks
    t_compute = (
        pts
        * benchmark.flops_per_point
        / sustained
        * PhysicsLoadModel().imbalance(load_balanced)
    )
    if benchmark.dycore == "spectral":
        state_bytes = benchmark.points3d * 8 * 4
        per_pair = max(1, int(state_bytes / tasks**2))
    else:
        halo_bytes = int(benchmark.nlon * benchmark.nlev * 8 * 2)
        # 1-D latitude decomposition for the replay's halo ring.
        grid = (1, tasks)

    def program(comm):
        t0 = comm.now
        for step in range(steps):
            yield from comm.compute(seconds=t_compute)
            if benchmark.dycore == "spectral":
                yield from comm.alltoall(per_pair)
                yield from comm.alltoall(per_pair)
                yield from comm.allreduce(2048, dtype="float64")
            else:
                nb = neighbors2d(comm.rank, grid)
                for sweep in range(6):
                    tag = 100 * step + 10 * sweep
                    reqs = [
                        comm.irecv(src=nb["north"], tag=tag),
                        comm.irecv(src=nb["south"], tag=tag + 1),
                        comm.isend(nb["south"], halo_bytes, tag=tag),
                        comm.isend(nb["north"], halo_bytes, tag=tag + 1),
                    ]
                    yield from comm.waitall(reqs)
                yield from comm.allreduce(256, dtype="float64")
        return comm.now - t0

    cluster = Cluster(machine, ranks=tasks, mode="VN")
    res = cluster.run(program)
    return CamReplayResult(
        machine=machine.name,
        benchmark=benchmark.name,
        tasks=tasks,
        seconds_per_step=max(res.returns) / steps,
        messages=res.messages,
    )
