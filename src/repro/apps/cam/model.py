"""The CAM performance model (paper Fig. 5).

Four benchmark problems, two dycores::

    spectral Eulerian:  T42L26 (64x128x26),   T85L26 (128x256x26)
    finite volume:      FV 1.9x2.5 L26 (96x144x26),
                        FV 0.47x0.63 L26 (384x576x26)

Key structural facts the model encodes (paper Section III.B):

* Pure MPI parallelism is capped by the dycore's decomposition (the
  latitude count for spectral; a wider 2-D decomposition for FV).
  Hybrid MPI/OpenMP multiplies usable cores by the thread count at an
  efficiency < 1 — "OpenMP parallelism ... provides additional
  scalability for large processor counts".
* The spectral dycore does transform transposes (alltoall-like);
  FV does halo exchanges; physics is column-parallel with the
  day/night load imbalance and CAM's balancing option.
* Pure-MPI runs of the FV 0.47x0.63 problem fail with memory problems
  on BG/P, "as yet undiagnosed" in the paper — modeled as MemoryError.

Calibration: per-(machine, dycore) sustained per-core rates set to the
paper's observed factors — BG/P "never less than a factor of 2.1
slower than the XT3 and 3.1 slower than the XT4" on spectral; on FV
"the XT4 advantage is between a factor of 2 and 2.5 and XT3 advantage
is less than a factor of 2".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ...machines.specs import MachineSpec
from ...simmpi.cost import CostModel
from .physics import PhysicsLoadModel

__all__ = [
    "CamBenchmark",
    "CamModel",
    "CamResult",
    "SPECTRAL_T42",
    "SPECTRAL_T85",
    "FV_1_9x2_5",
    "FV_0_47x0_63",
    "CAM_BENCHMARKS",
    "CAM_SUSTAINED_GFLOPS",
]


@dataclass(frozen=True)
class CamBenchmark:
    """One CAM problem configuration."""

    name: str
    dycore: str  # "spectral" | "fv"
    nlat: int
    nlon: int
    nlev: int
    #: model steps per simulated day
    steps_per_day: int
    #: max MPI ranks the dycore decomposition supports
    mpi_rank_limit: int
    #: combined dynamics+physics flops per column per level per step
    flops_per_point: float
    #: fraction of those flops spent in the dynamics phase ("Control
    #: moves between the dynamics and the physics at least once during
    #: each model simulation timestep" — Section III.B)
    dynamics_fraction: float = 0.45

    @property
    def columns(self) -> int:
        return self.nlat * self.nlon

    @property
    def points3d(self) -> int:
        return self.columns * self.nlev


SPECTRAL_T42 = CamBenchmark(
    name="T42L26",
    dycore="spectral",
    nlat=64,
    nlon=128,
    nlev=26,
    steps_per_day=72,
    mpi_rank_limit=64,  # one latitude band per rank
    flops_per_point=30000.0,
)

SPECTRAL_T85 = CamBenchmark(
    name="T85L26",
    dycore="spectral",
    nlat=128,
    nlon=256,
    nlev=26,
    steps_per_day=144,
    mpi_rank_limit=128,
    flops_per_point=34000.0,  # larger truncation: more transform work
)

FV_1_9x2_5 = CamBenchmark(
    name="FV 1.9x2.5 L26",
    dycore="fv",
    nlat=96,
    nlon=144,
    nlev=26,
    steps_per_day=144,
    mpi_rank_limit=512,  # 2-D (lat, lev) decomposition
    flops_per_point=26000.0,
)

FV_0_47x0_63 = CamBenchmark(
    name="FV 0.47x0.63 L26",
    dycore="fv",
    nlat=384,
    nlon=576,
    nlev=26,
    steps_per_day=576,
    mpi_rank_limit=2048,
    flops_per_point=26000.0,
)

CAM_BENCHMARKS = {
    b.name: b for b in (SPECTRAL_T42, SPECTRAL_T85, FV_1_9x2_5, FV_0_47x0_63)
}

#: Sustained per-core GFlop/s by (machine, dycore), calibrated to the
#: paper's cross-machine factors (see module docstring).
CAM_SUSTAINED_GFLOPS: Dict[str, Dict[str, float]] = {
    "spectral": {
        "BG/P": 0.30,
        "BG/L": 0.22,
        "XT3": 0.65,  # 2.17x BG/P ("never less than ... 2.1")
        "XT4/DC": 0.80,
        "XT4/QC": 0.95,  # 3.17x BG/P ("3.1 slower than the XT4")
    },
    "fv": {
        "BG/P": 0.32,
        "BG/L": 0.24,
        "XT3": 0.58,  # 1.81x ("XT3 advantage is less than a factor of 2")
        "XT4/DC": 0.68,
        "XT4/QC": 0.75,  # 2.34x ("between a factor of 2 and 2.5")
    },
}

#: OpenMP efficiency on the extra cores of a task (paper: hybrid is
#: "comparable ... for smaller processor counts" => near but below 1).
OPENMP_EFFICIENCY = 0.78


@dataclass(frozen=True)
class CamResult:
    machine: str
    benchmark: str
    cores: int
    mpi_tasks: int
    threads: int
    syd: float
    #: per-step phase times (Section III.B's dynamics/physics split)
    dynamics_s_per_step: float = 0.0
    physics_s_per_step: float = 0.0
    comm_s_per_step: float = 0.0


class CamModel:
    """CAM on one machine; evaluate core counts in MPI or hybrid mode."""

    def __init__(
        self,
        machine: MachineSpec,
        benchmark: CamBenchmark,
        physics: PhysicsLoadModel = PhysicsLoadModel(),
    ) -> None:
        self.machine = machine
        self.benchmark = benchmark
        self.physics = physics
        try:
            self.sustained = (
                CAM_SUSTAINED_GFLOPS[benchmark.dycore][machine.name] * 1e9
            )
        except KeyError:
            raise KeyError(
                f"no CAM calibration for {machine.name!r}/{benchmark.dycore!r}"
            ) from None

    def max_threads(self) -> int:
        """Threads per task in hybrid mode (all cores of a node)."""
        return self.machine.node.cores

    def run(
        self,
        cores: int,
        hybrid: bool = False,
        load_balanced: bool = True,
        enforce_memory_limit: bool = True,
    ) -> CamResult:
        """Model one configuration at ``cores`` total cores."""
        if cores < 1:
            raise ValueError("cores must be >= 1")
        bmk = self.benchmark
        threads = self.max_threads() if hybrid else 1
        tasks = max(1, cores // threads)
        if tasks > bmk.mpi_rank_limit:
            # Extra ranks have no work to own: the code caps out.
            tasks = bmk.mpi_rank_limit
        if (
            enforce_memory_limit
            and not hybrid
            and bmk.name == FV_0_47x0_63.name
            and self.machine.name == "BG/P"
        ):
            raise MemoryError(
                "pure-MPI runs of FV 0.47x0.63 L26 do not complete on BG/P "
                "(runtime memory problems, paper Section III.B); use hybrid"
            )

        mode = "SMP" if hybrid else "VN"
        cost = CostModel(self.machine, mode, tasks)

        # -- per-step compute: dynamics + (imbalanced) physics -----------
        pts_per_task = bmk.points3d / tasks
        rate = self.sustained
        if threads > 1:
            rate *= 1 + (threads - 1) * OPENMP_EFFICIENCY
        base = pts_per_task * bmk.flops_per_point / rate
        t_dynamics = base * bmk.dynamics_fraction
        t_physics = (
            base
            * (1.0 - bmk.dynamics_fraction)
            * self.physics.imbalance(load_balanced)
        )
        t_compute = t_dynamics + t_physics

        # -- per-step communication ---------------------------------------
        if bmk.dycore == "spectral":
            # Transform transposes: the full state crosses the machine
            # twice per step (forward + inverse Legendre/FFT stages).
            state_bytes = bmk.points3d * 8 * 4  # ~4 transformed fields
            per_pair = state_bytes / max(1, tasks) ** 2
            t_comm = 2.0 * cost.alltoall_time(per_pair)
            # Spectral sums: one small allreduce per step.
            t_comm += cost.allreduce_time(2048, dtype="float64")
        else:
            # FV: halo exchanges per step (several sweeps).
            lat_per_task = max(1.0, bmk.nlat / tasks)
            halo_bytes = int(bmk.nlon * bmk.nlev * 8 * 2)
            t_comm = 6.0 * 2.0 * cost.p2p_time(halo_bytes, hops=1.0)
            t_comm += cost.allreduce_time(256, dtype="float64")

        seconds_per_day = bmk.steps_per_day * (t_compute + t_comm)
        syd = 86400.0 / (seconds_per_day * 365.0)
        return CamResult(
            machine=self.machine.name,
            benchmark=bmk.name,
            cores=cores,
            mpi_tasks=tasks,
            threads=threads,
            syd=syd,
            dynamics_s_per_step=t_dynamics,
            physics_s_per_step=t_physics,
            comm_s_per_step=t_comm,
        )

    def sweep(
        self, core_counts: List[int], hybrid: bool = False
    ) -> List[CamResult]:
        """One scalability curve of Fig. 5."""
        out = []
        for c in core_counts:
            try:
                out.append(self.run(c, hybrid=hybrid))
            except (MemoryError, ValueError):
                continue  # that point is absent from the paper's curves
        return out
