"""CAM: the Community Atmosphere Model mini-app (paper Section III.B, Fig. 5)."""

from .fv import courant_number, fv_advect_step
from .model import (
    CAM_BENCHMARKS,
    CAM_SUSTAINED_GFLOPS,
    CamBenchmark,
    CamModel,
    CamResult,
    FV_0_47x0_63,
    FV_1_9x2_5,
    OPENMP_EFFICIENCY,
    SPECTRAL_T42,
    SPECTRAL_T85,
)
from .physics import column_physics_step, PhysicsLoadModel
from .spectral import spectral_roundtrip_error, SpectralTransform

__all__ = [
    "SpectralTransform",
    "spectral_roundtrip_error",
    "fv_advect_step",
    "courant_number",
    "column_physics_step",
    "PhysicsLoadModel",
    "CamBenchmark",
    "CamModel",
    "CamResult",
    "SPECTRAL_T42",
    "SPECTRAL_T85",
    "FV_1_9x2_5",
    "FV_0_47x0_63",
    "CAM_BENCHMARKS",
    "CAM_SUSTAINED_GFLOPS",
    "OPENMP_EFFICIENCY",
]
