"""CAM: the Community Atmosphere Model mini-app (paper Section III.B, Fig. 5)."""

from .spectral import SpectralTransform, spectral_roundtrip_error
from .fv import fv_advect_step, courant_number
from .physics import column_physics_step, PhysicsLoadModel
from .model import (
    CamBenchmark,
    CamModel,
    CamResult,
    SPECTRAL_T42,
    SPECTRAL_T85,
    FV_1_9x2_5,
    FV_0_47x0_63,
    CAM_BENCHMARKS,
    CAM_SUSTAINED_GFLOPS,
    OPENMP_EFFICIENCY,
)

__all__ = [
    "SpectralTransform",
    "spectral_roundtrip_error",
    "fv_advect_step",
    "courant_number",
    "column_physics_step",
    "PhysicsLoadModel",
    "CamBenchmark",
    "CamModel",
    "CamResult",
    "SPECTRAL_T42",
    "SPECTRAL_T85",
    "FV_1_9x2_5",
    "FV_0_47x0_63",
    "CAM_BENCHMARKS",
    "CAM_SUSTAINED_GFLOPS",
    "OPENMP_EFFICIENCY",
]
