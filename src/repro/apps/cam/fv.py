"""CAM's finite-volume (Lin) dycore: a real conservative advection step.

The FV dycore [17] advances the flow with flux-form semi-Lagrangian
transport.  The mini-kernel here is a 2-D conservative upwind
advection on the lat-lon grid — enough to test the conservation and
CFL properties the real dycore guarantees, and to carry the work
signature for the performance model.
"""

from __future__ import annotations

import numpy as np

__all__ = ["fv_advect_step", "courant_number"]


def courant_number(u: float, v: float, dx: float, dy: float, dt: float) -> float:
    """The advective CFL number of a step."""
    if min(dx, dy, dt) <= 0:
        raise ValueError("dx, dy, dt must be positive")
    return max(abs(u) * dt / dx, abs(v) * dt / dy)


def fv_advect_step(
    q: np.ndarray, u: float, v: float, dx: float, dy: float, dt: float
) -> np.ndarray:
    """One flux-form upwind advection step (periodic).

    Flux form guarantees exact conservation of sum(q); the tests assert
    it and the CFL limit.
    """
    if q.ndim != 2:
        raise ValueError("q must be 2-D (ny, nx)")
    if courant_number(u, v, dx, dy, dt) > 1.0:
        raise ValueError("CFL violation: reduce dt or velocity")
    cx = u * dt / dx
    cy = v * dt / dy
    # X fluxes (upwind).
    if cx >= 0:
        fx = cx * q
        out = q - fx + np.roll(fx, 1, axis=1)
    else:
        fx = -cx * q
        out = q - fx + np.roll(fx, -1, axis=1)
    # Y fluxes.
    if cy >= 0:
        fy = cy * out
        out = out - fy + np.roll(fy, 1, axis=0)
    else:
        fy = -cy * out
        out = out - fy + np.roll(fy, -1, axis=0)
    return out
