"""Host-side self-profiler for simulated runs.

``repro.obs`` observes *simulated* time; this profiler observes where
the simulator's own **host** wall-time goes while it runs, layered over
the same supported hook points (the engine's per-step ``obs`` hook and
``Transport.add_send_hook``) plus an opt-in ``cProfile`` capture.

Enable per run (``Cluster.run(program, profile=True)`` — the profiler
comes back on ``ClusterResult.profile``) or ambiently
(``with profiling(HostProfiler()):``, the way ``repro bench profile``
wraps scenarios that build their own clusters).  Zero cost when
disabled: an unprofiled run attaches nothing and calls nothing.

When the cluster also has a tracer attached, host cost is exported as
an extra Chrome-trace pid (:data:`HOST_PID`) so simulated spans and
the host time that produced them are visible side by side in Perfetto:

* tid 0 ``phases`` — spawn/run phase spans,
* tid 1 ``engine`` — batched per-step host cost (one span per
  ``stride`` engine steps),
* tid 2 ``hotspots`` — the top-N cProfile entries laid out by
  cumulative time (opt-in via ``cprofile=True``).

Host spans carry a ``host:`` name prefix and ``host.*`` categories;
the ASCII ``repro.obs.summary`` keeps them out of the simulated-span
attribution and reports them in their own section.  Timestamps on the
host pid are host seconds since the profiler's anchor — a profiled
trace is therefore *not* byte-identical across runs (profiling is an
explicit opt-in; the determinism guarantee covers unprofiled runs).
"""

from __future__ import annotations

import cProfile
import pstats
from typing import Any, Dict, List, Optional, Tuple

from .hostclock import HostClock

__all__ = ["HostProfiler", "HostPhase", "active_profiler", "profiling", "HOST_PID"]

#: Synthetic Chrome-trace pid hosting the host-side cost tracks,
#: alongside obs's engine/network pids and the campaign pid.
HOST_PID = 1000003

#: Thread ids within the host pid.
TID_PHASES = 0
TID_ENGINE = 1
TID_HOTSPOTS = 2


class HostPhase:
    """Context manager timing one named host-side phase."""

    __slots__ = ("profiler", "name", "_t0")

    def __init__(self, profiler: "HostProfiler", name: str) -> None:
        self.profiler = profiler
        self.name = name
        self._t0 = 0.0

    def __enter__(self) -> "HostPhase":
        self._t0 = self.profiler.clock.elapsed()
        return self

    def __exit__(self, *_exc) -> bool:
        self.profiler._phase_done(self.name, self._t0)
        return False


class HostProfiler:
    """Measures the host cost of one (or several sequential) runs.

    Parameters
    ----------
    cprofile:
        Also capture a ``cProfile`` of everything between attach and
        detach; hotspots land in :meth:`report` and on the trace.
    stride:
        Aggregate per-engine-step host cost into one span per
        ``stride`` steps (bounds trace size on long runs).
    top:
        How many hotspot rows :meth:`report` and the trace carry.
    """

    def __init__(self, cprofile: bool = False, stride: int = 2048, top: int = 10) -> None:
        if stride < 1:
            raise ValueError("stride must be >= 1")
        self.clock = HostClock()
        self.stride = stride
        self.top = top
        #: total engine steps observed
        self.steps = 0
        #: host seconds attributed to the engine event loop
        self.engine_seconds = 0.0
        #: transport send operations observed
        self.sends = 0
        #: phase name -> [count, total host seconds]
        self.phase_totals: Dict[str, List[float]] = {}
        self._cprofile = cProfile.Profile() if cprofile else None
        self._cprofile_active = False
        self._hotspots: Optional[List[Tuple[str, float, float, int]]] = None
        self._cluster: Optional[Any] = None
        self._inner_obs: Optional[Any] = None
        self._tracer: Optional[Any] = None
        self._batch_t0 = 0.0
        self._batch_first_step = 0
        self._last_step_t = 0.0

    # -- attachment -----------------------------------------------------------
    def attach(self, cluster) -> "HostProfiler":
        """Hook into a cluster (engine obs chain + transport send hook).

        The profiler *chains*: a tracer already installed on
        ``Engine.obs`` keeps receiving every callback, forwarded from
        here.  Re-attaching to the same cluster is a no-op; attaching
        to a new cluster (sequential runs) accumulates into the same
        totals.
        """
        if self._cluster is cluster:
            return self
        if self._cluster is not None:
            self.detach()
        self._cluster = cluster
        self._inner_obs = cluster.env.obs
        cluster.env.obs = self
        cluster.transport.add_send_hook(self._on_send)
        self._tracer = cluster.tracer
        if self._tracer is not None:
            self._tracer.set_process_name(HOST_PID, "host self-profile")
            self._tracer.set_thread_name(HOST_PID, TID_PHASES, "phases")
            self._tracer.set_thread_name(HOST_PID, TID_ENGINE, "engine")
            self._tracer.set_thread_name(HOST_PID, TID_HOTSPOTS, "hotspots")
        self._batch_t0 = self.clock.elapsed()
        self._last_step_t = self._batch_t0
        self._batch_first_step = self.steps
        if self._cprofile is not None and not self._cprofile_active:
            self._cprofile_active = True
            self._cprofile.enable()
        return self

    def detach(self) -> None:
        """Unhook from the current cluster (totals are kept)."""
        cluster = self._cluster
        if cluster is None:
            return
        if self._cprofile is not None and self._cprofile_active:
            self._cprofile.disable()
            self._cprofile_active = False
        self._flush_engine_batch(final=True)
        if cluster.env.obs is self:
            cluster.env.obs = self._inner_obs
        cluster.transport.remove_send_hook(self._on_send)
        self._cluster = None
        self._inner_obs = None

    # -- engine obs chain -----------------------------------------------------
    def engine_step(self, now: float, queue_depth: int) -> None:
        t = self.clock.elapsed()
        self.engine_seconds += t - self._last_step_t
        self._last_step_t = t
        self.steps += 1
        if self.steps - self._batch_first_step >= self.stride:
            self._flush_engine_batch(queue_depth=queue_depth)
        inner = self._inner_obs
        if inner is not None:
            inner.engine_step(now, queue_depth)

    def process_spawned(self, env, proc) -> None:
        inner = self._inner_obs
        if inner is not None:
            inner.process_spawned(env, proc)

    def _flush_engine_batch(
        self, queue_depth: Optional[int] = None, final: bool = False
    ) -> None:
        steps = self.steps - self._batch_first_step
        if steps <= 0:
            return
        t = self.clock.elapsed()
        tracer = self._tracer
        if tracer is not None:
            args: Dict[str, Any] = {
                "steps": steps,
                "first_step": self._batch_first_step,
            }
            if queue_depth is not None:
                args["queue_depth"] = queue_depth
            tracer.complete(
                HOST_PID,
                "host:engine-steps",
                self._batch_t0,
                t,
                cat="host.engine",
                args=args,
                tid=TID_ENGINE,
            )
        self._batch_t0 = t
        self._batch_first_step = self.steps

    # -- transport hook -------------------------------------------------------
    def _on_send(
        self, src: int, dst: int, nbytes: int, tag: int, start: float, end: float
    ) -> None:
        self.sends += 1

    # -- phases ---------------------------------------------------------------
    def phase(self, name: str) -> HostPhase:
        """Time a named host phase (``with prof.phase("run"): ...``)."""
        return HostPhase(self, name)

    def _phase_done(self, name: str, t0: float) -> None:
        t = self.clock.elapsed()
        tot = self.phase_totals.get(name)
        if tot is None:
            tot = self.phase_totals[name] = [0, 0.0]
        tot[0] += 1
        tot[1] += t - t0
        if self._tracer is not None:
            self._tracer.complete(
                HOST_PID,
                f"host:{name}",
                t0,
                t,
                cat="host.phase",
                tid=TID_PHASES,
            )

    # -- hotspots -------------------------------------------------------------
    def hotspots(self) -> List[Tuple[str, float, float, int]]:
        """Top-N ``(where, cumulative_s, self_s, calls)`` by cumulative.

        Empty without ``cprofile=True``.  Computed once, on first use
        after the capture stops.
        """
        if self._hotspots is not None:
            return self._hotspots
        if self._cprofile is None:
            self._hotspots = []
            return self._hotspots
        if self._cprofile_active:
            self._cprofile.disable()
            self._cprofile_active = False
        stats = pstats.Stats(self._cprofile)
        rows: List[Tuple[str, float, float, int]] = []
        for (filename, line, func), (cc, nc, tt, ct, _callers) in stats.stats.items():
            where = f"{func} ({filename.rsplit('/', 1)[-1]}:{line})"
            rows.append((where, ct, tt, nc))
        rows.sort(key=lambda r: (-r[1], r[0]))
        self._hotspots = rows[: self.top]
        return self._hotspots

    def finalize(self) -> None:
        """Close the capture and export hotspot spans to the tracer.

        Hotspot spans are laid out sequentially by cumulative time on
        the host pid's ``hotspots`` thread — a ranked cost bar chart,
        not a timeline.
        """
        rows = self.hotspots()
        tracer = self._tracer
        if tracer is None or not rows:
            return
        cursor = 0.0
        for where, cumulative, self_s, calls in rows:
            tracer.complete(
                HOST_PID,
                f"host:{where}",
                cursor,
                cursor + cumulative,
                cat="host.hotspot",
                args={"calls": calls, "self_s": round(self_s, 6)},
                tid=TID_HOTSPOTS,
            )
            cursor += cumulative

    # -- reporting ------------------------------------------------------------
    def report(self, top: Optional[int] = None) -> str:
        """ASCII digest: totals, phases, and (with cProfile) hotspots."""
        lines = ["== host self-profile =="]
        wall = self.clock.elapsed()
        rate = self.steps / self.engine_seconds if self.engine_seconds > 0 else 0.0
        lines.append(f"  host wall time    {wall:.4f} s")
        lines.append(
            f"  engine steps      {self.steps} "
            f"({rate:,.0f} steps/s host)" if self.steps else "  engine steps      0"
        )
        lines.append(f"  engine host time  {self.engine_seconds:.4f} s")
        lines.append(f"  transport sends   {self.sends}")
        if self.phase_totals:
            lines.append("  phases:")
            for name in sorted(self.phase_totals):
                count, total = self.phase_totals[name]
                lines.append(f"    {name:<14} {int(count):>4} x  {total:.4f} s")
        rows = self.hotspots()
        if rows:
            n = top if top is not None else self.top
            lines.append(f"  top {min(n, len(rows))} hotspots (cProfile, by cumulative):")
            for where, cumulative, self_s, calls in rows[:n]:
                lines.append(
                    f"    {cumulative:8.4f} s cum  {self_s:8.4f} s self  "
                    f"{calls:>8} calls  {where}"
                )
        elif self._cprofile is None:
            lines.append("  (cProfile capture disabled; pass cprofile=True for hotspots)")
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# Ambient profiler (used by `repro bench profile` so scenario code that
# constructs its own Clusters is profiled without plumbing changes).
# ---------------------------------------------------------------------------
_ACTIVE: List[HostProfiler] = []


def active_profiler() -> Optional[HostProfiler]:
    """The innermost ambient profiler, or ``None``."""
    return _ACTIVE[-1] if _ACTIVE else None


class profiling:
    """Context manager installing an ambient :class:`HostProfiler`.

    Every :meth:`Cluster.run` entered inside the context attaches the
    profiler automatically (mirroring :class:`repro.obs.tracing`)::

        prof = HostProfiler(cprofile=True)
        with profiling(prof):
            run_scenario("allreduce")
        print(prof.report())
    """

    def __init__(self, profiler: HostProfiler) -> None:
        self.profiler = profiler

    def __enter__(self) -> HostProfiler:
        _ACTIVE.append(self.profiler)
        return self.profiler

    def __exit__(self, *_exc) -> None:
        _ACTIVE.pop()
