"""repro.perf — host-side performance observability.

Three pillars, all about the simulator's own *host* cost (the
complement of :mod:`repro.obs`, which observes *simulated* time):

* a benchmark harness (:mod:`repro.perf.suite`,
  :mod:`repro.perf.harness`) running registered DES micro-benchmarks
  and the ``benchmarks/bench_*.py`` scripts into schema-validated
  ``BENCH_<host>.json`` snapshots (:mod:`repro.perf.snapshot`);
* a self-profiler (:mod:`repro.perf.profiler`) layering host phase
  timers, engine-step cost, and opt-in cProfile hotspots over the
  supported observation hooks — exported next to the simulated spans
  in the Chrome trace;
* a compare/gate engine (:mod:`repro.perf.compare`) with noise-aware
  tolerances, used by CI to fail PRs that regress against a committed
  baseline (``repro bench compare base.json new.json --fail-over 15%``).

:mod:`repro.perf.hostclock` is the single sanctioned host-time source:
the only module allowed to touch ``time.perf_counter`` under the
repo's determinism lint.
"""

from .compare import BenchDelta, compare_snapshots, Comparison, parse_percent
from .harness import (
    discover_scripts,
    run_benchmarks,
    run_script_benchmarks,
    SLOWDOWN_ENV,
)
from .hostclock import host_counter, host_counter_ns, HostClock
from .profiler import active_profiler, HOST_PID, HostProfiler, profiling
from .snapshot import (
    BenchEntry,
    host_fingerprint,
    load_snapshot,
    SCHEMA,
    Snapshot,
    snapshot_filename,
    SnapshotError,
    validate_snapshot,
)
from .suite import Benchmark, benchmark, benchmark_ids, get_benchmark

__all__ = [
    # hostclock
    "HostClock",
    "host_counter",
    "host_counter_ns",
    # snapshot
    "SCHEMA",
    "SnapshotError",
    "BenchEntry",
    "Snapshot",
    "host_fingerprint",
    "snapshot_filename",
    "validate_snapshot",
    "load_snapshot",
    # suite
    "Benchmark",
    "benchmark",
    "benchmark_ids",
    "get_benchmark",
    # harness
    "run_benchmarks",
    "discover_scripts",
    "run_script_benchmarks",
    "SLOWDOWN_ENV",
    # profiler
    "HostProfiler",
    "active_profiler",
    "profiling",
    "HOST_PID",
    # compare
    "BenchDelta",
    "Comparison",
    "compare_snapshots",
    "parse_percent",
]
