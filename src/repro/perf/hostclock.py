"""The sanctioned host-time source.

The engine promises identical traces across runs, so ``repro lint``
flags every wall-clock read in the tree as a ``determinism-hazard``.
Host-side *observability* (the benchmark harness, the self-profiler,
the campaign trace anchor) legitimately needs the wall clock — but
scattering per-line suppressions hides real mistakes, so all of it
funnels through this one module instead.

``repro.lint.hygiene_rules`` whitelists exactly this file
(:data:`~repro.lint.hygiene_rules.HOST_TIME_MODULES`): the clock reads
below lint clean, and any *other* module that wants host time must
either import from here or argue for a suppression in review.

The values produced here are **host** seconds.  They must never feed
back into simulated state (``env.timeout``, ``comm.compute``, MPI
arguments) — the ``flow-determinism-taint`` analysis still polices
that for every consumer of this module.
"""

from __future__ import annotations

import time

__all__ = ["HostClock", "host_counter", "host_counter_ns", "host_sleep"]


def host_counter() -> float:
    """Monotonic host seconds (the one sanctioned ``perf_counter`` read)."""
    return time.perf_counter()


def host_counter_ns() -> int:
    """Monotonic host nanoseconds, for overhead-sensitive call sites."""
    return time.perf_counter_ns()


def host_sleep(seconds: float) -> None:
    """Block the host thread — never simulated time, which only the
    engine may advance.  Host-side waits (campaign retry backoff, chaos
    hang injections) funnel through here for the same greppability
    reason the clock reads do."""
    time.sleep(max(0.0, seconds))


class HostClock:
    """A host-side stopwatch anchored at construction.

    ``elapsed()`` is the host time since the anchor — the shape every
    host-side track in the Chrome-trace export uses (spans start at 0,
    not at an absolute wall-clock epoch, so exported artifacts carry
    durations only).
    """

    __slots__ = ("_t0",)

    def __init__(self) -> None:
        self._t0 = host_counter()

    def reset(self) -> None:
        """Re-anchor the stopwatch at the current instant."""
        self._t0 = host_counter()

    def elapsed(self) -> float:
        """Host seconds since the anchor (monotonic, never negative)."""
        return host_counter() - self._t0
