"""The registered DES micro-benchmark suite.

Each benchmark is one *host-timed iteration* of a hot path the
simulator's wall-clock depends on: event-heap churn in the engine,
eager and rendezvous p2p in ``simmpi``, software and tree collectives,
torus routing, Chrome-trace export throughput, and the full-tree lint
pass (which carries the 5 s CI budget formerly hard-coded in
``benchmarks/bench_lint.py``).

A benchmark function performs the work once and returns a small
``meta`` dict of deterministic facts (sizes, counts — never times);
the harness (:mod:`repro.perf.harness`) times it around K repetitions
with warmup and folds the result into a ``BENCH_*.json`` snapshot.

Register new benchmarks with the :func:`benchmark` decorator; the name
becomes the stable metric key the compare gate tracks across commits,
so renaming one shows up as *missing* in ``repro bench compare``.
"""

from __future__ import annotations

import pathlib
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional

__all__ = [
    "Benchmark",
    "benchmark",
    "benchmark_ids",
    "get_benchmark",
    "temporary_benchmark",
]


@dataclass(frozen=True)
class Benchmark:
    """One registered micro-benchmark."""

    name: str
    fn: Callable[[], Optional[Dict[str, Any]]]
    description: str = ""
    #: CI wall-time budget in seconds (None = unbudgeted)
    budget_s: Optional[float] = None
    #: per-benchmark compare tolerance overriding the global --fail-over
    threshold: Optional[float] = None
    #: deterministic workload facts merged into the snapshot meta
    meta: Dict[str, Any] = field(default_factory=dict)


_REGISTRY: Dict[str, Benchmark] = {}


def benchmark(
    name: str,
    *,
    description: str = "",
    budget_s: Optional[float] = None,
    threshold: Optional[float] = None,
    **meta: Any,
) -> Callable[[Callable[[], Optional[Dict[str, Any]]]], Callable[[], Optional[Dict[str, Any]]]]:
    """Register ``fn`` as the micro-benchmark ``name``."""

    def deco(fn: Callable[[], Optional[Dict[str, Any]]]):
        if name in _REGISTRY:
            raise ValueError(f"benchmark {name!r} already registered")
        _REGISTRY[name] = Benchmark(
            name=name,
            fn=fn,
            description=description or (fn.__doc__ or "").strip().splitlines()[0]
            if (description or fn.__doc__)
            else "",
            budget_s=budget_s,
            threshold=threshold,
            meta=dict(meta),
        )
        return fn

    return deco


def benchmark_ids() -> List[str]:
    """Registered benchmark names, sorted (the deterministic key order)."""
    return sorted(_REGISTRY)


def get_benchmark(name: str) -> Benchmark:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown benchmark {name!r}; known: {benchmark_ids()}"
        ) from None


@contextmanager
def temporary_benchmark(bench: Benchmark) -> Iterator[Benchmark]:
    """Register ``bench`` for the duration of a ``with`` block (tests)."""
    if bench.name in _REGISTRY:
        raise ValueError(f"benchmark {bench.name!r} already registered")
    _REGISTRY[bench.name] = bench
    try:
        yield bench
    finally:
        _REGISTRY.pop(bench.name, None)


# ---------------------------------------------------------------------------
# The built-in suite
# ---------------------------------------------------------------------------

_HEAP_PROCS = 64
_HEAP_TIMEOUTS = 400


@benchmark(
    "engine.heap_churn",
    description="event-heap push/pop churn: 64 interleaved timer processes",
    procs=_HEAP_PROCS,
    timeouts_per_proc=_HEAP_TIMEOUTS,
)
def _bench_heap_churn() -> Dict[str, Any]:
    from ..simengine import Engine, US

    env = Engine()

    def ticker(period: float):
        for _ in range(_HEAP_TIMEOUTS):
            yield env.timeout(period)

    for i in range(_HEAP_PROCS):
        # Co-prime-ish periods keep the heap ordering non-trivial.
        env.process(ticker((3 + (i * 7) % 11) * US))
    env.run()
    return {"events_processed": env.events_processed}


@benchmark(
    "simmpi.p2p_eager",
    description="two-node eager-protocol ping-pong (512 B x 200)",
    nbytes=512,
    repeats=200,
)
def _bench_p2p_eager() -> Dict[str, Any]:
    from ..kernels.pingpong import run_pingpong_des
    from ..machines import BGP

    r = run_pingpong_des(BGP, nbytes=512, repeats=200, mode="SMP")
    return {"machine": r.machine}


@benchmark(
    "simmpi.p2p_rendezvous",
    description="two-node rendezvous-protocol ping-pong (1 MiB x 40)",
    nbytes=1 << 20,
    repeats=40,
)
def _bench_p2p_rendezvous() -> Dict[str, Any]:
    from ..kernels.pingpong import run_pingpong_des
    from ..machines import BGP

    r = run_pingpong_des(BGP, nbytes=1 << 20, repeats=40, mode="SMP")
    return {"machine": r.machine}


def _collective_sweep(machine, ranks: int) -> int:
    from ..simmpi import Cluster

    sizes = [8, 512, 8192, 65536]

    def program(comm):
        for nbytes in sizes:
            yield from comm.allreduce(nbytes, dtype="float64")
            yield from comm.bcast(nbytes)
        yield from comm.barrier()
        return comm.now

    cluster = Cluster(machine, ranks=ranks, mode="SMP")
    result = cluster.run(program)
    return result.messages


@benchmark(
    "simmpi.collectives_software",
    description="software allreduce+bcast sweep, 16 ranks on XT4/QC",
    ranks=16,
)
def _bench_collectives_software() -> Dict[str, Any]:
    from ..machines import XT4_QC

    return {"messages": _collective_sweep(XT4_QC, 16)}


@benchmark(
    "simmpi.collectives_tree",
    description="tree-network allreduce+bcast sweep, 16 ranks on BG/P",
    ranks=16,
)
def _bench_collectives_tree() -> Dict[str, Any]:
    from ..machines import BGP

    return {"messages": _collective_sweep(BGP, 16)}


@benchmark(
    "topology.torus_route",
    description="dimension-order routing, all pairs from 32 sources on 8^3",
    shape=[8, 8, 8],
    sources=32,
)
def _bench_torus_route() -> Dict[str, Any]:
    from ..machines import BGP
    from ..topology.torus import Torus3D

    torus = Torus3D((8, 8, 8), BGP.torus)
    hops = 0
    sources = [(x, y, z) for x in (0, 2, 5, 7) for y in (0, 3) for z in (1, 4, 6, 7)]
    for src in sources:
        for dst in torus.nodes():
            hops += len(torus.route(src, dst))
    return {"routes": len(sources) * len(list(torus.nodes())), "hops": hops}


@benchmark(
    "obs.trace_export",
    description="Chrome-trace serialization + schema check, 30k events",
    events=30000,
)
def _bench_trace_export() -> Dict[str, Any]:
    from ..obs import chrome_trace, chrome_trace_json, validate_trace_events
    from ..obs.tracer import Tracer

    tracer = Tracer()
    tracer.set_process_name(0, "synthetic")
    for i in range(10000):
        t = i * 1e-6
        tracer.complete(0, "span", t, t + 5e-7, cat="bench", args={"i": i})
        tracer.instant(0, "tick", t, cat="bench")
        tracer.counter(0, "depth", t, {"events": i % 97})
    doc = chrome_trace(tracer)
    validate_trace_events(doc)
    text = chrome_trace_json(tracer)
    return {"events": len(doc["traceEvents"]), "json_bytes_floor": len(text) // (1 << 20)}


def _lint_tree() -> List[str]:
    """The lintable tree, from a source checkout (src [examples benchmarks])."""
    import repro

    root = pathlib.Path(repro.__file__).resolve().parents[2]
    dirs = [root / "src"]
    dirs += [d for d in (root / "examples", root / "benchmarks") if d.is_dir()]
    return [str(d) for d in dirs]


#: CI budget for one full-tree lint pass, in seconds (moved here from
#: benchmarks/bench_lint.py so every budget lives in one mechanism).
LINT_BUDGET_S = 5.0


@benchmark(
    "lint.full_tree",
    description="full-tree simlint pass (syntactic + flow analyses)",
    budget_s=LINT_BUDGET_S,
    threshold=1.0,
)
def _bench_lint_full_tree() -> Dict[str, Any]:
    from ..lint import lint_paths

    result = lint_paths(_lint_tree())
    if result.findings:
        raise AssertionError(
            "full-tree lint must be clean inside the benchmark:\n"
            + "\n".join(f.format() for f in result.findings)
        )
    return {"files": result.files_checked, "findings": 0}


@benchmark(
    "lint.syntactic_only",
    description="full-tree simlint pass with --no-flow (syntactic rules only)",
    budget_s=LINT_BUDGET_S,
    threshold=1.0,
)
def _bench_lint_syntactic() -> Dict[str, Any]:
    from ..lint import FLOW_RULE_IDS, lint_paths

    result = lint_paths(_lint_tree(), flow=False)
    flow_findings = [f for f in result.findings if f.rule in FLOW_RULE_IDS]
    if flow_findings:
        raise AssertionError("--no-flow pass must not emit flow findings")
    return {"files": result.files_checked}


# -- sharded parallel DES (repro.pdes) --------------------------------------

_PDES_SYNC_SCENARIO = "torus-ring"
_PDES_SYNC_SHARDS = 4
_PDES_SCALE_PARAMS = {"repeats": 4}
_PDES_SCALE_SHARDS = 8


@benchmark(
    "pdes.sync_overhead",
    description="conservative-sync layer: 4-shard inline torus-ring vs bare engines",
    scenario=_PDES_SYNC_SCENARIO,
    shards=_PDES_SYNC_SHARDS,
)
def _bench_pdes_sync_overhead() -> Dict[str, Any]:
    from ..pdes import run as pdes_run

    result = pdes_run(
        _PDES_SYNC_SCENARIO, shards=_PDES_SYNC_SHARDS, observe=False
    )
    return {
        "rounds": result.stats.rounds,
        "null_messages": result.stats.null_messages,
        "boundary_events": result.stats.boundary_events,
        "engine_steps": result.stats.engine_steps,
    }


@benchmark(
    "pdes.shard_merge",
    description="deterministic merge + conflict replay of 4-shard trace artifacts",
    scenario=_PDES_SYNC_SCENARIO,
    shards=_PDES_SYNC_SHARDS,
)
def _bench_pdes_shard_merge() -> Dict[str, Any]:
    from ..pdes.merge import (
        canonical_events_jsonl,
        canonical_metrics_json,
        canonical_trace_json,
        find_link_conflicts,
    )

    reports = _pdes_merge_reports()
    conflicts = find_link_conflicts(reports)
    trace = canonical_trace_json(reports)
    metrics = canonical_metrics_json(reports)
    events = canonical_events_jsonl(reports)
    return {
        "shards": len(reports),
        "conflicts": len(conflicts),
        "trace_bytes": len(trace),
        "metrics_bytes": len(metrics),
        "event_lines": events.count("\n"),
    }


_PDES_MERGE_CACHE: List[Any] = []


def _pdes_merge_reports() -> List[Any]:
    """Shard reports to merge, simulated once and reused across samples."""
    if not _PDES_MERGE_CACHE:
        from ..pdes import run as pdes_run

        result = pdes_run(_PDES_SYNC_SCENARIO, shards=_PDES_SYNC_SHARDS)
        _PDES_MERGE_CACHE.extend(result.reports)
    return list(_PDES_MERGE_CACHE)


@benchmark(
    "pdes.scale_serial",
    description="halo exchange, 4096 ranks, one engine (pair with pdes.scale_sharded)",
    scenario="halo",
    ranks=4096,
    **_PDES_SCALE_PARAMS,
)
def _bench_pdes_scale_serial() -> Dict[str, Any]:
    from ..pdes import run as pdes_run

    result = pdes_run("halo", shards=1, params=dict(_PDES_SCALE_PARAMS), observe=False)
    return {"messages": result.messages, "sim_elapsed_s": result.elapsed}


@benchmark(
    "pdes.scale_sharded",
    description="halo exchange, 4096 ranks, 8 shards on the process backend",
    scenario="halo",
    ranks=4096,
    shards=_PDES_SCALE_SHARDS,
    **_PDES_SCALE_PARAMS,
)
def _bench_pdes_scale_sharded() -> Dict[str, Any]:
    from ..pdes import run as pdes_run

    result = pdes_run(
        "halo",
        shards=_PDES_SCALE_SHARDS,
        backend="process",
        params=dict(_PDES_SCALE_PARAMS),
        observe=False,
    )
    return {
        "messages": result.messages,
        "rounds": result.stats.rounds,
        "engine_steps": result.stats.engine_steps,
    }
