"""The benchmark runner: repetitions, warmup, budgets, script adoption.

``run_benchmarks`` times registered micro-benchmarks
(:mod:`repro.perf.suite`) with K repetitions after a warmup, through
the sanctioned :mod:`repro.perf.hostclock`, and assembles a
schema-valid :class:`~repro.perf.snapshot.Snapshot` whose code
fingerprint reuses :func:`repro.campaign.cache.code_fingerprint` — the
same identity the campaign result cache keys on, so a snapshot is
attributable to the exact tree that produced it.

The existing ``benchmarks/bench_*.py`` pytest scripts ride the same
schema: ``run_script_benchmarks`` executes them under pytest with
``--benchmark-json`` and folds pytest-benchmark's per-test stats into
``script.<stem>::<test>`` entries, so ``repro bench compare`` gates
micro- and script-level timings through one mechanism.

``REPRO_BENCH_SLOWDOWN`` (a float multiplier applied to every sample)
exists to *prove the gate trips*: CI takes one snapshot with
``REPRO_BENCH_SLOWDOWN=2`` and asserts the compare against the honest
snapshot exits nonzero.  It is test plumbing, never set in real runs.
"""

from __future__ import annotations

import json
import os
import pathlib
import subprocess
import sys
import tempfile
from typing import Callable, Dict, Iterable, List, Optional

from .hostclock import host_counter
from .snapshot import BenchEntry, Snapshot
from .suite import Benchmark, benchmark_ids, get_benchmark

__all__ = [
    "run_benchmarks",
    "discover_scripts",
    "run_script_benchmarks",
    "SLOWDOWN_ENV",
]

#: Environment variable multiplying every measured sample (gate-proof only).
SLOWDOWN_ENV = "REPRO_BENCH_SLOWDOWN"


def _slowdown() -> float:
    raw = os.environ.get(SLOWDOWN_ENV)
    if not raw:
        return 1.0
    try:
        factor = float(raw)
    except ValueError:
        raise ValueError(f"{SLOWDOWN_ENV}={raw!r} is not a number") from None
    if factor <= 0:
        raise ValueError(f"{SLOWDOWN_ENV} must be positive, got {factor}")
    return factor


def _time_one(
    bench: Benchmark,
    repeats: int,
    warmup: int,
    clock: Callable[[], float],
) -> BenchEntry:
    meta = dict(bench.meta)
    for _ in range(warmup):
        bench.fn()
    samples: List[float] = []
    for _ in range(repeats):
        t0 = clock()
        out = bench.fn()
        samples.append(max(0.0, clock() - t0))
        if out:
            meta.update(out)
    factor = _slowdown()
    if factor != 1.0:
        samples = [s * factor for s in samples]
        meta["slowdown_injected"] = factor
    return BenchEntry(
        name=bench.name,
        samples_s=samples,
        warmup=warmup,
        budget_s=bench.budget_s,
        threshold=bench.threshold,
        meta=meta,
    )


def run_benchmarks(
    names: Optional[Iterable[str]] = None,
    repeats: int = 3,
    warmup: int = 1,
    clock: Callable[[], float] = host_counter,
    progress: Optional[Callable[[str, BenchEntry], None]] = None,
) -> Snapshot:
    """Run (a subset of) the registered suite; returns the snapshot.

    ``names`` defaults to every registered benchmark, in sorted order —
    the metric-key set is therefore deterministic for a given tree,
    which is what lets CI ``cmp`` the key lists of two fresh runs.
    ``progress`` (if given) is called with each finished entry.
    """
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    if warmup < 0:
        raise ValueError("warmup must be >= 0")
    from ..campaign.cache import code_fingerprint

    selected = sorted(names) if names is not None else benchmark_ids()
    entries: Dict[str, BenchEntry] = {}
    for name in selected:
        bench = get_benchmark(name)
        entry = _time_one(bench, repeats, warmup, clock)
        entries[name] = entry
        if progress is not None:
            progress(name, entry)
    return Snapshot(
        entries=entries,
        host=Snapshot.capture_host(),
        code_fingerprint=code_fingerprint(),
    )


# ---------------------------------------------------------------------------
# bench_*.py script adoption
# ---------------------------------------------------------------------------


def _benchmarks_dir() -> pathlib.Path:
    import repro

    return pathlib.Path(repro.__file__).resolve().parents[2] / "benchmarks"


def discover_scripts(
    directory: Optional[pathlib.Path] = None,
) -> List[pathlib.Path]:
    """The ``bench_*.py`` scripts of the checkout, sorted by name."""
    root = directory if directory is not None else _benchmarks_dir()
    if not root.is_dir():
        return []
    return sorted(root.glob("bench_*.py"))


def run_script_benchmarks(
    scripts: Iterable[pathlib.Path],
    extra_pytest_args: Optional[List[str]] = None,
) -> Dict[str, BenchEntry]:
    """Execute bench scripts under pytest; fold stats into entries.

    Each pytest-benchmark test in a script becomes one
    ``script.<stem>::<test>`` entry built from pytest-benchmark's own
    sample list (so min/median/stddev agree with its report).  A script
    whose tests use no ``benchmark`` fixture contributes a single
    whole-script wall-time entry instead, so every bench file is
    representable.  A failing script raises ``RuntimeError`` with the
    pytest tail.
    """
    entries: Dict[str, BenchEntry] = {}
    factor = _slowdown()
    for script in scripts:
        script = pathlib.Path(script)
        with tempfile.TemporaryDirectory(prefix="repro-bench-") as tmp:
            report = pathlib.Path(tmp) / "benchmark.json"
            cmd = [
                sys.executable,
                "-m",
                "pytest",
                str(script),
                "-q",
                "-p",
                "no:cacheprovider",
                f"--benchmark-json={report}",
            ] + (extra_pytest_args or [])
            t0 = host_counter()
            proc = subprocess.run(cmd, capture_output=True, text=True)
            elapsed = host_counter() - t0
            if proc.returncode != 0:
                tail = "\n".join((proc.stdout + proc.stderr).splitlines()[-15:])
                raise RuntimeError(
                    f"bench script {script.name} failed (exit {proc.returncode}):\n{tail}"
                )
            stem = script.stem
            folded = _fold_pytest_benchmark_report(stem, report, factor)
            if folded:
                entries.update(folded)
            else:
                entries[f"script.{stem}"] = BenchEntry(
                    name=f"script.{stem}",
                    samples_s=[elapsed * factor],
                    warmup=0,
                    meta={"source": script.name, "kind": "whole-script"},
                )
    return entries


def _fold_pytest_benchmark_report(
    stem: str, report: pathlib.Path, factor: float
) -> Dict[str, BenchEntry]:
    try:
        doc = json.loads(report.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError):
        return {}
    entries: Dict[str, BenchEntry] = {}
    for bench in doc.get("benchmarks", []):
        test = bench.get("name", "?")
        stats = bench.get("stats", {})
        samples = stats.get("data") or []
        if not samples:
            continue
        name = f"script.{stem}::{test}"
        entries[name] = BenchEntry(
            name=name,
            samples_s=[float(s) * factor for s in samples],
            warmup=int(stats.get("warmup_iterations", 0) or 0),
            meta={"source": f"{stem}.py", "kind": "pytest-benchmark"},
        )
    return entries
