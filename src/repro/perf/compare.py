"""The compare/gate engine behind ``repro bench compare``.

Compares two ``BENCH_*.json`` snapshots benchmark-by-benchmark and
classifies each as ``ok`` / ``regression`` / ``improved`` / ``missing``
/ ``new``.  The gate is noise-aware: a benchmark regresses only when
its new median exceeds

    base_median * (1 + threshold) + noise_slack

where ``threshold`` is the larger of the global ``--fail-over`` and
the benchmark's own per-entry tolerance, and ``noise_slack`` is twice
the summed sample stddevs of both snapshots, capped at half the base
median — median-of-K plus the slack keeps one noisy repetition from
failing a PR, while the cap guarantees a genuine 2x slowdown trips the
gate no matter how jittery the samples are.

A benchmark present in the baseline but absent from the new snapshot
is a *failure* (``missing``): silently dropping a benchmark is how
regressions hide.  New benchmarks are informational.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from .snapshot import Snapshot

__all__ = ["BenchDelta", "Comparison", "compare_snapshots", "parse_percent"]


def parse_percent(text: str) -> float:
    """Parse a tolerance: ``"15%"`` -> 0.15, ``"0.15"`` -> 0.15."""
    raw = text.strip()
    if raw.endswith("%"):
        value = float(raw[:-1]) / 100.0
    else:
        value = float(raw)
    if value < 0:
        raise ValueError(f"tolerance must be non-negative, got {text!r}")
    return value


@dataclass
class BenchDelta:
    """Verdict for one benchmark key across the two snapshots."""

    name: str
    status: str  # ok | regression | improved | missing | new
    base_median: Optional[float] = None
    new_median: Optional[float] = None
    #: relative change, new vs base (+0.5 = 50% slower); None when absent
    delta: Optional[float] = None
    #: the relative tolerance this benchmark was held to
    threshold: Optional[float] = None
    #: absolute noise slack (seconds) granted on top of the threshold
    noise_s: float = 0.0

    @property
    def failed(self) -> bool:
        return self.status in ("regression", "missing")

    def format(self) -> str:
        if self.status == "missing":
            return f"  [FAIL] {self.name:<40} missing from new snapshot"
        if self.status == "new":
            return f"  [new ] {self.name:<40} {self.new_median:.6f}s (no baseline)"
        mark = {"ok": " ok ", "improved": "FAST", "regression": "FAIL"}[self.status]
        pct = 100.0 * (self.delta or 0.0)
        return (
            f"  [{mark}] {self.name:<40} {self.base_median:.6f}s -> "
            f"{self.new_median:.6f}s  ({pct:+.1f}%, "
            f"allowed +{100.0 * (self.threshold or 0.0):.0f}% "
            f"+ {self.noise_s * 1e3:.2f}ms noise)"
        )


@dataclass
class Comparison:
    """Outcome of one snapshot-vs-snapshot gate evaluation."""

    deltas: List[BenchDelta] = field(default_factory=list)
    fail_over: float = 0.15
    #: host fingerprints differed — timings are indicative, not exact
    cross_host: bool = False

    @property
    def regressions(self) -> List[BenchDelta]:
        return [d for d in self.deltas if d.status == "regression"]

    @property
    def missing(self) -> List[BenchDelta]:
        return [d for d in self.deltas if d.status == "missing"]

    @property
    def ok(self) -> bool:
        return not any(d.failed for d in self.deltas)

    @property
    def exit_code(self) -> int:
        return 0 if self.ok else 1

    def render(self) -> str:
        lines = [
            f"== bench compare (fail-over {100.0 * self.fail_over:.0f}%, "
            f"{len(self.deltas)} benchmark(s)) =="
        ]
        if self.cross_host:
            lines.append(
                "  note: snapshots come from different hosts — medians are "
                "not directly comparable; treat deltas as indicative"
            )
        lines += [d.format() for d in self.deltas]
        failed = [d for d in self.deltas if d.failed]
        if failed:
            lines.append(
                f"GATE: {len(failed)} failure(s): "
                + ", ".join(d.name for d in failed)
            )
        else:
            lines.append("GATE: ok")
        return "\n".join(lines)


#: Multiplier on the summed stddevs granted as absolute noise slack.
_NOISE_SIGMA = 2.0

#: Ceiling on the noise slack, as a fraction of the base median.  An
#: arbitrarily jittery benchmark must not become ungateable: a genuine
#: 2x slowdown always clears threshold + cap, however noisy the runs.
_NOISE_CAP = 0.5


def compare_snapshots(
    base: Snapshot, new: Snapshot, fail_over: float = 0.15
) -> Comparison:
    """Evaluate ``new`` against the ``base`` snapshot."""
    if fail_over < 0:
        raise ValueError("fail_over must be non-negative")
    cmp = Comparison(
        fail_over=fail_over,
        cross_host=base.host.get("fingerprint") != new.host.get("fingerprint"),
    )
    names = sorted(set(base.entries) | set(new.entries))
    for name in names:
        a = base.entries.get(name)
        b = new.entries.get(name)
        if a is None:
            cmp.deltas.append(
                BenchDelta(name=name, status="new", new_median=b.median_s)
            )
            continue
        if b is None:
            cmp.deltas.append(
                BenchDelta(name=name, status="missing", base_median=a.median_s)
            )
            continue
        threshold = max(
            fail_over,
            a.threshold if a.threshold is not None else 0.0,
            b.threshold if b.threshold is not None else 0.0,
        )
        noise = min(
            _NOISE_SIGMA * (a.stddev_s + b.stddev_s),
            _NOISE_CAP * a.median_s,
        )
        delta = (
            (b.median_s - a.median_s) / a.median_s if a.median_s > 0 else 0.0
        )
        allowed = a.median_s * (1.0 + threshold) + noise
        floor = a.median_s * (1.0 - threshold) - noise
        if b.median_s > allowed:
            status = "regression"
        elif b.median_s < floor:
            status = "improved"
        else:
            status = "ok"
        cmp.deltas.append(
            BenchDelta(
                name=name,
                status=status,
                base_median=a.median_s,
                new_median=b.median_s,
                delta=delta,
                threshold=threshold,
                noise_s=noise,
            )
        )
    return cmp
