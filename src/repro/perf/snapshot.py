"""The ``BENCH_*.json`` snapshot: schema, validation, and IO.

One snapshot captures the timing of one benchmark pass on one host:
per-benchmark samples (host seconds) with min/median/mean/stddev, the
host fingerprint (a stable hash of the platform, never a timestamp),
and the code fingerprint (reusing
:func:`repro.campaign.cache.code_fingerprint`, so a snapshot is
attributable to an exact source tree).  No absolute wall-clock values
land in the file — durations only — so committed baselines do not
churn on re-generation.

``validate_snapshot`` is the schema gate ``load_snapshot`` and the CI
job run against every file; a malformed snapshot raises
:class:`SnapshotError` naming the offending field.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
import platform
import statistics
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Union

__all__ = [
    "SCHEMA",
    "SnapshotError",
    "BenchEntry",
    "Snapshot",
    "host_fingerprint",
    "snapshot_filename",
    "validate_snapshot",
    "load_snapshot",
]

#: Schema identifier carried by (and required in) every snapshot.
SCHEMA = "repro.perf/1"


class SnapshotError(ValueError):
    """A snapshot document violates the ``repro.perf/1`` schema."""


def host_fingerprint() -> str:
    """Stable 12-hex-digit id of this host's measurement context.

    Hashes the platform triple, the Python version, and the CPU count
    — everything that makes timings comparable — and nothing volatile
    (no hostname, no time), so the same machine always produces the
    same ``BENCH_<fingerprint>.json`` name.
    """
    acc = hashlib.sha256()
    for part in (
        platform.system(),
        platform.machine(),
        platform.python_implementation(),
        platform.python_version(),
        str(os.cpu_count() or 0),
    ):
        acc.update(part.encode())
        acc.update(b"\0")
    return acc.hexdigest()[:12]


def snapshot_filename(fingerprint: Optional[str] = None) -> str:
    """The canonical snapshot name for a host: ``BENCH_<fingerprint>.json``."""
    return f"BENCH_{fingerprint or host_fingerprint()}.json"


@dataclass
class BenchEntry:
    """Timing of one benchmark: samples plus derived statistics."""

    name: str
    #: individual timed repetitions, host seconds, in execution order
    samples_s: List[float]
    #: discarded warmup repetitions that preceded the samples
    warmup: int = 0
    #: CI wall-time budget (seconds) this benchmark must stay under
    budget_s: Optional[float] = None
    #: per-benchmark compare tolerance overriding the global --fail-over
    threshold: Optional[float] = None
    #: deterministic benchmark-reported facts (sizes, counts — no times)
    meta: Dict[str, Any] = field(default_factory=dict)

    @property
    def repeats(self) -> int:
        return len(self.samples_s)

    @property
    def min_s(self) -> float:
        return min(self.samples_s)

    @property
    def median_s(self) -> float:
        return statistics.median(self.samples_s)

    @property
    def mean_s(self) -> float:
        return statistics.fmean(self.samples_s)

    @property
    def stddev_s(self) -> float:
        if len(self.samples_s) < 2:
            return 0.0
        return statistics.stdev(self.samples_s)

    @property
    def over_budget(self) -> bool:
        return self.budget_s is not None and self.median_s > self.budget_s

    def to_dict(self) -> Dict[str, Any]:
        doc: Dict[str, Any] = {
            "samples_s": [round(s, 9) for s in self.samples_s],
            "warmup": self.warmup,
            "min_s": round(self.min_s, 9),
            "median_s": round(self.median_s, 9),
            "mean_s": round(self.mean_s, 9),
            "stddev_s": round(self.stddev_s, 9),
        }
        if self.budget_s is not None:
            doc["budget_s"] = self.budget_s
        if self.threshold is not None:
            doc["threshold"] = self.threshold
        if self.meta:
            doc["meta"] = self.meta
        return doc

    @classmethod
    def from_dict(cls, name: str, doc: Dict[str, Any]) -> "BenchEntry":
        return cls(
            name=name,
            samples_s=[float(s) for s in doc["samples_s"]],
            warmup=int(doc.get("warmup", 0)),
            budget_s=doc.get("budget_s"),
            threshold=doc.get("threshold"),
            meta=dict(doc.get("meta", {})),
        )


@dataclass
class Snapshot:
    """One benchmark pass: host + code identity and per-benchmark stats."""

    entries: Dict[str, BenchEntry]
    host: Dict[str, Any]
    code_fingerprint: str

    @classmethod
    def capture_host(cls) -> Dict[str, Any]:
        """The host identity block (stable facts only, no timestamps)."""
        return {
            "fingerprint": host_fingerprint(),
            "platform": f"{platform.system()}-{platform.machine()}",
            "python": platform.python_version(),
            "cpu_count": os.cpu_count() or 0,
        }

    def names(self) -> List[str]:
        return sorted(self.entries)

    def over_budget(self) -> List[BenchEntry]:
        return [self.entries[n] for n in self.names() if self.entries[n].over_budget]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": SCHEMA,
            "host": self.host,
            "code": self.code_fingerprint,
            "benchmarks": {n: self.entries[n].to_dict() for n in self.names()},
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, indent=2) + "\n"

    def write(self, path: Union[str, pathlib.Path]) -> pathlib.Path:
        """Write the snapshot; a directory target gets the canonical name."""
        path = pathlib.Path(path)
        if path.is_dir() or not path.suffix:
            path.mkdir(parents=True, exist_ok=True)
            path = path / snapshot_filename(self.host.get("fingerprint"))
        path.write_text(self.to_json(), encoding="utf-8")
        return path

    @classmethod
    def from_dict(cls, doc: Dict[str, Any]) -> "Snapshot":
        validate_snapshot(doc)
        return cls(
            entries={
                name: BenchEntry.from_dict(name, entry)
                for name, entry in doc["benchmarks"].items()
            },
            host=dict(doc["host"]),
            code_fingerprint=doc["code"],
        )


def validate_snapshot(doc: Any) -> None:
    """Validate a snapshot document; raise :class:`SnapshotError`.

    Checks the schema tag, the host block, the code fingerprint, and
    every benchmark entry (non-empty sample list of non-negative finite
    durations, consistent derived statistics fields present).
    """
    if not isinstance(doc, dict):
        raise SnapshotError("snapshot must be a JSON object")
    if doc.get("schema") != SCHEMA:
        raise SnapshotError(
            f"snapshot schema is {doc.get('schema')!r}, expected {SCHEMA!r}"
        )
    host = doc.get("host")
    if not isinstance(host, dict) or not isinstance(host.get("fingerprint"), str):
        raise SnapshotError("snapshot 'host' block missing or lacks a fingerprint")
    if not isinstance(doc.get("code"), str) or not doc["code"]:
        raise SnapshotError("snapshot 'code' fingerprint missing")
    benches = doc.get("benchmarks")
    if not isinstance(benches, dict):
        raise SnapshotError("snapshot 'benchmarks' must be an object")
    for name, entry in benches.items():
        if not isinstance(entry, dict):
            raise SnapshotError(f"benchmark {name!r} entry must be an object")
        samples = entry.get("samples_s")
        if not isinstance(samples, list) or not samples:
            raise SnapshotError(f"benchmark {name!r} has no samples_s list")
        for i, s in enumerate(samples):
            if not isinstance(s, (int, float)) or isinstance(s, bool):
                raise SnapshotError(f"benchmark {name!r} sample {i} is not a number")
            if not s >= 0.0 or s != s or s == float("inf"):
                raise SnapshotError(
                    f"benchmark {name!r} sample {i} is not a finite "
                    f"non-negative duration: {s!r}"
                )
        for stat in ("min_s", "median_s", "mean_s", "stddev_s"):
            if not isinstance(entry.get(stat), (int, float)):
                raise SnapshotError(f"benchmark {name!r} missing statistic {stat!r}")
        for optional in ("budget_s", "threshold"):
            value = entry.get(optional)
            if value is not None and (
                not isinstance(value, (int, float)) or value <= 0
            ):
                raise SnapshotError(
                    f"benchmark {name!r} {optional} must be a positive number"
                )


def load_snapshot(path: Union[str, pathlib.Path]) -> Snapshot:
    """Read and schema-validate one ``BENCH_*.json`` file."""
    path = pathlib.Path(path)
    try:
        doc = json.loads(path.read_text(encoding="utf-8"))
    except OSError as exc:
        raise SnapshotError(f"cannot read snapshot {path}: {exc}") from None
    except json.JSONDecodeError as exc:
        raise SnapshotError(f"snapshot {path} is not valid JSON: {exc}") from None
    try:
        return Snapshot.from_dict(doc)
    except SnapshotError as exc:
        raise SnapshotError(f"{path}: {exc}") from None
