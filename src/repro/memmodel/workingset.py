"""Working-set sizing helpers shared by kernel and application models."""

from __future__ import annotations

import math

__all__ = [
    "hpcc_problem_size",
    "hpl_local_matrix_bytes",
    "grid_working_set",
    "fits_in_memory",
]


def hpcc_problem_size(
    memory_per_task: float,
    tasks: int,
    fill_fraction: float = 0.80,
    block: int = 1,
) -> int:
    """HPCC global problem dimension N for an HPL-style dense matrix.

    Follows the HPCC developers' guidance the paper quotes: size the
    matrix to ``fill_fraction`` (80%) of aggregate memory.  The result
    is rounded down to a multiple of ``block`` (the HPL blocking factor
    NB; the paper used 144 on BG/P and 168 on the XT).
    """
    if not 0 < fill_fraction <= 1:
        raise ValueError("fill_fraction must be in (0, 1]")
    if tasks < 1 or memory_per_task <= 0:
        raise ValueError("need at least one task with positive memory")
    total = memory_per_task * tasks * fill_fraction
    n = int(math.sqrt(total / 8.0))
    if block > 1:
        n -= n % block
    return max(block, n)


def hpl_local_matrix_bytes(n: int, tasks: int) -> float:
    """Bytes of the HPL matrix resident on each task."""
    if n < 1 or tasks < 1:
        raise ValueError("n and tasks must be >= 1")
    return 8.0 * n * n / tasks


def grid_working_set(
    local_points: int, variables: int, bytes_per_value: int = 8
) -> int:
    """Resident bytes for a structured-grid rank with ``variables``
    state arrays over ``local_points`` points."""
    if local_points < 0 or variables < 0:
        raise ValueError("sizes must be non-negative")
    return local_points * variables * bytes_per_value


def fits_in_memory(working_set: float, memory_per_task: float, headroom: float = 0.9) -> bool:
    """Whether a rank's working set fits its memory share.

    ``headroom`` reserves a fraction for the OS/MPI buffers — the
    effect behind the paper's POP >40k-rank failures and the CAM pure-
    MPI FV 0.47x0.63 failures.
    """
    return working_set <= memory_per_task * headroom
