"""Cache-hierarchy model.

Estimates DRAM traffic and effective access latency for the three
access patterns that matter to the paper's kernels:

* ``streaming`` — unit-stride sweeps (STREAM, DGEMM panels, stencils):
  hardware prefetch hides latency; traffic = touched bytes (plus
  write-allocate where applicable).
* ``random`` — dependent random accesses (RandomAccess/GUPS): every
  access outside the covering cache level pays that level's latency.
* ``blocked`` — tiled kernels (DGEMM, FFT stages): traffic divided by
  the reuse factor the covering level provides.

Latency numbers are per-machine-family estimates documented inline; the
absolute values matter less than the BG/P-vs-XT relationships (the XT's
deeper out-of-order core overlaps more misses; the BG/P's in-order
PPC450 cannot).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..machines.specs import CacheLevel, MachineSpec

__all__ = ["CacheModel", "AccessPattern"]

#: Valid access-pattern names.
AccessPattern = str
_PATTERNS = ("streaming", "random", "blocked")


@dataclass(frozen=True)
class _LevelTiming:
    """Latency (seconds) and the cache level it belongs to."""

    level: Optional[CacheLevel]
    latency: float
    name: str


class CacheModel:
    """Cache behaviour of one node of a machine."""

    def __init__(self, machine: MachineSpec) -> None:
        self.machine = machine
        node = machine.node
        clk = 1.0 / node.core.clock_hz
        # Cycle-count latencies by family; DRAM latency in seconds.
        if machine.name.startswith("BG"):
            # PPC450: L1 4cy, L3 (eDRAM) ~50cy, DRAM ~104cy.
            self._levels = [
                _LevelTiming(node.l1, 4 * clk, "L1"),
                _LevelTiming(node.l3, 50 * clk, "L3"),
                _LevelTiming(None, 104 * clk, "DRAM"),
            ]
        else:
            # Opteron: L1 3cy, L2 12cy, (L3 ~40cy on Barcelona), DRAM ~60ns.
            levels = [
                _LevelTiming(node.l1, 3 * clk, "L1"),
                _LevelTiming(node.l2, 12 * clk, "L2"),
            ]
            if node.l3 is not None:
                levels.append(_LevelTiming(node.l3, 40 * clk, "L3"))
            levels.append(_LevelTiming(None, 60e-9, "DRAM"))
            self._levels = levels

    # ------------------------------------------------------------------
    def covering_level(self, working_set: int, cores_sharing: int = 1) -> _LevelTiming:
        """Smallest level that holds ``working_set`` bytes.

        ``cores_sharing`` splits shared levels among the active cores.
        """
        if working_set < 0:
            raise ValueError("working set must be non-negative")
        for lt in self._levels:
            if lt.level is None:
                return lt  # DRAM holds everything
            size = lt.level.size_bytes
            if lt.level.shared and cores_sharing > 1:
                size //= cores_sharing
            if working_set <= size:
                return lt
        return self._levels[-1]

    def random_access_latency(self, working_set: int, cores_sharing: int = 1) -> float:
        """Seconds per dependent random access into ``working_set`` bytes."""
        return self.covering_level(working_set, cores_sharing).latency

    def line_bytes(self) -> int:
        return self.machine.node.l1.line_bytes

    def dram_traffic(
        self,
        touched_bytes: float,
        working_set: int,
        pattern: AccessPattern = "streaming",
        reuse: float = 1.0,
        cores_sharing: int = 1,
    ) -> float:
        """Bytes that actually move from DRAM for a kernel.

        ``touched_bytes`` is the total data volume the kernel touches;
        ``working_set`` its resident set; ``reuse`` the reuse factor a
        blocked kernel achieves within the covering level.
        """
        if pattern not in _PATTERNS:
            raise ValueError(f"unknown pattern {pattern!r}; choose from {_PATTERNS}")
        lt = self.covering_level(working_set, cores_sharing)
        if lt.level is not None:
            return 0.0  # fits in cache: no DRAM traffic after warm-up
        if pattern == "streaming":
            return touched_bytes
        if pattern == "blocked":
            return touched_bytes / max(1.0, reuse)
        # random: every access drags a full line for (typically) 8 bytes
        line = self.line_bytes()
        return touched_bytes * (line / 8.0)
