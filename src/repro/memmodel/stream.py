"""STREAM bandwidth model (HPCC STREAM components of paper Table 2).

The four STREAM kernels move different byte counts per iteration
(write-allocate included, as on both machines' write-back caches):

=======  =======================  =============================
kernel   operation                bytes/iteration (8B doubles)
=======  =======================  =============================
copy     c[i] = a[i]              24  (read a, RFO c, write c)
scale    b[i] = s*c[i]            24
add      c[i] = a[i] + b[i]       32
triad    a[i] = b[i] + s*c[i]     32
=======  =======================  =============================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from ..machines.modes import Mode, resolve_mode
from ..machines.specs import MachineSpec

__all__ = ["STREAM_BYTES_PER_ITER", "StreamModel", "run_stream_numpy"]

#: Bytes moved per loop iteration, including write-allocate traffic.
STREAM_BYTES_PER_ITER: Dict[str, int] = {
    "copy": 24,
    "scale": 24,
    "add": 32,
    "triad": 32,
}


@dataclass(frozen=True)
class StreamResult:
    """Measured/modelled STREAM rates in bytes/s."""

    copy: float
    scale: float
    add: float
    triad: float

    def as_dict(self) -> Dict[str, float]:
        return {
            "copy": self.copy,
            "scale": self.scale,
            "add": self.add,
            "triad": self.triad,
        }


class StreamModel:
    """Predict STREAM rates per process on a machine in a given mode."""

    def __init__(self, machine: MachineSpec, mode: Mode | str = "VN") -> None:
        self.machine = machine
        self.mode = resolve_mode(machine, mode)

    def bandwidth_per_process(self, processes_per_node: int | None = None) -> float:
        """Sustained triad bytes/s for each of ``processes_per_node``.

        Defaults to the mode's task count.  Passing 1 gives the HPCC
        'single process' figure; the mode's full count gives the
        'embarrassingly parallel' figure (paper Table 2).
        """
        ppn = (
            self.mode.tasks_per_node if processes_per_node is None else processes_per_node
        )
        return self.machine.node.memory.stream_per_process(ppn)

    def rates(self, processes_per_node: int | None = None) -> StreamResult:
        """All four kernel rates; copy/scale run slightly faster than
        add/triad because they move fewer bytes per iteration but the
        *bandwidth* is the same — rates here are bytes/s, so equal."""
        bw = self.bandwidth_per_process(processes_per_node)
        return StreamResult(copy=bw, scale=bw, add=bw, triad=bw)

    def decline_ratio(self) -> float:
        """EP-rate / single-rate: 1.0 means no decline under full load.

        Table 2 commentary: BG/P shows *less* decline than the XT.
        """
        single = self.bandwidth_per_process(1)
        ep = self.bandwidth_per_process(self.machine.node.cores)
        return ep / single if single > 0 else 0.0


def run_stream_numpy(n: int = 1_000_000, repeats: int = 3) -> StreamResult:
    """Actually run STREAM with numpy on the host (validation path).

    Returns measured bytes/s for each kernel; used by tests to confirm
    the byte-count accounting, not to predict 2008 hardware.
    """
    import time

    if n < 1:
        raise ValueError("n must be >= 1")
    rng = np.random.default_rng(7)
    a = rng.random(n)
    b = rng.random(n)
    c = rng.random(n)
    s = 1.5
    rates: Dict[str, float] = {}

    def timed(fn, bytes_per_iter: int) -> float:
        best = float("inf")
        for _ in range(repeats):
            t0 = time.perf_counter()  # simlint: ignore[determinism-hazard]
            fn()
            best = min(best, time.perf_counter() - t0)  # simlint: ignore[determinism-hazard]
        return n * bytes_per_iter / best

    rates["copy"] = timed(lambda: np.copyto(c, a), STREAM_BYTES_PER_ITER["copy"])
    rates["scale"] = timed(lambda: np.multiply(c, s, out=b), STREAM_BYTES_PER_ITER["scale"])
    rates["add"] = timed(lambda: np.add(a, b, out=c), STREAM_BYTES_PER_ITER["add"])
    rates["triad"] = timed(
        lambda: np.add(b, s * c, out=a), STREAM_BYTES_PER_ITER["triad"]
    )
    return StreamResult(**rates)
