"""Roofline execution model: time = max(flop-limited, memory-limited).

Every kernel/application workload in the reproduction reduces its
per-rank work to (flops, dram_bytes, efficiency) tuples; this module
turns them into time on a given machine+mode, honouring how the mode
splits node resources among MPI tasks.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..machines.modes import Mode, ModeConfig, resolve_mode
from ..machines.specs import MachineSpec

__all__ = ["Roofline", "KernelWork"]


@dataclass(frozen=True)
class KernelWork:
    """Per-rank work of one kernel invocation."""

    flops: float = 0.0
    dram_bytes: float = 0.0
    #: fraction of peak flops the kernel's inner loop can sustain when
    #: compute-bound (vectorisation/FMA quality); 1.0 = perfectly tuned
    flop_efficiency: float = 1.0

    def __post_init__(self) -> None:
        if self.flops < 0 or self.dram_bytes < 0:
            raise ValueError("work quantities must be non-negative")
        if not 0 < self.flop_efficiency <= 1:
            raise ValueError("flop_efficiency must be in (0, 1]")

    @property
    def arithmetic_intensity(self) -> float:
        """Flops per DRAM byte (inf for in-cache kernels)."""
        return self.flops / self.dram_bytes if self.dram_bytes > 0 else float("inf")

    def __add__(self, other: "KernelWork") -> "KernelWork":
        return KernelWork(
            flops=self.flops + other.flops,
            dram_bytes=self.dram_bytes + other.dram_bytes,
            flop_efficiency=min(self.flop_efficiency, other.flop_efficiency),
        )

    def scaled(self, factor: float) -> "KernelWork":
        """The same kernel with ``factor`` times the work."""
        if factor < 0:
            raise ValueError("scale factor must be non-negative")
        return KernelWork(
            flops=self.flops * factor,
            dram_bytes=self.dram_bytes * factor,
            flop_efficiency=self.flop_efficiency,
        )


class Roofline:
    """Per-rank execution-time estimator for one machine + mode."""

    def __init__(self, machine: MachineSpec, mode: Mode | str = "VN") -> None:
        self.machine = machine
        self.mode: ModeConfig = resolve_mode(machine, mode)

    @property
    def peak_flops(self) -> float:
        """Peak flop/s available to one task (its cores)."""
        return self.mode.peak_flops_per_task

    @property
    def mem_bandwidth(self) -> float:
        """Sustained DRAM bandwidth available to one task, bytes/s."""
        return self.mode.stream_bw_per_task

    def time(self, work: KernelWork, threads_efficiency: float = 1.0) -> float:
        """Execution time of ``work`` on one rank.

        ``threads_efficiency`` discounts the task's extra cores when
        OpenMP threading is imperfect (1.0 = perfect scaling over the
        task's cores, used by the CAM hybrid-mode model).
        """
        if not 0 < threads_efficiency <= 1:
            raise ValueError("threads_efficiency must be in (0, 1]")
        threads = self.mode.threads_per_task
        effective_flops = self.peak_flops * work.flop_efficiency
        if threads > 1:
            # one core always contributes fully; extras are discounted
            frac = (1 + (threads - 1) * threads_efficiency) / threads
            effective_flops *= frac
        t_flop = work.flops / effective_flops if effective_flops > 0 else 0.0
        t_mem = (
            work.dram_bytes / self.mem_bandwidth if self.mem_bandwidth > 0 else 0.0
        )
        return max(t_flop, t_mem)

    def rate_gflops(self, work: KernelWork) -> float:
        """Achieved GFlop/s for ``work`` on one rank."""
        t = self.time(work)
        return (work.flops / t) / 1e9 if t > 0 else 0.0
