"""Node memory-system models: caches, STREAM, roofline, working sets."""

from .cache import CacheModel
from .roofline import Roofline, KernelWork
from .stream import StreamModel, StreamResult, STREAM_BYTES_PER_ITER, run_stream_numpy
from .workingset import (
    hpcc_problem_size,
    hpl_local_matrix_bytes,
    grid_working_set,
    fits_in_memory,
)

__all__ = [
    "CacheModel",
    "Roofline",
    "KernelWork",
    "StreamModel",
    "StreamResult",
    "STREAM_BYTES_PER_ITER",
    "run_stream_numpy",
    "hpcc_problem_size",
    "hpl_local_matrix_bytes",
    "grid_working_set",
    "fits_in_memory",
]
