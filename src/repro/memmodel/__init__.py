"""Node memory-system models: caches, STREAM, roofline, working sets."""

from .cache import CacheModel
from .roofline import KernelWork, Roofline
from .stream import run_stream_numpy, STREAM_BYTES_PER_ITER, StreamModel, StreamResult
from .workingset import fits_in_memory, grid_working_set, hpcc_problem_size, hpl_local_matrix_bytes

__all__ = [
    "CacheModel",
    "Roofline",
    "KernelWork",
    "StreamModel",
    "StreamResult",
    "STREAM_BYTES_PER_ITER",
    "run_stream_numpy",
    "hpcc_problem_size",
    "hpl_local_matrix_bytes",
    "grid_working_set",
    "fits_in_memory",
]
