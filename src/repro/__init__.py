"""repro: a full reproduction of "Early Evaluation of IBM BlueGene/P"
(Alam et al., SC 2008) as a simulation-backed evaluation framework.

The paper measured real BlueGene/P and Cray XT hardware; this library
substitutes parametric machine models, a link-level discrete-event
network/MPI simulator, and mini-app workloads so that every table and
figure of the paper can be regenerated on a laptop.

Quick start::

    from repro.machines import BGP, XT4_QC
    from repro.simmpi import Cluster

    def pingpong(comm):
        if comm.rank == 0:
            yield from comm.send(1, nbytes=8)
            yield from comm.recv(src=1)
        else:
            yield from comm.recv(src=0)
            yield from comm.send(0, nbytes=8)
        return comm.now

    print(Cluster(BGP, ranks=2, mode="VN").run(pingpong).elapsed)

See ``DESIGN.md`` for the system inventory and the per-experiment
index, and ``EXPERIMENTS.md`` for paper-vs-measured comparisons.
"""

__version__ = "1.0.0"

__all__ = [
    "simengine",
    "machines",
    "topology",
    "simmpi",
    "memmodel",
    "kernels",
    "halo",
    "imb",
    "apps",
    "power",
    "core",
]
