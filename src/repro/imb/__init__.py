"""IMB-style MPI collective latency benchmarks (paper Fig. 3)."""

from .harness import ImbBenchmark, ImbPoint, DEFAULT_SIZES, DEFAULT_PROC_COUNTS

__all__ = ["ImbBenchmark", "ImbPoint", "DEFAULT_SIZES", "DEFAULT_PROC_COUNTS"]
