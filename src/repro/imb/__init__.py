"""IMB-style MPI collective latency benchmarks (paper Fig. 3)."""

from .harness import DEFAULT_PROC_COUNTS, DEFAULT_SIZES, ImbBenchmark, ImbPoint

__all__ = ["ImbBenchmark", "ImbPoint", "DEFAULT_SIZES", "DEFAULT_PROC_COUNTS"]
