"""Intel MPI Benchmark (IMB) style collective-latency harness.

Paper Section II.B.2 / Figure 3: IMB Allreduce and Bcast latency,
measured (a/c) across message sizes at 8192 processes and (b/d) across
process counts at 32 KB, comparing BG/P (VN mode) with the XT4/QC —
including the single- vs double-precision Allreduce experiment (the
custom IMB variant the authors wrote).

The harness produces latency curves from the analytic model (the scale
of Fig. 3 is 8192 processes) and can cross-check any point against the
message-level simulator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from ..machines.modes import Mode
from ..machines.specs import MachineSpec
from ..simmpi import Cluster, CostModel

__all__ = ["ImbPoint", "ImbBenchmark", "DEFAULT_SIZES", "DEFAULT_PROC_COUNTS"]

#: IMB's default size ladder (bytes), powers of four like Fig. 3a/c.
DEFAULT_SIZES: Sequence[int] = tuple(4**k for k in range(1, 11))

#: Process counts for the scaling panels (Fig. 3b/d).
DEFAULT_PROC_COUNTS: Sequence[int] = (16, 64, 256, 1024, 4096, 8192)


@dataclass(frozen=True)
class ImbPoint:
    """One point of an IMB latency curve."""

    machine: str
    operation: str
    dtype: str
    processes: int
    nbytes: int
    latency_us: float


class ImbBenchmark:
    """Allreduce/Bcast latency curves on one machine."""

    def __init__(self, machine: MachineSpec, mode: Mode | str = "VN") -> None:
        self.machine = machine
        self.mode = mode

    # -- analytic curves -------------------------------------------------
    def _one(self, op: str, processes: int, nbytes: int, dtype: str) -> ImbPoint:
        cost = CostModel(self.machine, self.mode, processes)
        if op == "allreduce":
            t = cost.allreduce_time(nbytes, dtype=dtype)
        elif op == "bcast":
            t = cost.bcast_time(nbytes, dtype=dtype)
        else:
            raise ValueError(f"unknown operation {op!r}")
        return ImbPoint(
            machine=self.machine.name,
            operation=op,
            dtype=dtype,
            processes=processes,
            nbytes=nbytes,
            latency_us=t * 1e6,
        )

    def size_sweep(
        self,
        op: str,
        processes: int = 8192,
        sizes: Sequence[int] = DEFAULT_SIZES,
        dtype: str = "float64",
    ) -> List[ImbPoint]:
        """Latency vs message size at fixed process count (Fig. 3a/c)."""
        return [self._one(op, processes, n, dtype) for n in sizes]

    def process_sweep(
        self,
        op: str,
        nbytes: int = 32 * 1024,
        proc_counts: Sequence[int] = DEFAULT_PROC_COUNTS,
        dtype: str = "float64",
    ) -> List[ImbPoint]:
        """Latency vs process count at fixed 32 KB payload (Fig. 3b/d)."""
        return [self._one(op, p, nbytes, dtype) for p in proc_counts]

    # -- message-level cross-check ------------------------------------------
    def measure_des(
        self, op: str, processes: int, nbytes: int, dtype: str = "float64"
    ) -> ImbPoint:
        """Run the collective in the simulator and report its latency."""

        def program(comm):
            if op == "allreduce":
                yield from comm.allreduce(nbytes, dtype=dtype)
            elif op == "bcast":
                yield from comm.bcast(nbytes, root=0, dtype=dtype)
            else:
                raise ValueError(f"unknown operation {op!r}")

        cluster = Cluster(self.machine, ranks=processes, mode=self.mode)
        res = cluster.run(program)
        return ImbPoint(
            machine=self.machine.name,
            operation=op,
            dtype=dtype,
            processes=processes,
            nbytes=nbytes,
            latency_us=res.elapsed * 1e6,
        )
