"""Command-line interface: regenerate paper artifacts and run checks.

Usage::

    python -m repro list                 # available experiments
    python -m repro run table3           # regenerate one artifact
    python -m repro run all -o out/      # regenerate everything to files
    python -m repro run all -o out/ --jobs 4   # ... through the worker pool
    python -m repro run fig3 --trace t.json --metrics m.json
    python -m repro campaign run all -o camp/ --jobs 4   # cached campaign
    python -m repro campaign run all -o camp/ --chaos seed=42,kills=1  # fault drill
    python -m repro campaign status -o camp/
    python -m repro campaign status -o camp/ --json      # machine-readable
    python -m repro campaign clean -o camp/ --cache
    python -m repro chaos plan all --chaos seed=42,kills=1,torn=1  # dry-run
    python -m repro chaos plan all --chaos seed=42,kills=1 --json  # machine-readable
    python -m repro serve start -o srv/ --jobs 4         # durable campaign service
    python -m repro serve submit all -o srv/ --wait      # submit + poll a campaign
    python -m repro serve status -o srv/ --json
    python -m repro serve drain -o srv/ --wait           # finish queue, then exit
    python -m repro pdes list            # sharded-DES scenarios
    python -m repro pdes run torus-ring --shards 4 -o pdes/   # sharded run
    python -m repro pdes run halo --shards 8 --backend process --bare
    python -m repro run fig2 --shards 4  # ambient sharding for experiments
    python -m repro trace pop            # traced DES scenario -> Chrome trace
    python -m repro trace pingpong --param nbytes=65536
    python -m repro faults link-kill     # fault-injection scenario
    python -m repro faults checkpoint --simulate   # executed vs analytic
    python -m repro recover pop-shrink   # checkpoint/restart + ULFM recovery
    python -m repro validate             # check the ten paper claims
    python -m repro machines             # show the machine catalog
    python -m repro lint src/            # simlint static analysis
    python -m repro bench list           # registered micro-benchmarks
    python -m repro bench run -o out/    # time the suite -> BENCH_<host>.json
    python -m repro bench compare base.json new.json --fail-over 15%
    python -m repro bench profile allreduce   # host-side self-profile
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
from typing import Any, Dict, List, Optional

__all__ = ["main"]


def _parse_params(pairs: Optional[List[str]]) -> Dict[str, float]:
    """Parse repeated ``--param key=value`` flags into numeric kwargs.

    Thin alias of :func:`repro.core.params.parse_params` — the one
    canonical key=value grammar, shared with the campaign spec loader
    so both paths produce the same one-line error (the CLI prints it
    and exits 2, same as an unknown scenario id).
    """
    from .core.params import parse_params

    return parse_params(pairs)


def _cmd_list(_args: argparse.Namespace) -> int:
    from .core.evaluation import EXPERIMENTS

    descriptions = {
        "table1": "System configuration summary",
        "table2": "HPCC comparison, 4096 processes VN",
        "fig1": "HPCC HPL/FFT/PTRANS/RandomAccess scaling",
        "fig2": "HALO protocols/mappings/grids on BG/P",
        "fig3": "IMB Allreduce/Bcast latency",
        "top500": "TOP500 HPL run (Section II.C)",
        "fig4": "POP tenth-degree benchmark",
        "fig5": "CAM spectral/FV benchmarks",
        "fig6": "S3D weak scaling",
        "fig7": "GYRO strong/weak scaling",
        "fig8": "LAMMPS/PMEMD on RuBisCO",
        "table3": "Power comparison",
        "lists": "TOP500/Green500 placement + density (extension)",
    }
    for eid in EXPERIMENTS:
        print(f"  {eid:8s} {descriptions.get(eid, '')}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    from .core.evaluation import EXPERIMENTS, run_experiment

    try:
        params = _parse_params(args.params)
    except ValueError as exc:
        print(exc, file=sys.stderr)
        return 2
    jobs = getattr(args, "jobs", 1) or 1
    shards = getattr(args, "shards", None)
    if shards is not None and shards < 1:
        print("repro run: --shards must be >= 1", file=sys.stderr)
        return 2
    if args.experiment == "all" and args.output:
        # `run all -o` rides the campaign layer: worker pool, result
        # cache under <out>/.cache, and a manifest.json index.
        return _run_all_campaign(args, params, jobs)
    ids = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    outdir: Optional[pathlib.Path] = (
        pathlib.Path(args.output) if args.output else None
    )
    if outdir:
        outdir.mkdir(parents=True, exist_ok=True)
    if args.experiment == "all" and jobs > 1:
        # Parallel compute, ordered printing; no directory => no cache.
        from .campaign import CampaignSpec, SpecError, execute_job, pool_map

        try:
            expanded = CampaignSpec.from_ids(ids, params).expand()
        except (SpecError, KeyError) as exc:
            print(exc, file=sys.stderr)
            return 2
        with pool_map(jobs) as ex:
            outcomes = list(
                ex(
                    _execute_job_tuple,
                    [
                        (j.job_id, j.experiment, j.params, shards)
                        for j in expanded
                    ],
                )
            )
        status = 0
        for outcome in outcomes:
            if outcome.ok:
                print(outcome.text)
                print()
            else:
                print(f"{outcome.job_id}: {outcome.error_type}: {outcome.error}",
                      file=sys.stderr)
                status = 1
        return status
    tracer = None
    if args.trace or args.metrics:
        from .obs import Tracer, tracing

        tracer = Tracer()
    sharded_fallbacks = 0
    for eid in ids:
        try:
            with _maybe_sharding(shards):
                if tracer is not None:
                    with tracing(tracer):
                        text = run_experiment(eid, **params)
                else:
                    text = run_experiment(eid, **params)
        except KeyError as exc:
            print(exc, file=sys.stderr)
            return 2
        if shards is not None and shards > 1:
            from .pdes import fallback_count

            sharded_fallbacks += fallback_count()
        if outdir:
            path = outdir / f"{eid}.txt"
            path.write_text(text + "\n")
            print(f"wrote {path}")
        else:
            print(text)
            print()
    if shards is not None and shards > 1:
        print(
            f"pdes: ambient sharding x{shards}; "
            f"{sharded_fallbacks} single-engine fallback(s)"
        )
    if tracer is not None:
        from .obs import write_chrome_trace, write_metrics

        if args.trace:
            print(f"wrote {write_chrome_trace(tracer, args.trace)}")
        if args.metrics:
            print(f"wrote {write_metrics(tracer, args.metrics)}")
    return 0


def _maybe_sharding(shards: Optional[int]):
    """Ambient sharding context when ``--shards`` > 1, else a no-op."""
    if shards is not None and shards > 1:
        from .pdes import sharding

        return sharding(shards)
    import contextlib

    return contextlib.nullcontext()


def _execute_job_tuple(job):
    """Picklable shim: ``pool_map`` feeds (id, experiment, params[, shards])."""
    from .campaign import execute_job

    job_id, experiment, params = job[:3]
    shards = job[3] if len(job) > 3 else None
    return execute_job(job_id, experiment, params, shards=shards)


def _run_all_campaign(args: argparse.Namespace, params: Dict[str, float], jobs: int) -> int:
    """``repro run all -o out/``: campaign-backed regeneration + manifest."""
    from .campaign import MANIFEST_FILE, CampaignRunner, CampaignSpec, SpecError

    outdir = pathlib.Path(args.output)
    try:
        spec = CampaignSpec.from_ids(["all"], params, name="run-all")
    except KeyError as exc:
        print(exc, file=sys.stderr)
        return 2
    tracer = None
    if args.trace or args.metrics:
        from .obs import Tracer

        tracer = Tracer()
    runner = CampaignRunner(
        spec, outdir, jobs=jobs, tracer=tracer,
        shards=getattr(args, "shards", None),
    )
    try:
        result = _run_campaign(runner, tracer)
    except SpecError as exc:
        print(exc, file=sys.stderr)
        return 2
    status = 0
    for record in result.records:
        if record.ok:
            print(f"wrote {outdir / record.artifact}")
        else:
            print(
                f"{record.job_id}: {record.error_type}: {record.error}",
                file=sys.stderr,
            )
            status = 1
    print(f"wrote {outdir / MANIFEST_FILE}")
    print(result.summary_line())
    if tracer is not None:
        from .obs import write_chrome_trace, write_metrics

        if args.trace:
            print(f"wrote {write_chrome_trace(tracer, args.trace)}")
        if args.metrics:
            print(f"wrote {write_metrics(tracer, args.metrics)}")
    return status


def _run_campaign(runner, tracer, **kwargs):
    """Run a campaign pass, under the ambient tracer when one is given
    (inline jobs are then traced end-to-end; pool workers record only
    the campaign track, as documented)."""
    if tracer is None:
        return runner.run(**kwargs)
    from .obs import tracing

    with tracing(tracer):
        return runner.run(**kwargs)


def _cmd_trace(args: argparse.Namespace) -> int:
    from .obs import (
        run_scenario,
        scenario_ids,
        summary,
        write_chrome_trace,
        write_metrics,
    )

    if args.list_scenarios:
        for sid in scenario_ids():
            print(f"  {sid}")
        return 0
    if not args.scenario:
        print("repro trace: give a scenario id (or --list)", file=sys.stderr)
        return 2
    try:
        params = _parse_params(args.params)
        tracer, result_line = run_scenario(args.scenario, **params)
    except (KeyError, ValueError) as exc:
        print(exc, file=sys.stderr)
        return 2
    print(result_line)
    out = args.output or f"{args.scenario}.trace.json"
    print(f"wrote {write_chrome_trace(tracer, out)}")
    if args.metrics:
        print(f"wrote {write_metrics(tracer, args.metrics)}")
    if not args.no_summary:
        print(summary(tracer, n=args.top))
    return 0


def _cmd_faults(args: argparse.Namespace) -> int:
    from .faults.scenarios import fault_scenario_ids, run_fault_scenario
    from .obs import write_chrome_trace, write_metrics

    if args.list_scenarios:
        for sid in fault_scenario_ids():
            print(f"  {sid}")
        return 0
    if not args.scenario:
        print("repro faults: give a scenario id (or --list)", file=sys.stderr)
        return 2
    try:
        params = _parse_params(args.params)
        if args.simulate:
            params["simulate"] = True
        tracer, result_line = run_fault_scenario(args.scenario, **params)
    except (KeyError, ValueError) as exc:
        print(exc, file=sys.stderr)
        return 2
    print(result_line)
    if args.output:
        print(f"wrote {write_chrome_trace(tracer, args.output)}")
    if args.metrics:
        print(f"wrote {write_metrics(tracer, args.metrics)}")
    return 0


def _cmd_recover(args: argparse.Namespace) -> int:
    from .obs import write_chrome_trace, write_metrics
    from .recovery.scenarios import recover_scenario_ids, run_recover_scenario

    if args.list_scenarios:
        for sid in recover_scenario_ids():
            print(f"  {sid}")
        return 0
    if not args.scenario:
        print("repro recover: give a scenario id (or --list)", file=sys.stderr)
        return 2
    try:
        params = _parse_params(args.params)
        tracer, result_line = run_recover_scenario(args.scenario, **params)
    except (KeyError, ValueError) as exc:
        print(exc, file=sys.stderr)
        return 2
    print(result_line)
    if args.output:
        print(f"wrote {write_chrome_trace(tracer, args.output)}")
    if args.metrics:
        print(f"wrote {write_metrics(tracer, args.metrics)}")
    return 0


DEFAULT_CAMPAIGN_DIR = "campaign-out"


def _cmd_campaign_run(args: argparse.Namespace) -> int:
    from .campaign import CampaignRunner, CampaignSpec, SpecError
    from .chaos import ChaosError, ChaosSpec

    try:
        params = _parse_params(args.params)
    except ValueError as exc:
        print(exc, file=sys.stderr)
        return 2
    chaos = None
    if args.chaos:
        try:
            chaos = ChaosSpec.parse(args.chaos)
        except ChaosError as exc:
            print(exc, file=sys.stderr)
            return 2
    targets = args.targets or []
    if args.spec and targets:
        print("repro campaign run: give either --spec or experiment ids, not both",
              file=sys.stderr)
        return 2
    try:
        if args.spec:
            spec = CampaignSpec.from_file(args.spec)
        elif len(targets) == 1 and targets[0].endswith(".json"):
            spec = CampaignSpec.from_file(targets[0])
        elif targets:
            spec = CampaignSpec.from_ids(targets, params)
        else:
            print("repro campaign run: give a spec file, experiment ids, or 'all'",
                  file=sys.stderr)
            return 2
    except (OSError, SpecError) as exc:
        print(exc, file=sys.stderr)
        return 2
    tracer = None
    if args.trace or args.metrics:
        from .obs import Tracer

        tracer = Tracer()
    runner = CampaignRunner(
        spec,
        args.dir,
        jobs=args.jobs,
        retries=args.retries,
        cache_dir=args.cache_dir,
        tracer=tracer,
        deadline_s=args.deadline,
        backoff_base=args.backoff_base,
        quarantine_after=args.quarantine_after,
        chaos=chaos,
        shards=args.shards,
    )
    try:
        result = _run_campaign(runner, tracer, max_jobs=args.max_jobs, fresh=args.fresh)
    except (SpecError, ChaosError, KeyError) as exc:
        print(exc, file=sys.stderr)
        return 2
    for record in result.records:
        label = {"cache": "hit ", "computed": "run ", "journal": "skip"}.get(
            record.source, "----"
        )
        line = f"[{label}] {record.job_id:24s} {record.status}"
        if record.status == "failed":
            line += f"  {record.error_type}({record.classification}): {record.error}"
        elif record.status == "quarantined":
            line += f"  poison after {record.attempts} attempt(s): {record.error}"
        print(line)
    print(result.summary_line())
    if chaos is not None:
        print(runner.chaos_report())
    if tracer is not None:
        from .obs import write_chrome_trace, write_metrics

        if args.trace:
            print(f"wrote {write_chrome_trace(tracer, args.trace)}")
        if args.metrics:
            print(f"wrote {write_metrics(tracer, args.metrics)}")
    return 1 if result.failed else 0


def _cmd_campaign_status(args: argparse.Namespace) -> int:
    from .campaign import NEVER_RETRY, load_or_rebuild_manifest

    directory = pathlib.Path(args.dir)
    # A torn/truncated manifest (hard kill mid-rewrite, disk tear) is
    # not fatal: the fsync'd journal rebuilds everything that finished.
    doc = load_or_rebuild_manifest(directory)
    if doc is None:
        print(f"repro campaign status: no manifest under {directory}/ "
              "(run a campaign first)", file=sys.stderr)
        return 2
    jobs = doc.get("jobs", [])
    counts: Dict[str, int] = {}
    for job in jobs:
        status = job.get("status", "?")
        counts[status] = counts.get(status, 0) + 1
    if args.json:
        out = {
            "name": doc.get("name", ""),
            "rebuilt_from_journal": bool(doc.get("rebuilt_from_journal", False)),
            "counts": dict(sorted(counts.items())),
            "jobs": [
                {
                    "id": job.get("job_id", ""),
                    "status": job.get("status", ""),
                    "attempts": job.get("attempts", 0),
                    "classification": job.get("classification", ""),
                    "retryable": (
                        job.get("classification", "") not in NEVER_RETRY
                        if job.get("status") in ("failed", "pending")
                        else False
                    ),
                    "source": job.get("source", ""),
                    "artifact": job.get("artifact", ""),
                    "digest": job.get("digest", ""),
                    "backoff_s": job.get("backoff_s", []),
                    "error_type": job.get("error_type", ""),
                    "error": job.get("error", ""),
                }
                for job in jobs
            ],
        }
        print(json.dumps(out, indent=2, sort_keys=True))
        return 0
    print(f"campaign {doc.get('name', '?')!r}: {len(jobs)} job(s)")
    if doc.get("rebuilt_from_journal"):
        print("  (manifest unreadable - rebuilt from journal)")
    for job in jobs:
        status = job.get("status", "?")
        line = (
            f"  {job.get('job_id', '?'):24s} {status:8s} "
            f"{job.get('source') or '-':8s} "
            f"{(job.get('digest') or '')[:12]:12s} {job.get('artifact', '')}"
        )
        if status == "failed":
            line += (
                f"  {job.get('error_type', '')}({job.get('classification', '')}): "
                f"{job.get('error', '')}"
            )
        elif status == "quarantined":
            line += f"  poison after {job.get('attempts', 0)} attempt(s)"
        print(line)
    summary = ", ".join(f"{v} {k}" for k, v in sorted(counts.items()))
    print(f"summary: {summary}")
    return 0


def _cmd_chaos_plan(args: argparse.Namespace) -> int:
    from .campaign import CampaignSpec, SpecError
    from .chaos import ChaosError, ChaosSpec

    try:
        chaos = ChaosSpec.parse(args.chaos)
    except ChaosError as exc:
        print(exc, file=sys.stderr)
        return 2
    targets = args.targets or []
    try:
        if args.spec:
            spec = CampaignSpec.from_file(args.spec)
        elif len(targets) == 1 and targets[0].endswith(".json"):
            spec = CampaignSpec.from_file(targets[0])
        elif targets:
            spec = CampaignSpec.from_ids(targets)
        else:
            print("repro chaos plan: give a campaign spec file, experiment "
                  "ids, or 'all'", file=sys.stderr)
            return 2
        job_ids = [job.job_id for job in spec.expand()]
        plan = chaos.compile(job_ids)
    except (OSError, SpecError, ChaosError) as exc:
        print(exc, file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(plan.to_dict(), indent=2, sort_keys=True))
    else:
        print(plan.describe())
    return 0


def _cmd_campaign_clean(args: argparse.Namespace) -> int:
    from .campaign import (
        CAMPAIGN_FILE,
        JOURNAL_FILE,
        MANIFEST_FILE,
        ResultCache,
        load_campaign_file,
    )

    directory = pathlib.Path(args.dir)
    doc = load_campaign_file(directory / CAMPAIGN_FILE)
    removed = 0
    if doc:
        for job in doc.get("jobs", []):
            artifact = directory / f"{job.get('id', '')}.txt"
            if job.get("id") and artifact.is_file():
                artifact.unlink()
                removed += 1
    for name in (MANIFEST_FILE, JOURNAL_FILE, CAMPAIGN_FILE):
        path = directory / name
        if path.is_file():
            path.unlink()
            removed += 1
    print(f"removed {removed} campaign file(s) from {directory}/")
    if args.cache:
        cache = ResultCache(args.cache_dir or directory / ".cache")
        print(f"cleared {cache.clear()} cache entr(ies) from {cache.root}/")
    elif args.cache_orphans:
        cache = ResultCache(args.cache_dir or directory / ".cache")
        pruned = cache.prune_orphans()
        print(f"pruned {pruned} orphaned cache entr(ies) from {cache.root}/ "
              "(stale code fingerprint or corrupt meta)")
    return 0


DEFAULT_SERVE_DIR = "serve-out"


def _serve_spec(args: argparse.Namespace) -> Any:
    """The campaign spec a serve submit/drill verb was given."""
    from .campaign import CampaignSpec

    params = _parse_params(getattr(args, "params", None))
    targets = args.targets or []
    if args.spec and targets:
        raise ValueError("give either --spec or experiment ids, not both")
    if args.spec:
        return CampaignSpec.from_file(args.spec)
    if len(targets) == 1 and targets[0].endswith(".json"):
        return CampaignSpec.from_file(targets[0])
    if targets:
        return CampaignSpec.from_ids(targets, params)
    raise ValueError("give a spec file, experiment ids, or 'all'")


def _cmd_serve_start(args: argparse.Namespace) -> int:
    from .chaos import ChaosError, ChaosSpec
    from .serve import CampaignServer, ServerConfig

    chaos = None
    if args.chaos:
        try:
            chaos = ChaosSpec.parse(args.chaos)
        except ChaosError as exc:
            print(exc, file=sys.stderr)
            return 2
    tracer = None
    if args.trace or args.metrics:
        from .obs import Tracer

        tracer = Tracer()
    server = CampaignServer(
        ServerConfig(
            directory=args.dir,
            host=args.host,
            port=args.port,
            name=args.name,
            jobs=args.jobs,
            retries=args.retries,
            backoff_base=args.backoff_base,
            quarantine_after=args.quarantine_after,
            lease_ttl=args.lease_ttl,
            deadline_s=args.deadline,
            max_backlog=args.max_backlog,
            cache_dir=args.cache_dir,
            chaos=chaos,
            tracer=tracer,
            shards=args.shards,
        )
    )
    try:
        server.run()
    except KeyboardInterrupt:
        pass
    finally:
        if tracer is not None:
            from .obs import write_chrome_trace, write_metrics

            if args.trace:
                print(f"wrote {write_chrome_trace(tracer, args.trace)}")
            if args.metrics:
                print(f"wrote {write_metrics(tracer, args.metrics)}")
    return 0


def _cmd_serve_submit(args: argparse.Namespace) -> int:
    from .campaign import SpecError
    from .serve import ServeError, ServeClient, discover

    try:
        spec = _serve_spec(args)
    except (OSError, SpecError, ValueError) as exc:
        print(f"repro serve submit: {exc}", file=sys.stderr)
        return 2
    try:
        if args.port:
            client = ServeClient(args.host, args.port)
        else:
            client = discover(args.dir)
        receipt = client.submit_with_retry(spec.to_dict(), timeout=args.timeout)
        if args.wait:
            final = client.wait(receipt["campaign"], timeout=args.timeout)
            receipt = {**receipt, "counts": final["counts"], "done": final["done"]}
    except ServeError as exc:
        print(f"repro serve submit: {exc}", file=sys.stderr)
        return 1
    print(json.dumps(receipt, indent=2, sort_keys=True))
    return 0


def _cmd_serve_status(args: argparse.Namespace) -> int:
    from .serve import ServeError, ServeClient, discover

    try:
        if args.port:
            client = ServeClient(args.host, args.port)
        else:
            client = discover(args.dir)
        if args.campaign:
            doc: Dict[str, Any] = client.campaign(args.campaign)
        else:
            doc = client.health()
            doc["campaigns"] = client.campaigns().get("campaigns", [])
            doc["counters"] = client.stats().get("counters", {})
    except ServeError as exc:
        print(f"repro serve status: {exc}", file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps(doc, indent=2, sort_keys=True))
        return 0
    if args.campaign:
        counts = ", ".join(f"{v} {k}" for k, v in sorted(doc["counts"].items()))
        print(f"campaign {doc['id']} {doc['name']!r}: {doc['total']} job(s); {counts}")
        for job in doc["jobs"]:
            line = f"  {job['job_id']:24s} {job['state']:12s} {job['artifact']}"
            if job["state"] in ("failed", "quarantined"):
                line += f"  {job['error_type']}({job['classification']}): {job['error']}"
            print(line)
    else:
        counts = ", ".join(f"{v} {k}" for k, v in sorted(doc["counts"].items()))
        drain = " (draining)" if doc.get("draining") else ""
        print(
            f"server {doc['name']!r} pid {doc['pid']}: {doc['jobs']} worker(s), "
            f"backlog {doc['backlog']}{drain}"
        )
        print(f"jobs: {counts}")
        print(f"campaigns: {', '.join(doc['campaigns']) or '(none)'}")
    return 0


def _cmd_serve_drain(args: argparse.Namespace) -> int:
    from .perf.hostclock import HostClock, host_sleep
    from .serve import ServeError, ServeClient, discover

    try:
        if args.port:
            client = ServeClient(args.host, args.port)
        else:
            client = discover(args.dir)
        doc = client.drain()
    except ServeError as exc:
        print(f"repro serve drain: {exc}", file=sys.stderr)
        return 1
    print(f"draining; backlog {doc.get('backlog', '?')}")
    if not args.wait:
        return 0
    # A draining server exits on its own once the queue empties; waiting
    # means polling until it stops answering.
    clock = HostClock()
    while clock.elapsed() < args.timeout:
        try:
            doc = client.health()
        except ServeError:
            print("server exited (queue drained)")
            return 0
        host_sleep(0.2)
    print(f"repro serve drain: backlog {doc.get('backlog', '?')} still "
          f"remaining after {args.timeout:g}s", file=sys.stderr)
    return 1


def _cmd_validate(_args: argparse.Namespace) -> int:
    from .core.validate import CLAIMS, ValidationError

    failed: List[str] = []
    for claim in CLAIMS:
        try:
            claim.verify()
            status = "PASS"
        except ValidationError:
            status = "FAIL"
            failed.append(claim.id)
        print(f"  [{status}] {claim.id}: {claim.statement}")
    if failed:
        print(f"\n{len(failed)} claim(s) failed: {failed}", file=sys.stderr)
        return 1
    print(f"\nall {len(CLAIMS)} paper claims hold")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    from .machines import get_machine
    from .core.compare import render_comparison

    try:
        a = get_machine(args.machine_a)
        b = get_machine(args.machine_b)
    except KeyError as exc:
        print(exc, file=sys.stderr)
        return 2
    print(render_comparison(a, b, processes=args.processes))
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from .lint import all_rules, lint_paths, render_github, render_json, render_text

    if args.list_rules:
        from .lint.flow import FLOW_RULE_DESCRIPTIONS

        for rule in all_rules():
            print(f"  {rule.id:24s} {rule.severity}  {rule.description}")
        for rule_id, description in FLOW_RULE_DESCRIPTIONS.items():
            print(f"  {rule_id:24s} error  {description}")
        return 0
    paths = args.paths
    if not paths:
        default = pathlib.Path("src")
        paths = [str(default)] if default.is_dir() else ["."]
    missing = [p for p in paths if not pathlib.Path(p).exists()]
    if missing:
        print(f"repro lint: no such file or directory: {', '.join(missing)}", file=sys.stderr)
        return 2
    result = lint_paths(paths, flow=args.flow)
    renderers = {"json": render_json, "github": render_github, "text": render_text}
    print(renderers[args.format](result))
    return result.exit_code


def _cmd_bench_list(_args: argparse.Namespace) -> int:
    from .perf import benchmark_ids, discover_scripts, get_benchmark

    print("registered micro-benchmarks:")
    for name in benchmark_ids():
        bench = get_benchmark(name)
        budget = f"  [budget {bench.budget_s:g}s]" if bench.budget_s else ""
        print(f"  {name:32s} {bench.description}{budget}")
    scripts = discover_scripts()
    if scripts:
        print("bench scripts (run with `bench run --scripts`):")
        for script in scripts:
            print(f"  {script.name}")
    return 0


def _cmd_bench_run(args: argparse.Namespace) -> int:
    from .perf import discover_scripts, run_benchmarks, run_script_benchmarks

    def progress(name, entry):
        print(
            f"  {name:40s} median {entry.median_s:.6f}s  "
            f"({entry.repeats} rep(s), warmup {entry.warmup})"
        )

    try:
        snap = run_benchmarks(
            args.names or None,
            repeats=args.repeats,
            warmup=args.warmup,
            progress=progress,
        )
    except (KeyError, ValueError) as exc:
        print(exc, file=sys.stderr)
        return 2
    if args.scripts:
        try:
            entries = run_script_benchmarks(discover_scripts())
        except (RuntimeError, ValueError) as exc:
            print(exc, file=sys.stderr)
            return 1
        for name, entry in sorted(entries.items()):
            progress(name, entry)
        snap.entries.update(entries)
    path = snap.write(args.output)
    print(f"wrote {path}")
    over = snap.over_budget()
    if over:
        for entry in over:
            print(
                f"BUDGET: {entry.name} median {entry.median_s:.3f}s exceeds "
                f"its {entry.budget_s:g}s budget",
                file=sys.stderr,
            )
        return 1
    return 0


def _cmd_bench_compare(args: argparse.Namespace) -> int:
    from .perf import compare_snapshots, load_snapshot, parse_percent, SnapshotError

    try:
        fail_over = parse_percent(args.fail_over)
    except ValueError as exc:
        print(exc, file=sys.stderr)
        return 2
    try:
        base = load_snapshot(args.base)
        new = load_snapshot(args.new)
    except SnapshotError as exc:
        print(exc, file=sys.stderr)
        return 2
    comparison = compare_snapshots(base, new, fail_over=fail_over)
    print(comparison.render())
    return comparison.exit_code


def _cmd_bench_profile(args: argparse.Namespace) -> int:
    from .obs import run_scenario, scenario_ids, summary, write_chrome_trace
    from .perf import HostProfiler, profiling

    if args.list_scenarios:
        for sid in scenario_ids():
            print(f"  {sid}")
        return 0
    if not args.scenario:
        print("repro bench profile: give a scenario id (or --list)", file=sys.stderr)
        return 2
    profiler = HostProfiler(cprofile=not args.no_cprofile, top=args.top)
    try:
        params = _parse_params(args.params)
        with profiling(profiler):
            tracer, result_line = run_scenario(args.scenario, **params)
    except (KeyError, ValueError) as exc:
        print(exc, file=sys.stderr)
        return 2
    profiler.finalize()
    print(result_line)
    out = args.output or f"{args.scenario}.profile.trace.json"
    print(f"wrote {write_chrome_trace(tracer, out)}")
    print(profiler.report(top=args.top))
    if not args.no_summary:
        print(summary(tracer, n=args.top))
    return 0


def _cmd_machines(_args: argparse.Namespace) -> int:
    from .core.evaluation import table1_config

    print(table1_config())
    return 0


def _cmd_pdes_list(_args: argparse.Namespace) -> int:
    from .pdes.scenarios import SCENARIOS, describe

    for scenario in SCENARIOS.values():
        print(f"  {describe(scenario)}")
    return 0


def _cmd_pdes_run(args: argparse.Namespace) -> int:
    from .pdes import LinkConflictError, PdesError
    from .pdes.runner import run

    try:
        params = _parse_params(args.params)
    except ValueError as exc:
        print(exc, file=sys.stderr)
        return 2
    try:
        result = run(
            args.scenario,
            shards=args.shards,
            backend=args.backend,
            params=params,
            strict_conflicts=not args.allow_conflicts,
            observe=not args.bare,
        )
    except (KeyError, ValueError) as exc:
        print(exc, file=sys.stderr)
        return 2
    except LinkConflictError as exc:
        print(f"repro pdes run: {exc}", file=sys.stderr)
        return 1
    except PdesError as exc:
        print(f"repro pdes run: {exc}", file=sys.stderr)
        return 1
    for line in result.summary_lines():
        print(line)
    if result.conflicts:
        print(
            f"WARNING: {len(result.conflicts)} link conflict(s) - sharded "
            "timing is NOT certified identical to the single engine",
            file=sys.stderr,
        )
    if args.output:
        outdir = pathlib.Path(args.output)
        outdir.mkdir(parents=True, exist_ok=True)
        stem = f"{result.scenario}.s{result.shards}"
        if args.bare:
            print(
                "note: --bare records no artifacts; rerun without it to "
                "export canonical trace/metrics/events",
                file=sys.stderr,
            )
        else:
            for suffix, text in (
                ("trace.json", result.trace_json),
                ("metrics.json", result.metrics_json),
                ("events.jsonl", result.events_jsonl),
            ):
                path = outdir / f"{stem}.{suffix}"
                path.write_text(text)
                print(f"wrote {path}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Early Evaluation of IBM BlueGene/P' (SC'08): "
            "regenerate the paper's tables and figures from machine models."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list experiment ids").set_defaults(fn=_cmd_list)

    p_run = sub.add_parser("run", help="regenerate an artifact (or 'all')")
    p_run.add_argument("experiment", help="experiment id, or 'all'")
    p_run.add_argument("-o", "--output", help="directory to write .txt artifacts")
    p_run.add_argument(
        "--trace",
        metavar="FILE",
        help="record any message-level simulation into a Chrome trace JSON",
    )
    p_run.add_argument(
        "--metrics", metavar="FILE", help="write the metrics-registry JSON"
    )
    p_run.add_argument(
        "--param", dest="params", action="append", metavar="KEY=VALUE",
        help="experiment parameter override (repeatable; numeric values)",
    )
    p_run.add_argument(
        "-j", "--jobs", type=int, default=1, metavar="N",
        help="worker processes for 'run all' (default: 1; with -o the "
             "run rides the campaign cache and emits a manifest.json)",
    )
    p_run.add_argument(
        "--shards", type=int, default=None, metavar="N",
        help="run eligible DES simulations through the sharded engine "
             "(N conservative-lookahead shards; ineligible runs fall "
             "back to one engine, results byte-identical either way)",
    )
    p_run.set_defaults(fn=_cmd_run)

    p_camp = sub.add_parser(
        "campaign",
        help="parallel, cached, resumable experiment campaigns",
    )
    camp_sub = p_camp.add_subparsers(dest="campaign_command", required=True)

    p_crun = camp_sub.add_parser(
        "run", help="run a campaign (spec file, experiment ids, or 'all')"
    )
    p_crun.add_argument(
        "targets", nargs="*", metavar="TARGET",
        help="experiment ids, 'all', or a single spec.json path",
    )
    p_crun.add_argument("--spec", metavar="FILE", help="campaign spec JSON file")
    p_crun.add_argument(
        "-o", "--dir", default=DEFAULT_CAMPAIGN_DIR, metavar="DIR",
        help=f"campaign directory (default: {DEFAULT_CAMPAIGN_DIR}/)",
    )
    p_crun.add_argument(
        "-j", "--jobs", type=int, default=1, metavar="N",
        help="worker processes (default: 1 = inline)",
    )
    p_crun.add_argument(
        "--retries", type=int, default=1, metavar="N",
        help="extra attempts for retryable job failures (transient, "
             "timeout, worker crash; default: 1 - deterministic "
             "budget/fault/config failures never retry)",
    )
    p_crun.add_argument(
        "--deadline", type=float, default=None, metavar="SEC",
        help="per-job watchdog deadline in host seconds (timed-out jobs "
             "are cancelled, classified, and requeued with backoff)",
    )
    p_crun.add_argument(
        "--backoff-base", type=float, default=0.05, metavar="SEC",
        help="base of the seeded exponential retry backoff (default: 0.05)",
    )
    p_crun.add_argument(
        "--quarantine-after", type=int, default=2, metavar="N",
        help="quarantine a job as poison after it kills N workers "
             "(default: 2)",
    )
    p_crun.add_argument(
        "--chaos", metavar="SPEC",
        help="inject host faults from a chaos spec: a JSON file or "
             "'seed=42,kills=1,hangs=1,torn=1,ioerr=1' (see 'repro chaos')",
    )
    p_crun.add_argument(
        "--param", dest="params", action="append", metavar="KEY=VALUE",
        help="shared experiment parameter for id targets (repeatable)",
    )
    p_crun.add_argument(
        "--max-jobs", type=int, default=None, metavar="N",
        help="compute at most N jobs this pass (incremental/interrupt "
             "testing; the rest stays pending and resumes next run)",
    )
    p_crun.add_argument(
        "--fresh", action="store_true",
        help="truncate the journal first (cache and artifacts are kept; "
             "use 'campaign clean' for those)",
    )
    p_crun.add_argument(
        "--cache-dir", metavar="DIR",
        help="result-cache location (default: <dir>/.cache; share one "
             "across campaigns to reuse results)",
    )
    p_crun.add_argument(
        "--trace", metavar="FILE",
        help="write the campaign track (job spans, cache hits, worker "
             "utilization) as Chrome trace JSON",
    )
    p_crun.add_argument(
        "--metrics", metavar="FILE", help="write the campaign.* metrics JSON"
    )
    p_crun.add_argument(
        "--shards", type=int, default=None, metavar="N",
        help="run each job's eligible DES simulations sharded N ways "
             "(execution policy only - cached results stay valid)",
    )
    p_crun.set_defaults(fn=_cmd_campaign_run)

    p_cstat = camp_sub.add_parser("status", help="per-job status of a campaign")
    p_cstat.add_argument(
        "-o", "--dir", default=DEFAULT_CAMPAIGN_DIR, metavar="DIR",
        help=f"campaign directory (default: {DEFAULT_CAMPAIGN_DIR}/)",
    )
    p_cstat.add_argument(
        "--json", action="store_true",
        help="machine-readable output (job id, status, attempts, retry "
             "class, backoff); works even off a torn manifest",
    )
    p_cstat.set_defaults(fn=_cmd_campaign_status)

    p_cclean = camp_sub.add_parser(
        "clean", help="remove a campaign's artifacts, journal, and manifest"
    )
    p_cclean.add_argument(
        "-o", "--dir", default=DEFAULT_CAMPAIGN_DIR, metavar="DIR",
        help=f"campaign directory (default: {DEFAULT_CAMPAIGN_DIR}/)",
    )
    p_cclean.add_argument(
        "--cache", action="store_true", help="also clear the result cache"
    )
    p_cclean.add_argument(
        "--cache-dir", metavar="DIR",
        help="cache location if it was overridden at run time",
    )
    p_cclean.add_argument(
        "--cache-orphans", action="store_true",
        help="prune cache entries whose content address no longer matches "
             "the current code fingerprint (stale results from an older "
             "tree; keeps live entries, unlike --cache)",
    )
    p_cclean.set_defaults(fn=_cmd_campaign_clean)

    p_chaos = sub.add_parser(
        "chaos",
        help="deterministic host-level fault injection for campaigns",
    )
    chaos_sub = p_chaos.add_subparsers(dest="chaos_command", required=True)
    p_cplan = chaos_sub.add_parser(
        "plan",
        help="compile a chaos spec against a job list and show the "
             "injection schedule (dry run; same seed => same plan)",
    )
    p_cplan.add_argument(
        "targets", nargs="*", metavar="TARGET",
        help="experiment ids, 'all', or a single campaign spec.json path",
    )
    p_cplan.add_argument("--spec", metavar="FILE", help="campaign spec JSON file")
    p_cplan.add_argument(
        "--chaos", default="seed=0", metavar="SPEC",
        help="chaos spec: JSON file or compact string "
             "'seed=42,kills=1,hangs=1,torn=1,ioerr=1,hang_seconds=0.25,"
             "hard=1' (default: seed=0, no injections)",
    )
    p_cplan.add_argument(
        "--json", action="store_true",
        help="machine-readable plan (seed, event keys, per-event targets) "
             "instead of the prose schedule",
    )
    p_cplan.set_defaults(fn=_cmd_chaos_plan)

    p_serve = sub.add_parser(
        "serve",
        help="durable campaign service: SQLite-backed queue over HTTP",
    )
    serve_sub = p_serve.add_subparsers(dest="serve_command", required=True)

    p_sstart = serve_sub.add_parser(
        "start", help="run a campaign server (blocks; SIGKILL-safe)"
    )
    p_sstart.add_argument(
        "-o", "--dir", default=DEFAULT_SERVE_DIR, metavar="DIR",
        help=f"serve directory: queue db, artifacts, journal, manifest "
             f"(default: {DEFAULT_SERVE_DIR}/)",
    )
    p_sstart.add_argument("--host", default="127.0.0.1", metavar="ADDR")
    p_sstart.add_argument(
        "--port", type=int, default=0, metavar="PORT",
        help="listen port (default: 0 = pick a free one; the bound port "
             "lands in <dir>/server.json for discovery)",
    )
    p_sstart.add_argument("--name", default="serve", metavar="NAME")
    p_sstart.add_argument(
        "-j", "--jobs", type=int, default=2, metavar="N",
        help="worker processes (default: 2)",
    )
    p_sstart.add_argument(
        "--retries", type=int, default=1, metavar="N",
        help="extra attempts for retryable failures (default: 1)",
    )
    p_sstart.add_argument(
        "--deadline", type=float, default=None, metavar="SEC",
        help="per-job watchdog deadline in host seconds",
    )
    p_sstart.add_argument(
        "--lease-ttl", type=float, default=5.0, metavar="SEC",
        help="heartbeat contract: a lease silent this long is requeued "
             "(default: 5)",
    )
    p_sstart.add_argument(
        "--max-backlog", type=int, default=64, metavar="N",
        help="bound on accepted-but-unfinished jobs; submissions past it "
             "shed with 429 + Retry-After (default: 64)",
    )
    p_sstart.add_argument(
        "--backoff-base", type=float, default=0.05, metavar="SEC",
        help="base of the seeded exponential retry backoff (default: 0.05)",
    )
    p_sstart.add_argument(
        "--quarantine-after", type=int, default=2, metavar="N",
        help="quarantine a job as poison after it kills N workers "
             "(default: 2)",
    )
    p_sstart.add_argument(
        "--cache-dir", metavar="DIR",
        help="result-cache location (default: <dir>/.cache)",
    )
    p_sstart.add_argument(
        "--chaos", metavar="SPEC",
        help="inject service faults from a chaos spec (adds server_kills= "
             "and heartbeat_losses= to the batch kinds; see 'repro chaos')",
    )
    p_sstart.add_argument(
        "--trace", metavar="FILE",
        help="write the serve track (request spans, job spans, chaos "
             "instants) as Chrome trace JSON on exit",
    )
    p_sstart.add_argument(
        "--metrics", metavar="FILE", help="write the serve.* metrics JSON on exit"
    )
    p_sstart.add_argument(
        "--shards", type=int, default=None, metavar="N",
        help="run each job's eligible DES simulations sharded N ways",
    )
    p_sstart.set_defaults(fn=_cmd_serve_start)

    p_ssub = serve_sub.add_parser(
        "submit", help="submit a campaign spec to a running server"
    )
    p_ssub.add_argument(
        "targets", nargs="*", metavar="TARGET",
        help="experiment ids, 'all', or a single spec.json path",
    )
    p_ssub.add_argument("--spec", metavar="FILE", help="campaign spec JSON file")
    p_ssub.add_argument(
        "-o", "--dir", default=DEFAULT_SERVE_DIR, metavar="DIR",
        help=f"serve directory to discover the server from "
             f"(default: {DEFAULT_SERVE_DIR}/)",
    )
    p_ssub.add_argument("--host", default="127.0.0.1", metavar="ADDR")
    p_ssub.add_argument(
        "--port", type=int, default=0, metavar="PORT",
        help="connect directly instead of via <dir>/server.json",
    )
    p_ssub.add_argument(
        "--param", dest="params", action="append", metavar="KEY=VALUE",
        help="shared experiment parameter for id targets (repeatable)",
    )
    p_ssub.add_argument(
        "--wait", action="store_true",
        help="poll until every submitted job is terminal",
    )
    p_ssub.add_argument(
        "--timeout", type=float, default=120.0, metavar="SEC",
        help="budget for shedding retries and --wait polling (default: 120)",
    )
    p_ssub.set_defaults(fn=_cmd_serve_submit)

    p_sstat = serve_sub.add_parser(
        "status", help="server health, or one campaign's per-job states"
    )
    p_sstat.add_argument(
        "campaign", nargs="?", default="", metavar="CAMPAIGN_ID",
        help="campaign id from 'serve submit' (omit for server health)",
    )
    p_sstat.add_argument(
        "-o", "--dir", default=DEFAULT_SERVE_DIR, metavar="DIR",
        help=f"serve directory (default: {DEFAULT_SERVE_DIR}/)",
    )
    p_sstat.add_argument("--host", default="127.0.0.1", metavar="ADDR")
    p_sstat.add_argument(
        "--port", type=int, default=0, metavar="PORT",
        help="connect directly instead of via <dir>/server.json",
    )
    p_sstat.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )
    p_sstat.set_defaults(fn=_cmd_serve_status)

    p_sdrain = serve_sub.add_parser(
        "drain", help="stop accepting submissions; exit once the queue empties"
    )
    p_sdrain.add_argument(
        "-o", "--dir", default=DEFAULT_SERVE_DIR, metavar="DIR",
        help=f"serve directory (default: {DEFAULT_SERVE_DIR}/)",
    )
    p_sdrain.add_argument("--host", default="127.0.0.1", metavar="ADDR")
    p_sdrain.add_argument(
        "--port", type=int, default=0, metavar="PORT",
        help="connect directly instead of via <dir>/server.json",
    )
    p_sdrain.add_argument(
        "--wait", action="store_true",
        help="block until the drained server exits",
    )
    p_sdrain.add_argument(
        "--timeout", type=float, default=120.0, metavar="SEC",
        help="--wait budget (default: 120)",
    )
    p_sdrain.set_defaults(fn=_cmd_serve_drain)

    p_trace = sub.add_parser(
        "trace",
        help="run a traceable DES scenario and export its Chrome trace",
    )
    p_trace.add_argument(
        "scenario", nargs="?", help="scenario id (see --list)"
    )
    p_trace.add_argument(
        "-o", "--output", help="trace file (default: <scenario>.trace.json)"
    )
    p_trace.add_argument(
        "--metrics", metavar="FILE", help="also write the metrics-registry JSON"
    )
    p_trace.add_argument(
        "-n", "--top", type=int, default=10, help="summary rows (default: 10)"
    )
    p_trace.add_argument(
        "--no-summary", action="store_true", help="skip the ASCII summary"
    )
    p_trace.add_argument(
        "--list", dest="list_scenarios", action="store_true",
        help="list scenario ids and exit",
    )
    p_trace.add_argument(
        "--param", dest="params", action="append", metavar="KEY=VALUE",
        help="scenario parameter (repeatable; e.g. --param nbytes=65536)",
    )
    p_trace.set_defaults(fn=_cmd_trace)

    p_faults = sub.add_parser(
        "faults",
        help="run a fault-injection/resilience scenario (deterministic)",
    )
    p_faults.add_argument(
        "scenario", nargs="?", help="scenario id (see --list)"
    )
    p_faults.add_argument(
        "-o", "--output", metavar="FILE",
        help="write the run's Chrome trace JSON (includes fault instants)",
    )
    p_faults.add_argument(
        "--metrics", metavar="FILE", help="write the metrics-registry JSON"
    )
    p_faults.add_argument(
        "--param", dest="params", action="append", metavar="KEY=VALUE",
        help="scenario parameter (repeatable; e.g. --param nbytes=65536)",
    )
    p_faults.add_argument(
        "--list", dest="list_scenarios", action="store_true",
        help="list scenario ids and exit",
    )
    p_faults.add_argument(
        "--simulate", action="store_true",
        help=(
            "for the 'checkpoint' scenario: also run the executed "
            "checkpoint/restart path in the DES and print the "
            "simulated-vs-analytic runtime delta"
        ),
    )
    p_faults.set_defaults(fn=_cmd_faults)

    p_recover = sub.add_parser(
        "recover",
        help=(
            "run a checkpoint/restart + ULFM recovery scenario "
            "(deterministic)"
        ),
    )
    p_recover.add_argument(
        "scenario", nargs="?", help="scenario id (see --list)"
    )
    p_recover.add_argument(
        "-o", "--output", metavar="FILE",
        help="write the run's Chrome trace JSON (includes recovery spans)",
    )
    p_recover.add_argument(
        "--metrics", metavar="FILE", help="write the metrics-registry JSON"
    )
    p_recover.add_argument(
        "--param", dest="params", action="append", metavar="KEY=VALUE",
        help="scenario parameter (repeatable; e.g. --param steps=8)",
    )
    p_recover.add_argument(
        "--list", dest="list_scenarios", action="store_true",
        help="list scenario ids and exit",
    )
    p_recover.set_defaults(fn=_cmd_recover)

    sub.add_parser(
        "validate", help="check the ten qualitative paper claims"
    ).set_defaults(fn=_cmd_validate)

    p_cmp = sub.add_parser("compare", help="compare two machines across the suite")
    p_cmp.add_argument("machine_a")
    p_cmp.add_argument("machine_b")
    p_cmp.add_argument("-p", "--processes", type=int, default=1024)
    p_cmp.set_defaults(fn=_cmd_compare)

    sub.add_parser("machines", help="print the machine catalog (Table 1)").set_defaults(
        fn=_cmd_machines
    )

    p_pdes = sub.add_parser(
        "pdes",
        help=(
            "sharded parallel DES: conservative-lookahead engine for "
            "message-level runs at 40k-rank scale"
        ),
    )
    pdes_sub = p_pdes.add_subparsers(dest="pdes_command", required=True)

    pdes_sub.add_parser(
        "list", help="list sharded-DES scenarios"
    ).set_defaults(fn=_cmd_pdes_list)

    p_prun = pdes_sub.add_parser(
        "run", help="run a scenario sharded (or single-engine at --shards 1)"
    )
    p_prun.add_argument("scenario", help="scenario id (see 'pdes list')")
    p_prun.add_argument(
        "-s", "--shards", type=int, default=1, metavar="N",
        help="shard count (default: 1 = the reference single-engine path)",
    )
    p_prun.add_argument(
        "--backend", choices=["inline", "process"], default="inline",
        help="inline = all shards in this process (deterministic, "
             "zero overhead); process = one OS process per shard "
             "(parallel wall-clock on multi-core hosts)",
    )
    p_prun.add_argument(
        "--param", dest="params", action="append", metavar="KEY=VALUE",
        help="scenario parameter override (repeatable; e.g. ranks=4096)",
    )
    p_prun.add_argument(
        "-o", "--output", metavar="DIR",
        help="write canonical artifacts: <scenario>.s<N>.trace.json, "
             ".metrics.json, .events.jsonl (byte-identical across shard "
             "counts when conflict-free)",
    )
    p_prun.add_argument(
        "--bare", action="store_true",
        help="skip telemetry (no tracer, booking logs, artifacts, or "
             "conflict certification); benchmark mode",
    )
    p_prun.add_argument(
        "--allow-conflicts", action="store_true",
        help="report cross-shard link conflicts as a warning instead of "
             "failing the run",
    )
    p_prun.set_defaults(fn=_cmd_pdes_run)

    p_bench = sub.add_parser(
        "bench",
        help=(
            "host-side performance: micro-benchmark suite, BENCH_*.json "
            "snapshots, regression gate, self-profiling"
        ),
    )
    bench_sub = p_bench.add_subparsers(dest="bench_command", required=True)

    bench_sub.add_parser(
        "list", help="list registered micro-benchmarks and bench scripts"
    ).set_defaults(fn=_cmd_bench_list)

    p_brun = bench_sub.add_parser(
        "run", help="time the suite into a BENCH_<host>.json snapshot"
    )
    p_brun.add_argument(
        "names", nargs="*", metavar="NAME",
        help="benchmark subset (default: the whole registered suite)",
    )
    p_brun.add_argument(
        "-o", "--output", default=".", metavar="PATH",
        help="snapshot file, or a directory for the canonical "
             "BENCH_<host-fingerprint>.json name (default: .)",
    )
    p_brun.add_argument(
        "-r", "--repeats", type=int, default=3, metavar="K",
        help="timed repetitions per benchmark (default: 3)",
    )
    p_brun.add_argument(
        "--warmup", type=int, default=1, metavar="N",
        help="discarded warmup repetitions (default: 1)",
    )
    p_brun.add_argument(
        "--scripts", action="store_true",
        help="also execute the benchmarks/bench_*.py pytest scripts and "
             "fold their timings into the snapshot",
    )
    p_brun.set_defaults(fn=_cmd_bench_run)

    p_bcmp = bench_sub.add_parser(
        "compare", help="gate one snapshot against a baseline"
    )
    p_bcmp.add_argument("base", help="baseline BENCH_*.json")
    p_bcmp.add_argument("new", help="candidate BENCH_*.json")
    p_bcmp.add_argument(
        "--fail-over", default="15%", metavar="PCT",
        help="relative regression tolerance, e.g. '15%%' or '0.15' "
             "(default: 15%%; per-benchmark thresholds can widen it)",
    )
    p_bcmp.set_defaults(fn=_cmd_bench_compare)

    p_bprof = bench_sub.add_parser(
        "profile",
        help="self-profile a traced scenario (host phases + cProfile hotspots)",
    )
    p_bprof.add_argument("scenario", nargs="?", help="obs scenario id (see --list)")
    p_bprof.add_argument(
        "-o", "--output", metavar="FILE",
        help="trace file (default: <scenario>.profile.trace.json)",
    )
    p_bprof.add_argument(
        "-n", "--top", type=int, default=10,
        help="hotspot/summary rows (default: 10)",
    )
    p_bprof.add_argument(
        "--no-cprofile", action="store_true",
        help="skip the cProfile capture (phase/engine timing only)",
    )
    p_bprof.add_argument(
        "--no-summary", action="store_true", help="skip the ASCII summary"
    )
    p_bprof.add_argument(
        "--list", dest="list_scenarios", action="store_true",
        help="list scenario ids and exit",
    )
    p_bprof.add_argument(
        "--param", dest="params", action="append", metavar="KEY=VALUE",
        help="scenario parameter (repeatable; e.g. --param nbytes=65536)",
    )
    p_bprof.set_defaults(fn=_cmd_bench_profile)

    p_lint = sub.add_parser(
        "lint",
        help=(
            "simlint static analysis (yield-from, determinism, API hygiene, "
            "CFG/dataflow comm checks)"
        ),
    )
    p_lint.add_argument(
        "paths", nargs="*", help="files/directories to lint (default: src/)"
    )
    p_lint.add_argument(
        "-f", "--format", choices=["text", "json", "github"], default="text",
        help="output format (github = Actions ::error annotations)",
    )
    p_lint.add_argument(
        "--flow", dest="flow", action="store_true", default=True,
        help="run the CFG/dataflow analyses (default)",
    )
    p_lint.add_argument(
        "--no-flow", dest="flow", action="store_false",
        help="syntactic rules only, skip the flow analyses",
    )
    p_lint.add_argument(
        "--list-rules", action="store_true", help="list rule ids and exit"
    )
    p_lint.set_defaults(fn=_cmd_lint)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except BrokenPipeError:
        # Piped into `head` and the reader closed early; that is fine.
        sys.stderr.close()
        return 0
