"""Command-line interface: regenerate paper artifacts and run checks.

Usage::

    python -m repro list                 # available experiments
    python -m repro run table3           # regenerate one artifact
    python -m repro run all -o out/      # regenerate everything to files
    python -m repro run fig3 --trace t.json --metrics m.json
    python -m repro trace pop            # traced DES scenario -> Chrome trace
    python -m repro trace pingpong --param nbytes=65536
    python -m repro faults link-kill     # fault-injection scenario
    python -m repro faults checkpoint --simulate   # executed vs analytic
    python -m repro recover pop-shrink   # checkpoint/restart + ULFM recovery
    python -m repro validate             # check the ten paper claims
    python -m repro machines             # show the machine catalog
    python -m repro lint src/            # simlint static analysis
"""

from __future__ import annotations

import argparse
import pathlib
import sys
from typing import Dict, List, Optional

__all__ = ["main"]


def _parse_params(pairs: Optional[List[str]]) -> Dict[str, float]:
    """Parse repeated ``--param key=value`` flags into numeric kwargs.

    Values must be numeric (scenario/experiment parameters are sizes,
    counts, and fractions); integers stay ``int``.  A malformed pair
    raises :class:`ValueError` with a one-line message — the CLI prints
    it and exits 2, same as an unknown scenario id.
    """
    params: Dict[str, float] = {}
    for pair in pairs or []:
        key, sep, raw = pair.partition("=")
        key = key.strip()
        if not sep or not key or not key.isidentifier():
            raise ValueError(
                f"malformed --param {pair!r}: expected key=value with an "
                "identifier key (e.g. --param nbytes=65536)"
            )
        raw = raw.strip()
        try:
            value: float = int(raw)
        except ValueError:
            try:
                value = float(raw)
            except ValueError:
                raise ValueError(
                    f"non-numeric value in --param {pair!r}: {raw!r} is "
                    "neither an integer nor a float"
                ) from None
        params[key] = value
    return params


def _cmd_list(_args: argparse.Namespace) -> int:
    from .core.evaluation import EXPERIMENTS

    descriptions = {
        "table1": "System configuration summary",
        "table2": "HPCC comparison, 4096 processes VN",
        "fig1": "HPCC HPL/FFT/PTRANS/RandomAccess scaling",
        "fig2": "HALO protocols/mappings/grids on BG/P",
        "fig3": "IMB Allreduce/Bcast latency",
        "top500": "TOP500 HPL run (Section II.C)",
        "fig4": "POP tenth-degree benchmark",
        "fig5": "CAM spectral/FV benchmarks",
        "fig6": "S3D weak scaling",
        "fig7": "GYRO strong/weak scaling",
        "fig8": "LAMMPS/PMEMD on RuBisCO",
        "table3": "Power comparison",
        "lists": "TOP500/Green500 placement + density (extension)",
    }
    for eid in EXPERIMENTS:
        print(f"  {eid:8s} {descriptions.get(eid, '')}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    from .core.evaluation import EXPERIMENTS, run_experiment

    try:
        params = _parse_params(args.params)
    except ValueError as exc:
        print(exc, file=sys.stderr)
        return 2
    ids = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    outdir: Optional[pathlib.Path] = (
        pathlib.Path(args.output) if args.output else None
    )
    if outdir:
        outdir.mkdir(parents=True, exist_ok=True)
    tracer = None
    if args.trace or args.metrics:
        from .obs import Tracer, tracing

        tracer = Tracer()
    for eid in ids:
        try:
            if tracer is not None:
                with tracing(tracer):
                    text = run_experiment(eid, **params)
            else:
                text = run_experiment(eid, **params)
        except KeyError as exc:
            print(exc, file=sys.stderr)
            return 2
        if outdir:
            path = outdir / f"{eid}.txt"
            path.write_text(text + "\n")
            print(f"wrote {path}")
        else:
            print(text)
            print()
    if tracer is not None:
        from .obs import write_chrome_trace, write_metrics

        if args.trace:
            print(f"wrote {write_chrome_trace(tracer, args.trace)}")
        if args.metrics:
            print(f"wrote {write_metrics(tracer, args.metrics)}")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from .obs import (
        run_scenario,
        scenario_ids,
        summary,
        write_chrome_trace,
        write_metrics,
    )

    if args.list_scenarios:
        for sid in scenario_ids():
            print(f"  {sid}")
        return 0
    if not args.scenario:
        print("repro trace: give a scenario id (or --list)", file=sys.stderr)
        return 2
    try:
        params = _parse_params(args.params)
        tracer, result_line = run_scenario(args.scenario, **params)
    except (KeyError, ValueError) as exc:
        print(exc, file=sys.stderr)
        return 2
    print(result_line)
    out = args.output or f"{args.scenario}.trace.json"
    print(f"wrote {write_chrome_trace(tracer, out)}")
    if args.metrics:
        print(f"wrote {write_metrics(tracer, args.metrics)}")
    if not args.no_summary:
        print(summary(tracer, n=args.top))
    return 0


def _cmd_faults(args: argparse.Namespace) -> int:
    from .faults.scenarios import fault_scenario_ids, run_fault_scenario
    from .obs import write_chrome_trace, write_metrics

    if args.list_scenarios:
        for sid in fault_scenario_ids():
            print(f"  {sid}")
        return 0
    if not args.scenario:
        print("repro faults: give a scenario id (or --list)", file=sys.stderr)
        return 2
    try:
        params = _parse_params(args.params)
        if args.simulate:
            params["simulate"] = True
        tracer, result_line = run_fault_scenario(args.scenario, **params)
    except (KeyError, ValueError) as exc:
        print(exc, file=sys.stderr)
        return 2
    print(result_line)
    if args.output:
        print(f"wrote {write_chrome_trace(tracer, args.output)}")
    if args.metrics:
        print(f"wrote {write_metrics(tracer, args.metrics)}")
    return 0


def _cmd_recover(args: argparse.Namespace) -> int:
    from .obs import write_chrome_trace, write_metrics
    from .recovery.scenarios import recover_scenario_ids, run_recover_scenario

    if args.list_scenarios:
        for sid in recover_scenario_ids():
            print(f"  {sid}")
        return 0
    if not args.scenario:
        print("repro recover: give a scenario id (or --list)", file=sys.stderr)
        return 2
    try:
        params = _parse_params(args.params)
        tracer, result_line = run_recover_scenario(args.scenario, **params)
    except (KeyError, ValueError) as exc:
        print(exc, file=sys.stderr)
        return 2
    print(result_line)
    if args.output:
        print(f"wrote {write_chrome_trace(tracer, args.output)}")
    if args.metrics:
        print(f"wrote {write_metrics(tracer, args.metrics)}")
    return 0


def _cmd_validate(_args: argparse.Namespace) -> int:
    from .core.validate import CLAIMS, ValidationError

    failed: List[str] = []
    for claim in CLAIMS:
        try:
            claim.verify()
            status = "PASS"
        except ValidationError:
            status = "FAIL"
            failed.append(claim.id)
        print(f"  [{status}] {claim.id}: {claim.statement}")
    if failed:
        print(f"\n{len(failed)} claim(s) failed: {failed}", file=sys.stderr)
        return 1
    print(f"\nall {len(CLAIMS)} paper claims hold")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    from .machines import get_machine
    from .core.compare import render_comparison

    try:
        a = get_machine(args.machine_a)
        b = get_machine(args.machine_b)
    except KeyError as exc:
        print(exc, file=sys.stderr)
        return 2
    print(render_comparison(a, b, processes=args.processes))
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from .lint import all_rules, lint_paths, render_json, render_text

    if args.list_rules:
        for rule in all_rules():
            print(f"  {rule.id:20s} {rule.severity}  {rule.description}")
        return 0
    paths = args.paths
    if not paths:
        default = pathlib.Path("src")
        paths = [str(default)] if default.is_dir() else ["."]
    missing = [p for p in paths if not pathlib.Path(p).exists()]
    if missing:
        print(f"repro lint: no such file or directory: {', '.join(missing)}", file=sys.stderr)
        return 2
    result = lint_paths(paths)
    print(render_json(result) if args.format == "json" else render_text(result))
    return result.exit_code


def _cmd_machines(_args: argparse.Namespace) -> int:
    from .core.evaluation import table1_config

    print(table1_config())
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Early Evaluation of IBM BlueGene/P' (SC'08): "
            "regenerate the paper's tables and figures from machine models."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list experiment ids").set_defaults(fn=_cmd_list)

    p_run = sub.add_parser("run", help="regenerate an artifact (or 'all')")
    p_run.add_argument("experiment", help="experiment id, or 'all'")
    p_run.add_argument("-o", "--output", help="directory to write .txt artifacts")
    p_run.add_argument(
        "--trace",
        metavar="FILE",
        help="record any message-level simulation into a Chrome trace JSON",
    )
    p_run.add_argument(
        "--metrics", metavar="FILE", help="write the metrics-registry JSON"
    )
    p_run.add_argument(
        "--param", dest="params", action="append", metavar="KEY=VALUE",
        help="experiment parameter override (repeatable; numeric values)",
    )
    p_run.set_defaults(fn=_cmd_run)

    p_trace = sub.add_parser(
        "trace",
        help="run a traceable DES scenario and export its Chrome trace",
    )
    p_trace.add_argument(
        "scenario", nargs="?", help="scenario id (see --list)"
    )
    p_trace.add_argument(
        "-o", "--output", help="trace file (default: <scenario>.trace.json)"
    )
    p_trace.add_argument(
        "--metrics", metavar="FILE", help="also write the metrics-registry JSON"
    )
    p_trace.add_argument(
        "-n", "--top", type=int, default=10, help="summary rows (default: 10)"
    )
    p_trace.add_argument(
        "--no-summary", action="store_true", help="skip the ASCII summary"
    )
    p_trace.add_argument(
        "--list", dest="list_scenarios", action="store_true",
        help="list scenario ids and exit",
    )
    p_trace.add_argument(
        "--param", dest="params", action="append", metavar="KEY=VALUE",
        help="scenario parameter (repeatable; e.g. --param nbytes=65536)",
    )
    p_trace.set_defaults(fn=_cmd_trace)

    p_faults = sub.add_parser(
        "faults",
        help="run a fault-injection/resilience scenario (deterministic)",
    )
    p_faults.add_argument(
        "scenario", nargs="?", help="scenario id (see --list)"
    )
    p_faults.add_argument(
        "-o", "--output", metavar="FILE",
        help="write the run's Chrome trace JSON (includes fault instants)",
    )
    p_faults.add_argument(
        "--metrics", metavar="FILE", help="write the metrics-registry JSON"
    )
    p_faults.add_argument(
        "--param", dest="params", action="append", metavar="KEY=VALUE",
        help="scenario parameter (repeatable; e.g. --param nbytes=65536)",
    )
    p_faults.add_argument(
        "--list", dest="list_scenarios", action="store_true",
        help="list scenario ids and exit",
    )
    p_faults.add_argument(
        "--simulate", action="store_true",
        help=(
            "for the 'checkpoint' scenario: also run the executed "
            "checkpoint/restart path in the DES and print the "
            "simulated-vs-analytic runtime delta"
        ),
    )
    p_faults.set_defaults(fn=_cmd_faults)

    p_recover = sub.add_parser(
        "recover",
        help=(
            "run a checkpoint/restart + ULFM recovery scenario "
            "(deterministic)"
        ),
    )
    p_recover.add_argument(
        "scenario", nargs="?", help="scenario id (see --list)"
    )
    p_recover.add_argument(
        "-o", "--output", metavar="FILE",
        help="write the run's Chrome trace JSON (includes recovery spans)",
    )
    p_recover.add_argument(
        "--metrics", metavar="FILE", help="write the metrics-registry JSON"
    )
    p_recover.add_argument(
        "--param", dest="params", action="append", metavar="KEY=VALUE",
        help="scenario parameter (repeatable; e.g. --param steps=8)",
    )
    p_recover.add_argument(
        "--list", dest="list_scenarios", action="store_true",
        help="list scenario ids and exit",
    )
    p_recover.set_defaults(fn=_cmd_recover)

    sub.add_parser(
        "validate", help="check the ten qualitative paper claims"
    ).set_defaults(fn=_cmd_validate)

    p_cmp = sub.add_parser("compare", help="compare two machines across the suite")
    p_cmp.add_argument("machine_a")
    p_cmp.add_argument("machine_b")
    p_cmp.add_argument("-p", "--processes", type=int, default=1024)
    p_cmp.set_defaults(fn=_cmd_compare)

    sub.add_parser("machines", help="print the machine catalog (Table 1)").set_defaults(
        fn=_cmd_machines
    )

    p_lint = sub.add_parser(
        "lint",
        help="simlint static analysis (yield-from, determinism, API hygiene)",
    )
    p_lint.add_argument(
        "paths", nargs="*", help="files/directories to lint (default: src/)"
    )
    p_lint.add_argument(
        "-f", "--format", choices=["text", "json"], default="text",
        help="output format (default: text)",
    )
    p_lint.add_argument(
        "--list-rules", action="store_true", help="list rule ids and exit"
    )
    p_lint.set_defaults(fn=_cmd_lint)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except BrokenPipeError:
        # Piped into `head` and the reader closed early; that is fine.
        sys.stderr.close()
        return 0
