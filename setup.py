"""Legacy setup shim.

Allows ``pip install -e .`` / ``python setup.py develop`` on toolchains
that predate PEP 660 editable installs (no ``wheel`` package needed).
All real metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
